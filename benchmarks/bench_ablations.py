"""Regenerate the design-choice ablations (DESIGN.md §6)."""

from repro.experiments import ablations


def test_ablations(benchmark, record_result):
    """Dependency vectors, in-chain replication, and piggybacking each
    ablated against their §3.2/§4.3 alternatives."""
    results = benchmark.pedantic(ablations.run, rounds=1, iterations=1)
    record_result("ablations", results)
