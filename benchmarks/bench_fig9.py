"""Regenerate Figure 9 (throughput vs chain length)."""

from repro.experiments import fig9


def test_fig9(benchmark, record_result):
    """Paper: FTC 8.28-8.92 Mpps; 2-3.5x FTMB; snapshots drop 13-39%."""
    result = benchmark.pedantic(fig9.run, rounds=1, iterations=1)
    record_result("fig9", result)
