"""Shared benchmark plumbing.

Each benchmark regenerates one table/figure of the paper and both
prints it (visible with ``pytest -s``) and writes it to
``benchmarks/output/<name>.txt`` so EXPERIMENTS.md can reference the
latest regenerated numbers.
"""

import pathlib

import pytest

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture
def record_result():
    """Persist and echo an ExperimentResult (or a list of them)."""

    def _record(name, results):
        if not isinstance(results, (list, tuple)):
            results = [results]
        OUTPUT_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(result.render() for result in results)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)
        return results

    return _record
