"""Regenerate Figure 10 (latency vs chain length)."""

from repro.experiments import fig10


def test_fig10(benchmark, record_result):
    """Paper: FTC ~20 us/middlebox overhead; FTMB ~35 us/middlebox."""
    result = benchmark.pedantic(fig10.run, rounds=1, iterations=1)
    record_result("fig10", result)
