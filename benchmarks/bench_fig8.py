"""Regenerate Figure 8 (latency vs offered load, three panels)."""

from repro.experiments import fig8


def test_fig8(benchmark, record_result):
    """Paper: flat latency until saturation, then queueing spikes;
    FTC within tens of microseconds of NF below saturation."""
    panels = benchmark.pedantic(fig8.run, rounds=1, iterations=1)
    record_result("fig8", panels)
