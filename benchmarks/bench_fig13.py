"""Regenerate Figure 13 (Ch-Rec recovery time per middlebox)."""

from repro.experiments import fig13


def test_fig13(benchmark, record_result):
    """Paper: init 1.2/49.8/5.3 ms; state recovery 114-271 ms (WAN)."""
    result = benchmark.pedantic(fig13.run, rounds=1, iterations=1)
    record_result("fig13", result)
