"""Regenerate Figure 12 (replication factor impact on Ch-5)."""

from repro.experiments import fig12


def test_fig12(benchmark, record_result):
    """Paper: factor 5 costs ~3% throughput and ~8 us latency."""
    result = benchmark.pedantic(fig12.run, rounds=1, iterations=1)
    record_result("fig12", result)
