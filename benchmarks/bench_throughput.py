"""Data-plane throughput benchmark: baseline vs reliability vs overload.

Measures *simulator* throughput (simulated packets per wall-clock
second) for three configurations of the same Ch-2 chain:

* **baseline** -- raw links, no overload machinery (the fig5/fig13
  fast path that must stay byte-identical);
* **reliable-links** -- hop channels with sequencing + retransmission
  armed (PROTOCOL.md §8) on a clean network;
* **overload-on** -- admission control + backpressure bus + SLO
  watchdog + brownout wired (PROTOCOL.md §12) under admissible load.

The point is a regression fence: the overload machinery must price in
at a modest constant factor, not change the complexity class.  Results
go to ``BENCH_throughput.json`` (CI uploads it as an artifact).

Migration note (schema v2): the original report had no
``schema_version`` and no ``env`` block, and its mode list sat directly
under ``results``.  v2 (PROTOCOL.md §13.2) adds ``schema_version: 2``
and an ``env`` block (python/platform/git sha/seed), and keeps this
benchmark's *mode list* as the ``results`` value -- unlike the
per-scenario reports, whose ``results`` is a single dict -- so the
committed trajectory of datapoints stays comparable.  Consumers key on
``schema_version`` + the shape of ``results``;
``repro.perf.compare.headline_pps`` returns 0.0 for list-shaped
results, so this file is informational to the scenario gate, never
gated itself (the pytest fence below is its gate).

Run directly (no pytest-benchmark needed)::

    PYTHONPATH=src python benchmarks/bench_throughput.py

or under pytest, where it asserts the overload slowdown stays sane.
"""

import json
import pathlib
import time

from repro.core import FTCChain
from repro.core.admission import AdmissionControl, BackpressureBus
from repro.flight.slo import SLOObjective, SLOWatchdog, run_probes
from repro.metrics import EgressRecorder
from repro.middlebox import ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration.brownout import BrownoutController
from repro.perf.bench import SCHEMA_VERSION, env_metadata
from repro.sim import Simulator

OUTPUT = pathlib.Path(__file__).parent.parent / "BENCH_throughput.json"

RATE_PPS = 2e5
DURATION_S = 30e-3
SEED = 0

#: Overload-on runs must simulate no worse than this factor slower
#: than baseline (generous: the machinery is O(1) per packet).
MAX_SLOWDOWN = 3.0


def _build(mode: str):
    sim = Simulator()
    egress = EgressRecorder(sim)
    admission = None
    if mode == "overload-on":
        # Budget far above offered load: the gate runs its full per-
        # packet path (bus level, floors, token take) but admits all,
        # so the three modes push comparable packet counts.
        admission = AdmissionControl(sim, rate_pps=RATE_PPS * 2,
                                     bus=BackpressureBus())
    chain = FTCChain(sim, ch_n(2, n_threads=2), f=1, deliver=egress,
                     n_threads=2, seed=SEED,
                     reliable_links=(mode == "reliable-links"),
                     admission=admission)
    chain.start()
    if mode == "overload-on":
        watchdog = SLOWatchdog(
            sim, [SLOObjective("p99_latency_us", "<=", 1e6)],
            probes=run_probes(egress, chain=chain))
        watchdog.start()
        BrownoutController(sim, watchdog, admission=admission,
                           buffer=chain.buffer)
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=RATE_PPS,
                                 flows=balanced_flows(8, 2))
    return sim, chain, generator, egress


def run_mode(mode: str) -> dict:
    sim, chain, generator, egress = _build(mode)
    t0 = time.perf_counter()
    sim.run(until=DURATION_S)
    generator.stop()
    sim.run(until=DURATION_S + 5e-3)
    wall_s = time.perf_counter() - t0
    return {
        "mode": mode,
        "offered": generator.sent,
        "released": egress.count,
        "wall_s": round(wall_s, 4),
        "sim_pps_per_wall_s": round(egress.count / wall_s),
    }


def run_all() -> dict:
    results = [run_mode(m)
               for m in ("baseline", "reliable-links", "overload-on")]
    base = results[0]["sim_pps_per_wall_s"]
    report = {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "data-plane throughput (simulated packets / wall s)",
        "env": env_metadata(seed=SEED, quick=False),
        "rate_pps": RATE_PPS,
        "duration_s": DURATION_S,
        "seed": SEED,
        "results": results,
        "slowdown_vs_baseline": {
            r["mode"]: round(base / max(1, r["sim_pps_per_wall_s"]), 3)
            for r in results},
    }
    OUTPUT.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_throughput_regression():
    """Overload machinery must not change the simulation's complexity
    class; every mode must deliver what it admitted."""
    report = run_all()
    for result in report["results"]:
        assert result["released"] == result["offered"], result
    slowdown = report["slowdown_vs_baseline"]["overload-on"]
    assert slowdown <= MAX_SLOWDOWN, (
        f"overload-on simulates {slowdown:.2f}x slower than baseline "
        f"(limit {MAX_SLOWDOWN}x)")


def main() -> None:
    report = run_all()
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {OUTPUT}")


if __name__ == "__main__":
    main()
