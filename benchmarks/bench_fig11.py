"""Regenerate Figure 11 (Ch-3 per-packet latency CDF)."""

from repro.experiments import fig11


def test_fig11(benchmark, record_result):
    """Paper: FTC tail latency only moderately above the minimum."""
    result = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    record_result("fig11", result)
