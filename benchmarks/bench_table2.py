"""Regenerate Table 2 (per-packet CPU-cycle breakdown, MazuNAT in Ch-2)."""

from repro.experiments import table2


def test_table2(benchmark, record_result):
    """Paper: processing 355, locking 152, copy 58, forwarder 8, buffer 100."""
    result = benchmark.pedantic(table2.run, rounds=1, iterations=1)
    record_result("table2", result)
