"""Regenerate Figure 5 (Gen throughput vs state size x packet size)."""

from repro.experiments import fig5


def test_fig5(benchmark, record_result):
    """Paper: <=9% drop at 128 B packets/128 B state; negligible at 512 B."""
    result = benchmark.pedantic(fig5.run, rounds=1, iterations=1)
    record_result("fig5", result)
