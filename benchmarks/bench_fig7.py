"""Regenerate Figure 7 (MazuNAT throughput vs threads)."""

from repro.experiments import fig7


def test_fig7(benchmark, record_result):
    """Paper: FTC/FTMB 1.37-1.94x for 1-4 threads; NIC cap at 8 threads."""
    result = benchmark.pedantic(fig7.run, rounds=1, iterations=1)
    record_result("fig7", result)
