"""Regenerate Figure 6 (Monitor throughput vs sharing level)."""

from repro.experiments import fig6


def test_fig6(benchmark, record_result):
    """Paper: FTC/FTMB 1.2x at sharing 8, 1.4x at 2; NIC cap at sharing 1."""
    result = benchmark.pedantic(fig6.run, rounds=1, iterations=1)
    record_result("fig6", result)
