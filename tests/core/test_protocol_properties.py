"""Property-based tests over random chain configurations.

Hypothesis drives chain shape (length, f, threads, middlebox mix) and
traffic volume; the invariants of DESIGN.md §5 must hold for every
configuration: complete release without failures, store convergence
across every replication group, no pending logs after drain.
"""

from hypothesis import given, settings, strategies as st

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import Firewall, Gen, Monitor, SimpleNAT
from repro.net import TrafficGenerator, balanced_flows
from repro.sim import Simulator

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


def _middlebox(kind: str, index: int, n_threads: int):
    if kind == "monitor":
        return Monitor(name=f"mb{index}", sharing_level=1,
                       n_threads=n_threads)
    if kind == "monitor-shared":
        return Monitor(name=f"mb{index}", sharing_level=n_threads,
                       n_threads=n_threads)
    if kind == "gen":
        return Gen(name=f"mb{index}", state_size=32)
    if kind == "nat":
        return SimpleNAT(name=f"mb{index}")
    return Firewall(name=f"mb{index}")


chain_configs = st.fixed_dictionaries({
    "kinds": st.lists(
        st.sampled_from(["monitor", "monitor-shared", "gen", "nat",
                         "firewall"]),
        min_size=1, max_size=4),
    "f": st.integers(min_value=0, max_value=2),
    "n_threads": st.sampled_from([1, 2]),
    "count": st.integers(min_value=20, max_value=150),
    "seed": st.integers(min_value=0, max_value=10_000),
})


@settings(max_examples=12, deadline=None)
@given(config=chain_configs)
def test_random_chain_full_protocol_invariants(config):
    sim = Simulator()
    egress = EgressRecorder(sim)
    middleboxes = [_middlebox(kind, i, config["n_threads"])
                   for i, kind in enumerate(config["kinds"])]
    chain = FTCChain(sim, middleboxes, f=config["f"], deliver=egress,
                     costs=FAST_COSTS, n_threads=config["n_threads"],
                     seed=config["seed"])
    chain.start()
    TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                     flows=balanced_flows(8, config["n_threads"]),
                     count=config["count"], streams=None)
    sim.run(until=0.03)  # generous drain (includes propagating timers)

    # 1. Complete release: every data packet that no middlebox filtered
    #    leaves the chain (our random mixes never filter).
    assert chain.total_released() == config["count"]

    # 2. Store convergence: all f+1 replicas of every middlebox agree.
    for index, mbox in enumerate(middleboxes):
        stores = [chain.store_of(mbox.name, pos)
                  for pos in chain.group_positions(index)]
        assert all(store == stores[0] for store in stores), (
            f"group of {mbox.name} diverged under {config}")

    # 3. No pending (out-of-order) logs after drain.
    for replica in chain.replicas:
        for state in replica.states.values():
            assert state.pending == []

    # 4. Memory bounded: retained logs pruned close to empty.
    for replica in chain.replicas:
        for state in replica.states.values():
            assert len(state.retained) <= config["count"]


@settings(max_examples=8, deadline=None)
@given(
    f=st.integers(min_value=1, max_value=2),
    count=st.integers(min_value=30, max_value=100),
    fail_position=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_random_failure_never_loses_released_state(f, count, fail_position,
                                                   seed):
    """After any single failure + recovery, every group store holds at
    least the updates of every released packet."""
    from repro.core import recover_positions
    sim = Simulator()
    egress = EgressRecorder(sim)
    middleboxes = [Monitor(name=f"m{i}", sharing_level=1, n_threads=2)
                   for i in range(3)]
    chain = FTCChain(sim, middleboxes, f=f, deliver=egress,
                     costs=FAST_COSTS, n_threads=2, seed=seed)
    chain.start()
    gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                           flows=balanced_flows(8, 2))

    def chaos(sim):
        yield sim.timeout(0.5e-3 + (seed % 7) * 0.2e-3)
        chain.fail_position(fail_position)
        yield sim.process(recover_positions(chain, [fail_position]))

    sim.process(chaos(sim))
    sim.run(until=0.02)
    gen.stop()
    sim.run(until=0.03)

    released = chain.total_released()
    for index, mbox in enumerate(middleboxes):
        for pos in chain.group_positions(index):
            assert mbox.total_count(chain.store_of(mbox.name, pos)) >= released
