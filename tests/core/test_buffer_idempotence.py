"""Duplicate-delivery idempotence at the buffer (PROTOCOL.md §8).

A wire-level duplicate that slips past the hop channel (or arrives on
a raw link) must be a complete no-op at chain egress: the packet is
released at most once, and re-absorbing the duplicate's piggyback
content leaves every commit floor exactly where it was.
"""

from hypothesis import given, settings, strategies as st

from repro.core.buffer import Buffer
from repro.core.costs import CostModel
from repro.core.piggyback import CommitVector, PiggybackLog, PiggybackMessage
from repro.net import FlowKey, Packet
from repro.sim import Simulator

COSTS = CostModel(cycle_jitter_frac=0.0)

entry_maps = st.dictionaries(st.integers(min_value=0, max_value=7),
                             st.integers(min_value=0, max_value=100),
                             max_size=5)


def _pkt(pid):
    pkt = Packet(flow=FlowKey(1, 2, 3, 4))
    pkt.pid = pid
    return pkt


def _msg(commit_entries, dep_entries, pid):
    message = PiggybackMessage(COSTS)
    if dep_entries:
        message.add_log(PiggybackLog("m", depvec=dict(dep_entries),
                                     updates={"k": 1}, packet_id=pid))
    if commit_entries:
        message.set_commit(CommitVector("m", dict(commit_entries)))
    return message


def _buffer(sim, released):
    return Buffer(sim, deliver=released.append,
                  send_feedback=lambda p: None, costs=COSTS)


class TestDuplicateHandle:
    @settings(max_examples=60, deadline=None)
    @given(commit_entries=entry_maps, dep_entries=entry_maps)
    def test_second_handle_is_a_noop(self, commit_entries, dep_entries):
        """Same pid handled twice: one release at most, floors frozen."""
        sim = Simulator()
        released = []
        buf = _buffer(sim, released)
        pkt = _pkt(pid=1_000_000)
        buf.handle(pkt, _msg(commit_entries, dep_entries, pkt.pid))
        floor_after_first = {mbox: dict(entries)
                             for mbox, entries in buf.commit_floor.items()}
        released_after_first = list(released)
        held_after_first = len(buf.held)

        # The duplicate carries identical content (a wire-level copy).
        buf.handle(pkt, _msg(commit_entries, dep_entries, pkt.pid))

        assert buf.commit_floor == floor_after_first
        assert released == released_after_first
        assert len(buf.held) == held_after_first
        assert buf.duplicates_dropped == 1
        assert released.count(pkt) <= 1

    def test_released_packet_not_released_twice(self):
        sim = Simulator()
        released = []
        buf = _buffer(sim, released)
        pkt = _pkt(pid=42)
        buf.handle(pkt, PiggybackMessage(COSTS))
        assert released == [pkt]
        buf.handle(pkt, PiggybackMessage(COSTS))
        assert released == [pkt]
        assert buf.duplicates_dropped == 1

    def test_held_packet_not_held_twice(self):
        sim = Simulator()
        released = []
        buf = _buffer(sim, released)
        pkt = _pkt(pid=43)
        message = _msg({}, {0: 5}, pkt.pid)
        buf.handle(pkt, message)
        assert len(buf.held) == 1
        buf.handle(pkt, _msg({}, {0: 5}, pkt.pid))
        assert len(buf.held) == 1
        # The eventual commit still releases it exactly once.
        buf.handle(_pkt(pid=44), _msg({0: 6}, {}, 44))
        assert released.count(pkt) == 1

    def test_duplicate_still_costs_cycles(self):
        """Dedup is not free: the packet was parsed before being binned."""
        sim = Simulator()
        buf = _buffer(sim, [])
        pkt = _pkt(pid=45)
        buf.handle(pkt, PiggybackMessage(COSTS))
        cycles = buf.handle(pkt, PiggybackMessage(COSTS))
        assert cycles == COSTS.buffer_cycles

    def test_overflow_shed_is_counted(self):
        sim = Simulator()
        released = []
        buf = Buffer(sim, deliver=released.append,
                     send_feedback=lambda p: None, costs=COSTS, max_held=2)
        for pid in range(100, 105):
            buf.handle(_pkt(pid=pid), _msg({}, {0: 5}, pid))
        assert len(buf.held) == 2
        assert buf.overflow_dropped == 3
        assert released == []
