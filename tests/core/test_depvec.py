"""Tests for dependency vectors and ordered replication state."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.depvec import DependencyVector, ProtocolError, ReplicationState
from repro.core.piggyback import CommitVector, PiggybackLog
from repro.stm import StateStore


class TestDependencyVector:
    def test_stamp_returns_pre_increment_values(self):
        vec = DependencyVector(4)
        first = vec.stamp({1})
        assert first == {1: 0}
        second = vec.stamp({1, 3})
        assert second == {1: 1, 3: 0}
        assert vec.seq == [0, 2, 0, 1]

    def test_paper_figure3_head_side(self):
        """Reproduce Fig 3: W(1) then R(1),W(3) on vector [0,3,4]."""
        vec = DependencyVector(3)
        vec.load({1: 3, 2: 4})
        vec.seq[0] = 0
        tx1 = vec.stamp({0})          # W(partition 0) -> "0,x,x"
        assert tx1 == {0: 0}
        tx2 = vec.stamp({0, 2})       # R(0),W(2)      -> "1,x,4"
        assert tx2 == {0: 1, 2: 4}
        assert vec.seq == [2, 3, 5]

    def test_snapshot_load_round_trip(self):
        vec = DependencyVector(8)
        vec.stamp({0, 5})
        vec.stamp({5})
        other = DependencyVector(8)
        other.load(vec.snapshot())
        assert other.seq == vec.seq


def _log(mbox="m", depvec=None, updates=None, pid=0):
    return PiggybackLog(mbox, depvec=depvec or {}, updates=updates or {},
                        packet_id=pid)


class TestReplicationState:
    def test_in_order_apply(self):
        state = ReplicationState("m", 4)
        assert state.offer(_log(depvec={0: 0}, updates={"k": 1})) == 1
        assert state.offer(_log(depvec={0: 1}, updates={"k": 2})) == 1
        assert state.store.get("k") == 2
        assert state.max == {0: 2}

    def test_out_of_order_held_then_applied(self):
        """Fig 3's replica side: the second log arrives first."""
        state = ReplicationState("m", 3)
        state.max = {0: 0, 1: 3, 2: 4}
        late = _log(depvec={0: 1, 2: 4}, updates={"b": 2})
        early = _log(depvec={0: 0}, updates={"a": 1})
        assert state.offer(late) == 0          # held
        assert len(state.pending) == 1
        assert state.offer(early) == 2         # both apply
        assert state.store.get("a") == 1
        assert state.store.get("b") == 2
        assert state.max == {0: 2, 1: 3, 2: 5}

    def test_duplicate_skipped(self):
        state = ReplicationState("m", 2)
        log = _log(depvec={0: 0}, updates={"k": 1})
        state.offer(log)
        assert state.offer(_log(depvec={0: 0}, updates={"k": 1})) == 0
        assert state.duplicates == 1
        assert state.store.get("k") == 1

    def test_noop_ignored(self):
        state = ReplicationState("m", 2)
        assert state.offer(_log()) == 0
        assert state.applied == 0

    def test_disjoint_partitions_commute(self):
        state_ab = ReplicationState("m", 4)
        state_ba = ReplicationState("m", 4)
        log_a = _log(depvec={0: 0}, updates={"a": 1})
        log_b = _log(depvec={1: 0}, updates={"b": 2})
        state_ab.offer(log_a)
        state_ab.offer(log_b)
        state_ba.offer(log_b)
        state_ba.offer(log_a)
        assert state_ab.store == state_ba.store
        assert state_ab.max == state_ba.max

    def test_partial_application_detected(self):
        state = ReplicationState("m", 4)
        state.offer(_log(depvec={0: 0}))
        with pytest.raises(ProtocolError):
            state._status(_log(depvec={0: 0, 1: 1}))

    def test_wrong_mbox_commit_rejected(self):
        state = ReplicationState("m", 4)
        with pytest.raises(ProtocolError):
            state.absorb_commit(CommitVector("other", {}))

    def test_commit_vector_full_and_delta(self):
        state = ReplicationState("m", 4)
        state.offer(_log(depvec={0: 0}))
        state.offer(_log(depvec={1: 0}))
        full = state.commit_vector()
        assert full.entries == {0: 1, 1: 1}
        delta = state.commit_vector(last_sent={0: 1})
        assert delta.entries == {1: 1}

    def test_pruning_drops_replicated_logs(self):
        state = ReplicationState("m", 4)
        state.offer(_log(depvec={0: 0}, updates={"k": 1}))
        state.offer(_log(depvec={0: 1}, updates={"k": 2}))
        assert len(state.retained) == 2
        state.absorb_commit(CommitVector("m", {0: 1}))
        assert len(state.retained) == 1    # first log pruned
        state.absorb_commit(CommitVector("m", {0: 2}))
        assert state.retained == []

    def test_freeze_discards_pending_and_blocks(self):
        state = ReplicationState("m", 4)
        state.offer(_log(depvec={0: 5}))   # out of order -> pending
        state.freeze()
        assert state.pending == []
        assert state.offer(_log(depvec={0: 0}, updates={"k": 1})) == 0
        assert "k" not in state.store
        state.thaw()
        assert state.offer(_log(depvec={0: 0}, updates={"k": 1})) == 1

    def test_export_import_round_trip(self):
        src = ReplicationState("m", 4)
        src.offer(_log(depvec={0: 0}, updates={"k": 1}))
        dst = ReplicationState("m", 4)
        dst.import_state(*src.export_state())
        assert dst.store == src.store
        assert dst.max == src.max
        assert len(dst.retained) == 1

    def test_any_arrival_order_converges(self):
        """Property: a replica applying a causal log set in any arrival
        order reaches the head's store (the heart of §4.3)."""
        head_vec = DependencyVector(4)
        head_store = StateStore()
        logs = []
        rng = random.Random(3)
        for i in range(12):
            keys = rng.sample(["a", "b", "c", "d"], rng.randint(1, 2))
            partitions = {hash(k) % 4 for k in keys}
            updates = {k: (i, k) for k in keys}
            head_store.apply_many(updates)
            logs.append(_log(depvec=head_vec.stamp(partitions),
                             updates=updates, pid=i))
        for _trial in range(20):
            shuffled = logs[:]
            rng.shuffle(shuffled)
            state = ReplicationState("m", 4)
            applied = state.offer_all(shuffled)
            assert applied == len(logs)
            assert state.pending == []
            assert state.store == head_store

    @settings(max_examples=30)
    @given(st.permutations(list(range(8))))
    def test_single_partition_total_order(self, order):
        """Logs on one partition apply in sequence-number order always."""
        logs = [_log(depvec={0: i}, updates={"v": i}) for i in range(8)]
        state = ReplicationState("m", 1)
        for index in order:
            state.offer(logs[index])
        assert state.store.get("v") == 7
        assert state.max == {0: 8}
