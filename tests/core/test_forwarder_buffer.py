"""Unit tests for the forwarder and buffer elements."""

import pytest

from repro.core.buffer import Buffer
from repro.core.costs import CostModel
from repro.core.forwarder import Forwarder
from repro.core.piggyback import CommitVector, PiggybackLog, PiggybackMessage
from repro.net import FlowKey, Packet
from repro.sim import Simulator

COSTS = CostModel(cycle_jitter_frac=0.0)


def _msg(*logs, commits=()):
    msg = PiggybackMessage(COSTS)
    for log in logs:
        msg.add_log(log)
    for commit in commits:
        msg.set_commit(commit)
    return msg


def _pkt(pid=None, kind="data"):
    pkt = Packet(flow=FlowKey(1, 2, 3, 4), kind=kind)
    if pid is not None:
        pkt.pid = pid
    return pkt


class TestForwarder:
    def test_feedback_logs_attach_to_next_packet(self):
        sim = Simulator()
        fwd = Forwarder(sim, inject=lambda p: None, costs=COSTS)
        log = PiggybackLog("m", depvec={0: 0}, updates={"k": 1})
        fwd.absorb_feedback(_msg(log))
        message = PiggybackMessage(COSTS)
        cycles = fwd.attach(message)
        assert message.logs_for("m") == [log]
        assert cycles > COSTS.forwarder_cycles
        # Pending drained: second packet gets nothing extra.
        second = PiggybackMessage(COSTS)
        fwd.attach(second)
        assert second.n_logs == 0
        fwd.stop()

    def test_commits_attach_once_per_update(self):
        sim = Simulator()
        fwd = Forwarder(sim, inject=lambda p: None, costs=COSTS)
        fwd.absorb_feedback(_msg(commits=[CommitVector("m", {0: 3})]))
        first = PiggybackMessage(COSTS)
        fwd.attach(first)
        assert first.commit_for("m").entries == {0: 3}
        second = PiggybackMessage(COSTS)
        fwd.attach(second)
        assert second.commit_for("m") is None  # not dirty anymore
        # A stale (lower) commit does not re-dirty.
        fwd.absorb_feedback(_msg(commits=[CommitVector("m", {0: 2})]))
        third = PiggybackMessage(COSTS)
        fwd.attach(third)
        assert third.commit_for("m") is None
        fwd.stop()

    def test_propagating_timer_fires_when_idle_with_pending(self):
        sim = Simulator()
        injected = []
        fwd = Forwarder(sim, inject=injected.append, costs=COSTS)
        fwd.absorb_feedback(_msg(PiggybackLog("m", depvec={0: 0})))
        sim.run(until=3 * COSTS.propagation_timeout_s)
        assert len(injected) >= 1
        assert injected[0].kind == "propagating"
        assert injected[0].attachment("ftc").n_logs == 1
        fwd.stop()

    def test_no_propagating_packet_without_pending_state(self):
        sim = Simulator()
        injected = []
        fwd = Forwarder(sim, inject=injected.append, costs=COSTS)
        sim.run(until=5 * COSTS.propagation_timeout_s)
        assert injected == []
        fwd.stop()

    def test_traffic_resets_idle_timer(self):
        sim = Simulator()
        injected = []
        fwd = Forwarder(sim, inject=injected.append, costs=COSTS)

        def traffic(sim):
            for _ in range(20):
                fwd.absorb_feedback(_msg(PiggybackLog("m", depvec={0: 0})))
                fwd.attach(PiggybackMessage(COSTS))
                yield sim.timeout(COSTS.propagation_timeout_s / 4)

        sim.process(traffic(sim))
        sim.run(until=COSTS.propagation_timeout_s * 4)
        assert injected == []
        fwd.stop()


class TestBuffer:
    def _buffer(self, sim):
        released, feedback = [], []
        buf = Buffer(sim, deliver=released.append,
                     send_feedback=feedback.append, costs=COSTS)
        return buf, released, feedback

    def test_packet_without_requirements_released_immediately(self):
        sim = Simulator()
        buf, released, _ = self._buffer(sim)
        pkt = _pkt()
        buf.handle(pkt, _msg())
        assert released == [pkt]

    def test_packet_with_uncommitted_log_held(self):
        sim = Simulator()
        buf, released, _ = self._buffer(sim)
        pkt = _pkt(pid=77)
        log = PiggybackLog("m", depvec={0: 5}, updates={"k": 1}, packet_id=77)
        buf.handle(pkt, _msg(log))
        assert released == []
        assert len(buf.held) == 1

    def test_later_commit_releases_held_packet(self):
        sim = Simulator()
        buf, released, _ = self._buffer(sim)
        pkt = _pkt(pid=77)
        buf.handle(pkt, _msg(PiggybackLog("m", depvec={0: 5},
                                          updates={"k": 1}, packet_id=77)))
        # Commit covering seq 5 arrives on a later packet.
        later = _pkt(pid=78)
        buf.handle(later, _msg(commits=[CommitVector("m", {0: 6})]))
        assert pkt in released and later in released
        assert buf.held == []

    def test_insufficient_commit_keeps_holding(self):
        sim = Simulator()
        buf, released, _ = self._buffer(sim)
        pkt = _pkt(pid=77)
        buf.handle(pkt, _msg(PiggybackLog("m", depvec={0: 5},
                                          updates={"k": 1}, packet_id=77)))
        buf.handle(_pkt(), _msg(commits=[CommitVector("m", {0: 5})]))
        assert pkt not in released

    def test_own_commit_on_same_packet_releases_immediately(self):
        """When the final tail sits at the last position, the packet's
        own commit vector arrives with it -- no hold."""
        sim = Simulator()
        buf, released, _ = self._buffer(sim)
        pkt = _pkt(pid=9)
        buf.handle(pkt, _msg(commits=[CommitVector("m", {0: 10})]))
        assert released == [pkt]

    def test_leftover_logs_feed_back_to_forwarder(self):
        sim = Simulator()
        buf, _, feedback = self._buffer(sim)
        log = PiggybackLog("m", depvec={0: 0}, updates={"k": 1}, packet_id=1)
        buf.handle(_pkt(pid=1), _msg(log))
        sim.run(until=0.001)
        assert len(feedback) == 1
        message = feedback[0].attachment("ftc")
        assert message.logs_for("m") == [log]
        buf.stop()

    def test_feedback_batches_under_load(self):
        sim = Simulator()
        buf, _, feedback = self._buffer(sim)

        def burst(sim):
            for i in range(50):
                log = PiggybackLog("m", depvec={0: i}, updates={"k": i},
                                   packet_id=i)
                buf.handle(_pkt(pid=i), _msg(log))
                yield sim.timeout(1e-8)  # far faster than min interval

        sim.process(burst(sim))
        sim.run(until=0.001)
        assert 1 <= len(feedback) < 50
        total_logs = sum(p.attachment("ftc").n_logs for p in feedback)
        assert total_logs == 50
        buf.stop()

    def test_propagating_packet_consumed_not_released(self):
        sim = Simulator()
        buf, released, _ = self._buffer(sim)
        buf.handle(_pkt(kind="propagating"),
                   _msg(commits=[CommitVector("m", {0: 1})]))
        assert released == []
        assert buf.propagating_consumed == 1

    def test_release_strips_message(self):
        sim = Simulator()
        buf, released, _ = self._buffer(sim)
        pkt = _pkt()
        buf.handle(pkt, _msg())
        assert released[0].attachment("ftc") is None

    def test_noop_log_imposes_no_requirement(self):
        sim = Simulator()
        buf, released, _ = self._buffer(sim)
        pkt = _pkt(pid=4)
        buf.handle(pkt, _msg(PiggybackLog("m", packet_id=4)))
        assert released == [pkt]

    def test_held_peak_statistic(self):
        sim = Simulator()
        buf, _, _ = self._buffer(sim)
        for i in range(5):
            buf.handle(_pkt(pid=i),
                       _msg(PiggybackLog("m", depvec={0: i + 100},
                                         updates={"k": 1}, packet_id=i)))
        assert buf.held_peak == 5
