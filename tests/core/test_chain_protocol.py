"""Integration tests: the FTC chain protocol end to end.

These exercise the correctness invariants of DESIGN.md §5: release
safety, log propagation, store convergence, wrap-around replication,
propagating packets, and piggyback pruning.
"""

import pytest

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import (
    Firewall,
    Gen,
    MazuNAT,
    Monitor,
    Rule,
    ch_n,
    ch_rec,
)
from repro.net import FlowKey, Packet, TrafficGenerator, balanced_flows, ip
from repro.sim import Simulator

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


def build(sim, middleboxes, f=1, n_threads=2, **kwargs):
    egress = EgressRecorder(sim, keep_packets=True)
    chain = FTCChain(sim, middleboxes, f=f, deliver=egress,
                     costs=FAST_COSTS, n_threads=n_threads, **kwargs)
    chain.start()
    return chain, egress


def drive(sim, chain, count=500, rate=1e6, n_flows=8, run_for=0.02):
    gen = TrafficGenerator(sim, chain.ingress, rate_pps=rate,
                           flows=balanced_flows(n_flows, chain.n_threads),
                           count=count)
    sim.run(until=run_for)
    return gen


def group_stores(chain, mbox_name):
    index = chain.mbox_index(mbox_name)
    return [chain.store_of(mbox_name, pos)
            for pos in chain.group_positions(index)]


class TestBasicOperation:
    def test_all_packets_released(self):
        sim = Simulator()
        chain, egress = build(sim, ch_n(3, n_threads=2))
        drive(sim, chain, count=400)
        assert chain.total_released() == 400
        assert egress.count == 400

    def test_replication_factor_f_plus_1(self):
        """Every middlebox's state exists identically at f+1 replicas."""
        sim = Simulator()
        chain, _ = build(sim, ch_n(4, n_threads=2), f=2)
        drive(sim, chain, count=300)
        for mbox in chain.middleboxes:
            stores = group_stores(chain, mbox.name)
            assert len(stores) == 3
            assert all(s == stores[0] for s in stores)
            assert len(stores[0]) > 0

    def test_monitor_counts_match_traffic(self):
        sim = Simulator()
        chain, _ = build(sim, ch_n(2, n_threads=2))
        drive(sim, chain, count=250)
        for mbox in chain.middleboxes:
            for store in group_stores(chain, mbox.name):
                assert mbox.total_count(store) == 250

    def test_wrap_around_group_replicates_at_chain_start(self):
        """The last middlebox's state must reach the first server (§5)."""
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2), f=1)
        drive(sim, chain, count=200)
        last = chain.middleboxes[-1]
        assert chain.tail_position(2) == 0
        store_at_first = chain.store_of(last.name, 0)
        assert last.total_count(store_at_first) == 200

    def test_release_only_after_replication(self):
        """Sample released packets: their updates must already be at
        every replica of every wrap-group middlebox (release safety)."""
        sim = Simulator()
        chain, egress = build(sim, ch_n(3, n_threads=2))
        released_checks = []
        last = chain.middleboxes[-1]

        def checking_deliver(packet):
            egress(packet)
            counts = [last.total_count(store)
                      for store in group_stores(chain, last.name)]
            released_checks.append((egress.count, min(counts)))

        chain.deliver = checking_deliver
        drive(sim, chain, count=200)
        # When the k-th packet is released, at least k updates of the
        # last middlebox are present at EVERY group replica.
        for released, min_count in released_checks:
            assert min_count >= released

    def test_log_propagation_invariant(self):
        """§4.1: each replica's successor has the same or prior state.

        Sampled during live operation for a mid-chain middlebox.
        """
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2), f=2)
        samples = []

        def sampler(sim):
            mbox = chain.middleboxes[0]
            group = chain.group_positions(0)
            while True:
                yield sim.timeout(37e-6)
                counts = [mbox.total_count(chain.store_of(mbox.name, pos))
                          for pos in group]
                samples.append(counts)

        sim.process(sampler(sim))
        drive(sim, chain, count=400)
        assert len(samples) > 50
        for counts in samples:
            # Monotone non-increasing along the group: head >= ... >= tail.
            assert all(counts[i] >= counts[i + 1]
                       for i in range(len(counts) - 1))

    def test_pruning_bounds_retained_logs(self):
        """§3.2: replicated updates are pruned; memory stays bounded."""
        sim = Simulator()
        chain, _ = build(sim, ch_n(2, n_threads=2))
        drive(sim, chain, count=2000, rate=2e6, run_for=0.05)
        for replica in chain.replicas:
            for state in replica.states.values():
                assert len(state.retained) < 200
                assert len(state.pending) == 0

    def test_latency_includes_commit_wait(self):
        """FTC latency > bare traversal: release waits for wrap commits."""
        sim = Simulator()
        chain, egress = build(sim, ch_n(2, n_threads=2))
        drive(sim, chain, count=300)
        traversal = 2 * FAST_COSTS.hop_delay_s * 1e6
        assert egress.latency.mean_us() > traversal


class TestChainVariants:
    def test_single_middlebox_extension_replicas(self):
        """§5.1: a 1-middlebox chain with f=2 gets two pure replicas."""
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name="m", n_threads=2)], f=2)
        assert chain.n_positions == 3
        assert chain.replicas[1].middlebox is None
        assert chain.replicas[2].middlebox is None
        drive(sim, chain, count=200)
        assert chain.total_released() == 200
        stores = group_stores(chain, "m")
        assert all(s == stores[0] for s in stores)

    def test_f_zero_no_replication(self):
        sim = Simulator()
        chain, _ = build(sim, ch_n(2, n_threads=2), f=0)
        drive(sim, chain, count=100)
        assert chain.total_released() == 100
        # Group of each middlebox is just its own head.
        assert chain.group_positions(0) == [0]

    def test_mazunat_rewrites_and_replicates(self):
        sim = Simulator()
        chain, egress = build(sim, [MazuNAT(name="nat"),
                                    Monitor(name="mon", n_threads=2)])
        drive(sim, chain, count=200)
        assert egress.count == 200
        # Released packets carry translated flows.
        assert all(p.flow.src_ip == ip("203.0.113.1") for p in egress.packets)
        stores = group_stores(chain, "nat")
        assert stores[0] == stores[1]
        assert len(stores[0]) > 0

    def test_firewall_filtering_state_still_replicates(self):
        """§5.1: a filtered packet's piggybacked state must propagate
        (via a propagating packet), not die with the packet."""
        sim = Simulator()
        mboxes = [Monitor(name="mon", n_threads=2),
                  Firewall(name="fw", default_action="deny")]
        chain, egress = build(sim, mboxes)
        drive(sim, chain, count=150)
        assert egress.count == 0  # everything filtered
        # Monitor's updates still replicated at both group members.
        stores = group_stores(chain, "mon")
        assert stores[0] == stores[1]
        assert mboxes[0].total_count(stores[0]) == 150
        assert chain.replicas[1].propagating_emitted > 0

    def test_ch_rec_composition_end_to_end(self):
        sim = Simulator()
        mboxes = ch_rec(n_threads=2)
        mboxes[0].rules.append(Rule(action="deny", dst_port=23))
        chain, egress = build(sim, mboxes)
        flows = balanced_flows(8, 2)
        blocked = FlowKey(ip("10.9.9.9"), ip("8.8.8.8"), 1234, 23)

        def mixed(sim):
            for i in range(120):
                yield sim.timeout(1e-6)
                flow = blocked if i % 3 == 0 else flows[i % len(flows)]
                chain.ingress(Packet(flow=flow, created_at=sim.now))

        sim.process(mixed(sim))
        sim.run(until=0.02)
        assert egress.count == 80
        assert mboxes[0].packets_dropped == 40
        for name in ("monitor", "simplenat"):
            stores = group_stores(chain, name)
            assert stores[0] == stores[1]

    def test_gen_chain_state_size(self):
        sim = Simulator()
        from repro.middlebox import ch_gen
        chain, egress = build(sim, ch_gen(state_size=64))
        drive(sim, chain, count=100)
        assert egress.count == 100
        stores = group_stores(chain, "gen1")
        assert stores[0] == stores[1]


class TestPropagatingTimer:
    def test_idle_chain_flushes_state_via_propagating_packets(self):
        """§5.1: with no incoming traffic, the forwarder timer keeps
        state flowing so the buffer eventually releases everything."""
        sim = Simulator()
        chain, egress = build(sim, ch_n(2, n_threads=2))
        # A short burst, then silence.
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                               flows=balanced_flows(4, 2), count=50)
        sim.run(until=0.05)
        assert chain.total_released() == 50
        assert len(chain.buffer.held) == 0
        assert chain.forwarder.propagating_sent > 0

    def test_propagating_packets_not_delivered(self):
        sim = Simulator()
        chain, egress = build(sim, ch_n(2, n_threads=2))
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=30)
        sim.run(until=0.05)
        assert egress.count == 30  # no propagating packet leaked out
        assert all(p.is_data for p in egress.packets)


class TestValidation:
    def test_empty_chain_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FTCChain(sim, [], f=1)

    def test_negative_f_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FTCChain(sim, ch_n(2), f=-1)

    def test_duplicate_names_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FTCChain(sim, [Monitor(name="x"), Monitor(name="x")])

    def test_group_geometry(self):
        sim = Simulator()
        chain = FTCChain(sim, ch_n(5, n_threads=2), f=2,
                         costs=FAST_COSTS, n_threads=2)
        assert chain.group_positions(4) == [4, 0, 1]
        assert chain.tail_position(4) == 1
        assert chain.predecessor_in_group(4, 0) == 4
        assert chain.successor_in_group(4, 4) == 0
        with pytest.raises(ValueError):
            chain.predecessor_in_group(4, 4)  # the head
        with pytest.raises(ValueError):
            chain.successor_in_group(4, 1)  # the tail
