"""Tests for the hybrid-HTM fast path (§3.2)."""

import pytest

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import Monitor
from repro.net import TrafficGenerator, balanced_flows
from repro.sim import Simulator
from repro.stm import PartitionSpace, StateStore, TransactionManager

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


class TestHTMManager:
    def _manager(self, sim, htm=True):
        return TransactionManager(sim, StateStore(), PartitionSpace(8),
                                  htm=htm)

    def test_uncontended_commits_via_htm(self):
        sim = Simulator()
        manager = self._manager(sim)

        def body(ctx):
            ctx.write("k", 1)

        result = sim.run(until=sim.process(manager.run(body)))
        assert result.used_htm
        assert manager.htm_commits == 1
        assert manager.htm_fallbacks == 0
        assert manager.store.get("k") == 1

    def test_contended_falls_back_to_locks(self):
        sim = Simulator()
        manager = self._manager(sim)
        paths = []

        def body(ctx):
            ctx.write("shared", ctx.read("shared", 0) + 1)

        def worker(sim):
            result = yield from manager.run(body, hold_time=1e-6)
            paths.append(result.used_htm)

        for _ in range(4):
            sim.process(worker(sim))
        sim.run()
        assert manager.store.get("shared") == 4
        assert paths[0] is True       # first one found everything free
        assert False in paths         # the rest hit contention
        assert manager.htm_fallbacks >= 1

    def test_htm_disabled_never_uses_fast_path(self):
        sim = Simulator()
        manager = self._manager(sim, htm=False)
        result = sim.run(until=sim.process(
            manager.run(lambda ctx: ctx.write("k", 1))))
        assert not result.used_htm
        assert manager.htm_commits == 0

    def test_htm_overhead_cheaper_than_locks(self):
        def elapsed(htm):
            sim = Simulator()
            manager = self._manager(sim, htm=htm)
            sim.run(until=sim.process(manager.run(
                lambda ctx: ctx.write("k", 1),
                hold_time=1e-6, lock_overhead_s=1e-7, htm_overhead_s=2e-8)))
            return sim.now

        assert elapsed(htm=True) < elapsed(htm=False)

    def test_serializability_preserved_with_htm(self):
        sim = Simulator()
        manager = self._manager(sim)

        def body(ctx):
            ctx.write("count", ctx.read("count", 0) + 1)

        def worker(sim):
            yield from manager.run(body, hold_time=5e-7)

        for _ in range(20):
            sim.process(worker(sim))
        sim.run()
        assert manager.store.get("count") == 20


class TestHTMChain:
    def test_htm_chain_end_to_end(self):
        sim = Simulator()
        egress = EgressRecorder(sim)
        chain = FTCChain(sim, [Monitor(name="m", sharing_level=1,
                                       n_threads=2)],
                         f=1, deliver=egress, costs=FAST_COSTS,
                         n_threads=2, use_htm=True)
        chain.start()
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(8, 2), count=200)
        sim.run(until=0.01)
        assert chain.total_released() == 200
        manager = chain.replica_at(0).runtime.manager
        assert manager.htm_commits > 0
        stores = [chain.store_of("m", pos)
                  for pos in chain.group_positions(0)]
        assert stores[0] == stores[1]

    def test_htm_improves_serialized_throughput_economics(self):
        """With sharing level 1 (no conflicts), HTM cuts per-packet
        cycles: a single thread gets faster."""
        def tput(use_htm):
            sim = Simulator()
            egress = EgressRecorder(sim)
            chain = FTCChain(sim, [Monitor(name="m", sharing_level=1,
                                           n_threads=8)],
                             f=1, deliver=egress, costs=FAST_COSTS,
                             n_threads=1, use_htm=use_htm)
            chain.start()
            TrafficGenerator(sim, chain.ingress, rate_pps=12e6,
                             flows=balanced_flows(16, 1))
            sim.run(until=0.5e-3)
            egress.throughput.start_window()
            sim.run(until=1.5e-3)
            return egress.throughput.rate_mpps()

        assert tput(True) > tput(False) * 1.02
