"""Packet loss between replicas: retransmission closes log gaps (§4.1)."""

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import ch_n
from repro.net import LossyLink, TrafficGenerator, balanced_flows
from repro.sim import Simulator

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


def _make_lossy(chain, src_pos, dst_pos, drop_every):
    """Replace one inter-replica link with a lossy one."""
    net = chain.net
    src, dst = chain.route[src_pos], chain.route[dst_pos]
    old = net.link(src, dst)
    lossy = LossyLink(net.sim, old.sink, drop_every=drop_every,
                      delay_s=old.delay_s, bandwidth_bps=old.bandwidth_bps,
                      name=old.name)
    net._links[(src, dst)] = lossy
    return lossy


class TestRetransmission:
    def test_dropped_packets_leave_log_gaps_that_heal(self):
        sim = Simulator()
        egress = EgressRecorder(sim)
        chain = FTCChain(sim, ch_n(2, n_threads=2), f=1, deliver=egress,
                         costs=FAST_COSTS, n_threads=2)
        chain.start()
        lossy = _make_lossy(chain, 0, 1, drop_every=20)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(8, 2), count=400)
        sim.run(until=0.05)  # generous drain for watchdog rounds

        assert lossy.dropped > 0
        mon1 = chain.middleboxes[0]
        head_count = mon1.total_count(chain.store_of("monitor1", 0))
        tail_count = mon1.total_count(chain.store_of("monitor1", 1))
        # The head processed all 400; the tail missed the dropped
        # packets' logs on the wire but recovered them by asking the
        # head for its retained logs.
        assert head_count == 400
        assert tail_count == 400
        assert chain.replica_at(1).retransmit_requests > 0
        # Dropped data packets themselves are gone (clients' problem).
        assert egress.count == 400 - lossy.dropped

    def test_no_pending_logs_left_after_heal(self):
        sim = Simulator()
        egress = EgressRecorder(sim)
        chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                         costs=FAST_COSTS, n_threads=2)
        chain.start()
        _make_lossy(chain, 1, 2, drop_every=15)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(8, 2), count=300)
        sim.run(until=0.06)
        for replica in chain.replicas:
            for state in replica.states.values():
                assert state.pending == []

    def test_lossless_run_never_retransmits(self):
        sim = Simulator()
        egress = EgressRecorder(sim)
        chain = FTCChain(sim, ch_n(2, n_threads=2), f=1, deliver=egress,
                         costs=FAST_COSTS, n_threads=2)
        chain.start()
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(8, 2), count=300)
        sim.run(until=0.03)
        assert all(r.retransmit_requests == 0 for r in chain.replicas)
