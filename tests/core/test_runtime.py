"""Tests for the head runtime (transaction + depvec stamping + logs)."""

import pytest

from repro.core import DEFAULT_COSTS, MiddleboxRuntime, ReplicationState
from repro.core.costs import CostModel
from repro.middlebox import DROP, Firewall, Gen, Monitor, PASS, Rule
from repro.net import FlowKey, Packet, ip
from repro.sim import Simulator


def _runtime(sim, mbox, costs=None, **kwargs):
    costs = costs or DEFAULT_COSTS
    state = ReplicationState(mbox.name, costs.n_partitions)
    return MiddleboxRuntime(sim, mbox, state, costs=costs, **kwargs)


def _pkt(sport=1000):
    return Packet(flow=FlowKey(ip("10.0.0.1"), ip("8.8.8.8"), sport, 80))


def run(sim, gen):
    return sim.run(until=sim.process(gen))


class TestMiddleboxRuntime:
    def test_write_transaction_produces_log(self):
        sim = Simulator()
        runtime = _runtime(sim, Monitor(name="m", n_threads=1))
        verdict, log = run(sim, runtime.process(_pkt(), thread_id=0))
        assert verdict is PASS
        assert log is not None and not log.is_noop
        assert log.updates == {("count", 0): 1}
        assert log.depvec  # stamped

    def test_depvec_advances_per_write(self):
        sim = Simulator()
        runtime = _runtime(sim, Monitor(name="m", n_threads=1))
        _, first = run(sim, runtime.process(_pkt(), thread_id=0))
        _, second = run(sim, runtime.process(_pkt(), thread_id=0))
        (partition,) = first.depvec
        assert first.depvec[partition] == 0
        assert second.depvec[partition] == 1

    def test_head_records_own_log_locally(self):
        sim = Simulator()
        runtime = _runtime(sim, Monitor(name="m", n_threads=1))
        run(sim, runtime.process(_pkt(), thread_id=0))
        assert runtime.state.applied == 1
        assert len(runtime.state.retained) == 1
        assert runtime.state.max == {p: s + 1 for p, s in
                                     runtime.depvec.snapshot().items()} or \
            runtime.state.max  # max equals post-increment vector
        assert runtime.state.max == {list(runtime.state.max)[0]: 1}

    def test_read_only_transaction_noop_log(self):
        sim = Simulator()
        gen = Gen(name="g", state_size=16)
        runtime = _runtime(sim, gen)
        pkt = _pkt()
        run(sim, runtime.process(pkt, thread_id=0))

        class ReadOnly(Monitor):
            def process(self, packet, ctx):
                ctx.read(("blob", 0))
                return PASS

        ro_runtime = MiddleboxRuntime(sim, ReadOnly(name="ro", n_threads=1),
                                      runtime.state)
        verdict, log = run(sim, ro_runtime.process(_pkt(), thread_id=0))
        assert log is not None and log.is_noop
        # Reads are not replicated (no depvec, no updates).
        assert log.updates == {} and log.depvec == {}

    def test_stateless_middlebox_skips_stm(self):
        sim = Simulator()
        fw = Firewall(name="fw", rules=[Rule(action="deny", dst_port=23)])
        runtime = _runtime(sim, fw)
        verdict, log = run(sim, runtime.process(_pkt(), thread_id=0))
        assert verdict is PASS and log is None
        assert runtime.manager.committed == 0

    def test_drop_verdict_passes_through(self):
        sim = Simulator()
        fw = Firewall(name="fw", default_action="deny")
        runtime = _runtime(sim, fw)
        verdict, log = run(sim, runtime.process(_pkt(), thread_id=0))
        assert verdict is DROP

    def test_hold_time_charged(self):
        sim = Simulator()
        costs = CostModel(cycle_jitter_frac=0.0)
        runtime = _runtime(sim, Monitor(name="m", n_threads=1), costs=costs)
        run(sim, runtime.process(_pkt(), thread_id=0))
        minimum = costs.cycles_to_seconds(
            costs.processing_cycles + costs.locking_cycles)
        assert sim.now >= minimum

    def test_cycle_counters_track_table2_components(self):
        sim = Simulator()
        costs = CostModel(cycle_jitter_frac=0.0)
        runtime = _runtime(sim, Monitor(name="m", n_threads=1), costs=costs)
        for _ in range(10):
            run(sim, runtime.process(_pkt(), thread_id=0))
        assert runtime.counters.per_packet("processing") == pytest.approx(355.0)
        assert runtime.counters.per_packet("locking") == pytest.approx(152.0)
        assert runtime.counters.per_packet("piggyback_copy") > 0

    def test_replicate_false_produces_no_log(self):
        sim = Simulator()
        runtime = _runtime(sim, Monitor(name="m", n_threads=1), replicate=False)
        verdict, log = run(sim, runtime.process(_pkt(), thread_id=0))
        assert verdict is PASS and log is None
        assert runtime.state.store.get(("count", 0)) == 1  # still processed

    def test_concurrent_heads_stamp_disjoint_sequences(self):
        """Two threads on one shared counter: logs must totally order."""
        sim = Simulator()
        runtime = _runtime(sim, Monitor(name="m", sharing_level=2, n_threads=2))
        logs = []

        def worker(tid):
            for _ in range(5):
                _, log = yield from runtime.process(_pkt(sport=tid), tid)
                logs.append(log)

        sim.process(worker(0))
        sim.process(worker(1))
        sim.run()
        (partition,) = {p for log in logs for p in log.depvec}
        seqs = sorted(log.depvec[partition] for log in logs)
        assert seqs == list(range(10))

    def test_custom_processing_cycles_override(self):
        sim = Simulator()
        costs = CostModel(cycle_jitter_frac=0.0)
        slow = Monitor(name="m", n_threads=1, processing_cycles=10000)
        runtime = _runtime(sim, slow, costs=costs)
        run(sim, runtime.process(_pkt(), thread_id=0))
        assert sim.now >= costs.cycles_to_seconds(10000)
