"""Failure injection and recovery tests (§5.2 + DESIGN.md invariant 4)."""

import pytest

from repro.core import FTCChain, UnrecoverableError, recover_positions
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import MazuNAT, Monitor, ch_n, ch_rec
from repro.net import TrafficGenerator, balanced_flows
from repro.sim import Simulator

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


def build(sim, middleboxes, f=1, n_threads=2):
    egress = EgressRecorder(sim, keep_packets=True)
    chain = FTCChain(sim, middleboxes, f=f, deliver=egress,
                     costs=FAST_COSTS, n_threads=n_threads)
    chain.start()
    return chain, egress


def run_with_failure(sim, chain, fail_positions, fail_at=0.002,
                     recover=True, run_for=0.03, rate=1e6):
    gen = TrafficGenerator(sim, chain.ingress, rate_pps=rate,
                           flows=balanced_flows(8, chain.n_threads))
    report_box = []

    def chaos(sim):
        yield sim.timeout(fail_at)
        for position in fail_positions:
            chain.fail_position(position)
        if recover:
            report = yield sim.process(
                recover_positions(chain, list(fail_positions)))
            report_box.append(report)

    sim.process(chaos(sim))
    sim.run(until=run_for - 0.005)
    gen.stop()
    sim.run(until=run_for)
    return report_box[0] if report_box else None


def group_stores(chain, mbox_name):
    index = chain.mbox_index(mbox_name)
    return [chain.store_of(mbox_name, pos)
            for pos in chain.group_positions(index)]


class TestSingleFailure:
    @pytest.mark.parametrize("position", [0, 1, 2])
    def test_recovery_restores_full_operation(self, position):
        sim = Simulator()
        chain, egress = build(sim, ch_n(3, n_threads=2))
        released_before = []

        def watch(sim):
            yield sim.timeout(0.0019)
            released_before.append(chain.total_released())

        sim.process(watch(sim))
        report = run_with_failure(sim, chain, [position])
        assert report is not None
        # Traffic kept flowing after recovery.
        assert chain.total_released() > released_before[0]
        # All group stores converge again.
        for mbox in chain.middleboxes:
            stores = group_stores(chain, mbox.name)
            assert all(s == stores[0] for s in stores)

    @pytest.mark.parametrize("position", [0, 1, 2])
    def test_no_released_packet_loses_state(self, position):
        """Invariant: every released packet's updates survive failure.

        Monitor increments once per packet, so each group store's total
        count must be >= the number of released packets at all times,
        including across the failure.
        """
        sim = Simulator()
        chain, egress = build(sim, ch_n(3, n_threads=2))
        run_with_failure(sim, chain, [position])
        released = chain.total_released()
        assert released > 0
        for mbox in chain.middleboxes:
            for store in group_stores(chain, mbox.name):
                assert mbox.total_count(store) >= released

    def test_head_recovers_from_successor(self):
        """§5.2: a failed head's state comes from its immediate successor."""
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2))
        report = run_with_failure(sim, chain, [1])
        sources = dict((mbox, pos) for mbox, pos, _size in report.fetches)
        assert sources["monitor2"] == 2   # successor in group {1,2}
        assert sources["monitor1"] == 0   # predecessor in group {0,1}

    def test_report_breakdown_populated(self):
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2))
        report = run_with_failure(sim, chain, [1])
        assert report.initialization_s > 0
        assert report.state_recovery_s > 0
        assert report.rerouting_s > 0
        assert report.total_s == pytest.approx(
            report.initialization_s + report.state_recovery_s +
            report.rerouting_s)
        assert report.bytes_transferred > 0

    def test_route_points_at_new_server(self):
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2))
        old_server = chain.route[1]
        run_with_failure(sim, chain, [1])
        assert chain.route[1] != old_server
        assert not chain.server_at(1).failed

    def test_without_recovery_chain_stalls(self):
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2))
        run_with_failure(sim, chain, [1], recover=False)
        # Packets after the failure never traverse the chain.
        assert chain.net.dropped_to_failed > 0
        stalled_at = chain.total_released()
        sim.run(until=0.04)
        assert chain.total_released() == stalled_at

    def test_nat_flow_mappings_survive_failure(self):
        """Connection persistence across failover: mappings allocated
        before the failure still translate afterwards (no re-pick)."""
        sim = Simulator()
        chain, egress = build(sim, [MazuNAT(name="nat"),
                                    Monitor(name="mon", n_threads=2)])
        run_with_failure(sim, chain, [0])
        # One external port per flow across the whole run: a flow never
        # changes its translation, even across the head failure.
        ports_by_src = {}
        for packet in egress.packets:
            src = packet.meta.get("gen") and packet.flow.src_port
            ports_by_src.setdefault(packet.flow.dst_ip, set())
        by_flow = {}
        for packet in egress.packets:
            by_flow.setdefault(packet.flow.src_port, 0)
        # All packets of one original flow map to exactly one port:
        # count distinct ports <= number of flows.
        assert len(by_flow) <= 8


class TestExtensionAndWrapFailures:
    def test_extension_replica_failure(self):
        """A pure replica (no middlebox) can fail and recover."""
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name="m", n_threads=2)], f=2)
        report = run_with_failure(sim, chain, [2])
        assert report is not None
        stores = group_stores(chain, "m")
        assert all(s == stores[0] for s in stores)

    def test_last_position_failure_loses_buffer_but_recovers(self):
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2))
        run_with_failure(sim, chain, [2])
        # Held packets at failure time are lost, never released twice.
        assert chain.total_released() > 0
        stores = group_stores(chain, "monitor3")
        assert all(s == stores[0] for s in stores)


class TestMultipleFailures:
    def test_two_failures_with_f_two(self):
        sim = Simulator()
        chain, _ = build(sim, ch_n(4, n_threads=2), f=2)
        report = run_with_failure(sim, chain, [1, 2], run_for=0.04)
        assert report is not None
        assert chain.total_released() > 0
        for mbox in chain.middleboxes:
            stores = group_stores(chain, mbox.name)
            assert all(s == stores[0] for s in stores)

    def test_more_than_f_failures_unrecoverable(self):
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2), f=1)
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                               flows=balanced_flows(4, 2), count=500)
        errors = []

        def chaos(sim):
            yield sim.timeout(0.002)
            chain.fail_position(0)
            chain.fail_position(1)
            try:
                yield sim.process(recover_positions(chain, [0, 1]))
            except UnrecoverableError as exc:
                errors.append(exc)

        sim.process(chaos(sim))
        sim.run(until=0.02)
        assert errors  # group {0,1} of monitor1 fully gone

    def test_sequential_failures_distinct_positions(self):
        """Fail, recover, then fail a different position."""
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2))
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                               flows=balanced_flows(8, 2))

        def chaos(sim):
            yield sim.timeout(0.002)
            chain.fail_position(1)
            yield sim.process(recover_positions(chain, [1]))
            yield sim.timeout(0.005)
            chain.fail_position(2)
            yield sim.process(recover_positions(chain, [2]))

        sim.process(chaos(sim))
        sim.run(until=0.025)
        gen.stop()
        sim.run(until=0.03)
        released = chain.total_released()
        assert released > 0
        for mbox in chain.middleboxes:
            stores = group_stores(chain, mbox.name)
            assert all(s == stores[0] for s in stores)
            assert mbox.total_count(stores[0]) >= released


def all_states(chain):
    return [state for replica in chain.replicas
            for state in replica.states.values()]


class TestExceptionSafety:
    """The hardened §5.2 path: aborts and mid-flight faults leave the
    chain exactly as it was (sources thawed, spawned replicas released)."""

    FAST_RETRY = None  # set in setup_method (import kept local)

    def setup_method(self, _method):
        from repro.net import RetryPolicy
        self.FAST_RETRY = RetryPolicy(timeout_s=1e-3, max_attempts=2,
                                      backoff_base_s=0.1e-3, jitter_frac=0.0)

    def _fail_and_attempt(self, sim, chain, hooks):
        """Fail p1, run one recovery attempt with ``hooks``; return the
        exception box."""
        from repro.core import RecoveryError
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                               flows=balanced_flows(8, 2))
        caught = []

        def chaos(sim):
            yield sim.timeout(0.002)
            chain.fail_position(1)
            try:
                yield sim.process(recover_positions(
                    chain, [1], retry_policy=self.FAST_RETRY, hooks=hooks))
            except RecoveryError as exc:
                caught.append(exc)

        sim.process(chaos(sim))
        sim.run(until=0.015)
        gen.stop()
        return caught

    def test_source_death_mid_fetch_thaws_and_releases(self):
        """A fetch source dying mid-transfer surfaces as RecoveryError;
        frozen sources are thawed and spawned instances released."""
        sim = Simulator()
        chain, _ = build(sim, ch_n(4, n_threads=2), f=2)
        route_before = list(chain.route)

        def hooks(phase, positions):
            # Kill the monitor2 fetch source the instant fetching starts.
            if phase == "fetching" and not chain.server_at(2).failed:
                chain.fail_position(2)

        caught = self._fail_and_attempt(sim, chain, hooks)
        assert caught, "source death must surface as RecoveryError"
        assert all(not state.frozen for state in all_states(chain))
        # The chain itself is untouched: route unchanged, and every
        # server outside it (the half-spawned replacements) released.
        assert chain.route == route_before
        for name, server in chain.net.servers.items():
            if name not in chain.route:
                assert server.failed

    def test_reentry_with_union_succeeds_after_source_death(self):
        """§5.2 re-entry: after the source died mid-fetch, recovering
        the union of failed positions completes and converges."""
        sim = Simulator()
        chain, _ = build(sim, ch_n(4, n_threads=2), f=2)
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                               flows=balanced_flows(8, 2))
        reports = []

        def hooks(phase, positions):
            if phase == "fetching" and positions == [1] \
                    and not chain.server_at(2).failed:
                chain.fail_position(2)

        def chaos(sim):
            from repro.core import RecoveryError
            yield sim.timeout(0.002)
            chain.fail_position(1)
            try:
                yield sim.process(recover_positions(
                    chain, [1], retry_policy=self.FAST_RETRY, hooks=hooks))
            except RecoveryError:
                report = yield sim.process(recover_positions(
                    chain, [1, 2], retry_policy=self.FAST_RETRY, hooks=hooks))
                reports.append(report)

        sim.process(chaos(sim))
        sim.run(until=0.025)
        gen.stop()
        sim.run(until=0.03)
        assert reports, "union re-entry must complete"
        assert reports[0].positions == [1, 2]
        released = chain.total_released()
        assert released > 0
        for mbox in chain.middleboxes:
            stores = group_stores(chain, mbox.name)
            assert all(s == stores[0] for s in stores)
            assert mbox.total_count(stores[0]) >= released

    def test_unrecoverable_raises_before_any_freeze(self):
        """Planning-first: an unrecoverable group is detected before a
        single source is frozen."""
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2), f=1)
        errors = []

        def chaos(sim):
            yield sim.timeout(0.002)
            chain.fail_position(0)
            chain.fail_position(1)
            try:
                yield sim.process(recover_positions(chain, [0, 1]))
            except UnrecoverableError as exc:
                errors.append(exc)

        sim.process(chaos(sim))
        sim.run(until=0.02)
        assert errors
        assert all(not state.frozen for state in all_states(chain))

    def test_interrupted_recovery_leaves_chain_intact_and_retryable(self):
        """Aborting mid-fetch (the union re-entry mechanism) rolls back
        cleanly; an immediate retry succeeds."""
        from repro.sim import Interrupt
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2))
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                               flows=balanced_flows(8, 2))
        route_before = list(chain.route)
        outcomes = []

        def chaos(sim):
            yield sim.timeout(0.002)
            chain.fail_position(1)
            attempt = sim.process(recover_positions(chain, [1]))
            sim.schedule_callback(
                0.3e-3, lambda: attempt.interrupt("chaos") if attempt.is_alive
                else None)
            try:
                yield attempt
            except Interrupt:
                outcomes.append("interrupted")
                assert chain.route == route_before
                assert all(not s.frozen for s in all_states(chain))
                report = yield sim.process(recover_positions(chain, [1]))
                outcomes.append(report)

        sim.process(chaos(sim))
        sim.run(until=0.025)
        gen.stop()
        sim.run(until=0.03)
        assert outcomes and outcomes[0] == "interrupted"
        assert len(outcomes) == 2
        assert not chain.server_at(1).failed
        for mbox in chain.middleboxes:
            stores = group_stores(chain, mbox.name)
            assert all(s == stores[0] for s in stores)

    def test_hook_phases_fire_in_order(self):
        from repro.core import RECOVERY_PHASES
        sim = Simulator()
        chain, _ = build(sim, ch_n(3, n_threads=2))
        phases = []

        def chaos(sim):
            yield sim.timeout(0.002)
            chain.fail_position(1)
            yield sim.process(recover_positions(
                chain, [1], hooks=lambda ph, _pos: phases.append(ph)))

        sim.process(chaos(sim))
        sim.run(until=0.02)
        assert phases == list(RECOVERY_PHASES)
