"""Tests for the calibrated cost model."""

import dataclasses

import pytest

from repro.core.costs import CostModel, DEFAULT_COSTS


class TestCostModel:
    def test_table2_constants(self):
        """The Table 2 calibration anchors (paper §7.2)."""
        assert DEFAULT_COSTS.processing_cycles == 355.0
        assert DEFAULT_COSTS.locking_cycles == 152.0
        assert DEFAULT_COSTS.piggyback_copy_cycles == 58.0
        assert DEFAULT_COSTS.forwarder_cycles == 8.0
        assert DEFAULT_COSTS.buffer_cycles == 100.0

    def test_platform_constants(self):
        assert DEFAULT_COSTS.cpu_hz == 2.0e9          # Xeon D-1540
        assert DEFAULT_COSTS.nic_pps == 10.5e6        # ConnectX-3 midpoint
        assert DEFAULT_COSTS.hop_delay_s == 6.5e-6    # §7.3's 6-7 us
        assert DEFAULT_COSTS.feedback_bandwidth_bps == 10e9

    def test_snapshot_constants(self):
        assert DEFAULT_COSTS.snapshot_stall_s == 6e-3    # §7.4
        assert DEFAULT_COSTS.snapshot_period_s == 50e-3

    def test_partitions_exceed_core_count(self):
        """§4.2: partitions > max CPU cores (8 on the testbed)."""
        assert DEFAULT_COSTS.n_partitions > 8

    def test_cycles_to_seconds(self):
        assert DEFAULT_COSTS.cycles_to_seconds(2.0e9) == 1.0
        assert DEFAULT_COSTS.cycles_to_seconds(355) == pytest.approx(177.5e-9)

    def test_with_overrides_copies(self):
        custom = DEFAULT_COSTS.with_overrides(nic_pps=5e6)
        assert custom.nic_pps == 5e6
        assert DEFAULT_COSTS.nic_pps == 10.5e6
        assert custom.processing_cycles == DEFAULT_COSTS.processing_cycles

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_COSTS.nic_pps = 1

    def test_sharing8_arithmetic_matches_paper(self):
        """The paper's fully-serialized Monitor rates fall out of the
        Table 2 constants: NF 2e9/507 = 3.94 Mpps, FTC 2e9/565 = 3.54,
        FTMB 2e9/677 = 2.95."""
        c = DEFAULT_COSTS
        nf = c.cpu_hz / (c.processing_cycles + c.locking_cycles)
        ftc = c.cpu_hz / (c.processing_cycles + c.locking_cycles +
                          c.piggyback_copy_cycles)
        ftmb = c.cpu_hz / (c.processing_cycles + c.locking_cycles +
                           c.ftmb_pal_crit_cycles)
        assert nf / 1e6 == pytest.approx(3.94, abs=0.01)
        assert ftc / 1e6 == pytest.approx(3.54, abs=0.01)
        assert ftmb / 1e6 == pytest.approx(2.95, abs=0.01)
        assert ftc / ftmb == pytest.approx(1.2, abs=0.01)  # Fig 6
        assert 1 - ftc / nf == pytest.approx(0.09, abs=0.02)  # §7.3

    def test_ftmb_pal_ceiling_arithmetic(self):
        """One PAL per packet through the OL NIC halves its rate."""
        assert DEFAULT_COSTS.nic_pps / 2 == pytest.approx(5.25e6)
