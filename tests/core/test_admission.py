"""Property tests for overload admission control (PROTOCOL.md §12.2).

The gate's contract under *any* offer schedule:

* token conservation -- admitted never exceeds offered, and never
  exceeds what the bucket could physically have refilled;
* strict shed-priority ordering -- at any single instant a higher
  class is admitted whenever a lower one is (monotone reserve floors);
* bounded queues stay bounded -- a capacity Store never holds more
  than ``capacity`` items under adversarial put/get interleavings;
* backpressure hard stop -- at the high watermark everything sheds,
  so nothing new can push a nearly-full queue over its bound.
"""

import itertools

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.admission import (
    AdmissionControl,
    BackpressureBus,
    PressureSource,
    TokenBucket,
)
from repro.sim import Simulator
from repro.sim.resources import Store


class _Clock:
    """Stand-in simulator: admission only reads ``now``."""

    def __init__(self):
        self.now = 0.0


_pids = itertools.count(1)


class _Pkt:
    def __init__(self, prio=None):
        self.pid = next(_pids)
        self.meta = {} if prio is None else {"prio": prio}


# -- token bucket ----------------------------------------------------------


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate_pps"):
            TokenBucket(rate_pps=0, burst=10)
        with pytest.raises(ValueError, match="burst"):
            TokenBucket(rate_pps=100, burst=0.5)

    def test_burst_then_starve_then_refill(self):
        bucket = TokenBucket(rate_pps=1000, burst=4)
        assert [bucket.take(0.0) for _ in range(5)] == [True] * 4 + [False]
        # 2 ms at 1000 pps refills exactly 2 tokens.
        assert bucket.take(2e-3)
        assert bucket.take(2e-3)
        assert not bucket.take(2e-3)

    def test_floor_blocks_take(self):
        bucket = TokenBucket(rate_pps=1000, burst=4)
        assert not bucket.take(0.0, floor=3.5)   # 4 < 1 + 3.5
        assert bucket.take(0.0, floor=3.0)       # 4 >= 1 + 3
        assert bucket.tokens == 3.0

    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=5e-3),
                              st.integers(min_value=0, max_value=50)),
                    min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_conservation_under_any_schedule(self, schedule):
        """admitted <= offered and admitted <= burst + rate * elapsed."""
        rate, burst = 1e4, 16.0
        bucket = TokenBucket(rate_pps=rate, burst=burst)
        now = 0.0
        offered = admitted = 0
        for gap_s, n in schedule:
            now += gap_s
            for _ in range(n):
                offered += 1
                if bucket.take(now):
                    admitted += 1
        assert admitted <= offered
        assert admitted <= burst + rate * now + 1e-6
        assert 0.0 <= bucket.tokens <= burst

    def test_set_rate_keeps_accrued_tokens(self):
        bucket = TokenBucket(rate_pps=1000, burst=8)
        bucket.take(0.0)
        bucket.set_rate(1.0, now=1e-3)  # refills 1 token first
        assert bucket.available(1e-3) == pytest.approx(8.0)
        # From here on refill is glacial: next token takes ~1 s.
        for _ in range(8):
            assert bucket.take(1e-3)
        assert not bucket.take(2e-3)


# -- pressure sources / bus ------------------------------------------------


class TestBackpressureBus:
    def test_empty_bus_is_calm(self):
        assert BackpressureBus().level() == 0.0

    def test_level_is_worst_source(self):
        bus = BackpressureBus()
        bus.add("a", lambda: 1, 10)
        bus.add("b", lambda: 9, 10)
        assert bus.level() == pytest.approx(0.9)

    def test_bound_validation(self):
        with pytest.raises(ValueError, match="bound"):
            PressureSource("bad", lambda: 0, 0)

    def test_peak_and_callable_bound(self):
        occ = {"n": 0}
        bound = {"n": 8}
        source = PressureSource("q", lambda: occ["n"], lambda: bound["n"])
        occ["n"] = 6
        assert source.level() == pytest.approx(0.75)
        # Chaos shrinks the bound below already-enqueued work: level
        # saturates at 1.0 and bound_peak remembers the old bound, so
        # the auditor does not flag legally-enqueued occupancy.
        bound["n"] = 4
        assert source.level() == 1.0
        assert source.peak == 6
        assert source.bound_peak == 8
        snap = BackpressureBus().snapshot()
        assert snap == {}

    def test_snapshot_reports_all_sources(self):
        bus = BackpressureBus()
        bus.add("q", lambda: 3, 10).level()
        snap = bus.snapshot()
        assert snap["q"]["occupancy"] == 3
        assert snap["q"]["bound"] == 10
        assert snap["q"]["peak"] == 3


# -- bounded queues --------------------------------------------------------


class TestBoundedStore:
    @given(st.lists(st.tuples(st.booleans(),
                              st.integers(min_value=1, max_value=8)),
                    min_size=1, max_size=60),
           st.integers(min_value=1, max_value=12))
    @settings(max_examples=200, deadline=None)
    def test_capacity_never_exceeded(self, schedule, capacity):
        """Adversarial put/get interleavings: occupancy stays within
        capacity and ``try_put`` refuses exactly when full."""
        sim = Simulator()
        store = Store(sim, capacity=capacity)
        put = taken = refused = 0
        for is_put, n in schedule:
            for _ in range(n):
                if is_put:
                    if store.try_put(object()):
                        put += 1
                    else:
                        refused += 1
                        assert store.is_full
                elif store.try_get() is not None:
                    taken += 1
                assert len(store) <= capacity
        assert put - taken == len(store)
        assert refused == 0 or put >= capacity


# -- admission gate --------------------------------------------------------


def _gate(rate=1e4, n_classes=3, bus=None, **kw):
    return AdmissionControl(_Clock(), rate_pps=rate, n_classes=n_classes,
                            bus=bus, **kw)


class TestAdmissionControl:
    def test_validation(self):
        with pytest.raises(ValueError, match="rate_pps"):
            _gate(rate=0)
        with pytest.raises(ValueError, match="n_classes"):
            _gate(n_classes=0)
        with pytest.raises(ValueError, match="high_watermark"):
            _gate(high_watermark=1.5)

    def test_floors_monotone_decreasing(self):
        gate = _gate(n_classes=5)
        assert gate.reserve == sorted(gate.reserve, reverse=True)
        assert gate.reserve[-1] == 0.0

    def test_unstamped_packet_is_top_class(self):
        gate = _gate(n_classes=3)
        assert gate.class_of(_Pkt()) == 2
        assert gate.class_of(_Pkt(prio=99)) == 2
        assert gate.class_of(_Pkt(prio=-4)) == 0

    @given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=2e-3),
                              st.integers(min_value=0, max_value=2)),
                    min_size=1, max_size=200))
    @settings(max_examples=150, deadline=None)
    def test_counters_conserve_and_shed_ordering(self, schedule):
        """offered == admitted + shed overall and per class, and at
        every instant a higher class admits whenever a lower one does
        (the §12.2 strict-ordering invariant, checked pointwise by
        probing token availability against each floor)."""
        gate = _gate(rate=5e3, n_classes=3)
        clock = gate.sim
        for gap_s, cls in schedule:
            clock.now += gap_s
            # Pointwise ordering: the set of classes that *would* admit
            # right now must be upward-closed in priority.
            would = [gate.bucket.available(clock.now) >= 1.0 + gate.reserve[c]
                     for c in range(3)]
            for lower, upper in zip(would, would[1:]):
                assert upper or not lower
            gate.offer(_Pkt(prio=cls))
        assert gate.offered == gate.admitted + gate.shed
        for c in range(3):
            assert gate.offered_by_class[c] == (
                gate.admitted_by_class[c] + gate.shed_by_class[c])
        assert gate.offered == sum(gate.offered_by_class)

    def test_low_class_sheds_first_under_sustained_load(self):
        gate = _gate(rate=1e3, n_classes=3)
        clock = gate.sim
        for i in range(300):
            clock.now = i * 1e-4  # 10x the sustainable rate
            gate.offer(_Pkt(prio=i % 3))
        frac = [gate.shed_by_class[c] / gate.offered_by_class[c]
                for c in range(3)]
        assert frac[0] >= frac[1] >= frac[2]
        assert frac[0] > frac[2]  # strictly: class 0 bears the brunt

    def test_backpressure_hard_stop_sheds_everything(self):
        bus = BackpressureBus()
        bus.add("q", lambda: 9, 10)   # 0.9 >= high watermark 0.85
        gate = _gate(bus=bus)
        for cls in range(3):
            assert not gate.offer(_Pkt(prio=cls))
        assert gate.admitted == 0
        assert gate.shed_backpressure == 3
        assert gate.stats()["shed_backpressure"] == 3

    def test_pressure_inflates_floors_low_class_starves(self):
        bus = BackpressureBus()
        bus.add("q", lambda: 8, 10)   # 0.8: below hard stop
        gate = _gate(rate=1e4, bus=bus)
        # Drain two tokens, then class 0's inflated floor exceeds the
        # remaining tokens while the top class still fits.
        assert gate.offer(_Pkt(prio=2))
        assert gate.offer(_Pkt(prio=2))
        assert not gate.offer(_Pkt(prio=0))
        assert gate.offer(_Pkt(prio=2))

    def test_set_scale_throttles_refill(self):
        gate = _gate(rate=1e4)
        clock = gate.sim
        # Drain the burst.
        while gate.bucket.take(0.0):
            pass
        gate.set_scale(0.5)
        clock.now = 2e-3  # 5e3 pps * 2 ms = 10 tokens (half rate)
        assert gate.bucket.available(clock.now) == pytest.approx(10.0)
        gate.set_scale(1.0)
        assert gate.scale == 1.0
        assert gate.bucket.rate_pps == pytest.approx(1e4)
