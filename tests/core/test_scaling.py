"""Tests for vertical scaling (§1's depvec-enabled feature)."""

import pytest

from repro.core import FTCChain, rescale_position
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import Monitor
from repro.net import TrafficGenerator, balanced_flows
from repro.sim import Simulator

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


def _chain(sim, n_threads=2):
    egress = EgressRecorder(sim)
    middleboxes = [Monitor(name=f"m{i}", sharing_level=1, n_threads=8)
                   for i in range(3)]
    chain = FTCChain(sim, middleboxes, f=1, deliver=egress,
                     costs=FAST_COSTS, n_threads=n_threads)
    chain.start()
    return chain, egress


class TestVerticalScaling:
    def test_scale_up_preserves_state_and_traffic(self):
        sim = Simulator()
        chain, egress = _chain(sim, n_threads=2)
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                               flows=balanced_flows(8, 2))
        reports = []

        def scale(sim):
            yield sim.timeout(0.003)
            report = yield sim.process(rescale_position(chain, 1, 4))
            reports.append(report)

        sim.process(scale(sim))
        sim.run(until=0.02)
        gen.stop()
        sim.run(until=0.03)

        report = reports[0]
        assert report.old_threads == 2 and report.new_threads == 4
        assert len(chain.server_at(1).nic.queues) == 4
        released = chain.total_released()
        assert released > 0
        # Consistency across all groups after the rescale.
        for index, mbox in enumerate(chain.middleboxes):
            stores = [chain.store_of(mbox.name, pos)
                      for pos in chain.group_positions(index)]
            assert all(s == stores[0] for s in stores)
            assert mbox.total_count(stores[0]) >= released

    def test_scale_down_works(self):
        """Failing over to fewer cores (§4.3's scarce-resource case)."""
        sim = Simulator()
        chain, _ = _chain(sim, n_threads=4)
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                               flows=balanced_flows(8, 4))

        def scale(sim):
            yield sim.timeout(0.003)
            yield sim.process(rescale_position(chain, 0, 1))

        sim.process(scale(sim))
        sim.run(until=0.015)
        gen.stop()
        sim.run(until=0.025)
        assert len(chain.server_at(0).nic.queues) == 1
        assert chain.total_released() > 0
        mbox = chain.middleboxes[0]
        stores = [chain.store_of("m0", pos)
                  for pos in chain.group_positions(0)]
        assert all(s == stores[0] for s in stores)

    def test_rescale_is_fast_compared_to_recovery(self):
        """The source is alive and local: no WAN, no detection."""
        sim = Simulator()
        chain, _ = _chain(sim)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(8, 2), count=2000)
        reports = []

        def scale(sim):
            yield sim.timeout(0.003)
            report = yield sim.process(rescale_position(chain, 1, 4))
            reports.append(report)

        sim.process(scale(sim))
        sim.run(until=0.02)
        assert reports[0].total_s < 2e-3

    def test_scale_up_raises_throughput(self):
        """More cores at the bottleneck -> more sustained throughput."""
        def run(rescale_to):
            sim = Simulator()
            egress = EgressRecorder(sim)
            chain = FTCChain(
                sim, [Monitor(name="m", sharing_level=1, n_threads=8)],
                f=1, deliver=egress, costs=FAST_COSTS, n_threads=1)
            chain.start()
            TrafficGenerator(sim, chain.ingress, rate_pps=12e6,
                             flows=balanced_flows(32, 1))
            if rescale_to:
                def scale(sim):
                    yield sim.timeout(0.5e-3)
                    yield sim.process(rescale_position(chain, 0, rescale_to))
                sim.process(scale(sim))
            sim.run(until=2e-3)
            egress.throughput.start_window()
            sim.run(until=4e-3)
            return egress.throughput.rate_mpps()

        assert run(rescale_to=4) > 1.5 * run(rescale_to=None)

    def test_invalid_thread_count_rejected(self):
        sim = Simulator()
        chain, _ = _chain(sim)
        with pytest.raises(ValueError):
            next(rescale_position(chain, 0, 0))
