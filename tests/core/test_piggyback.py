"""Tests for piggyback logs, commit vectors, and messages."""

import pytest

from repro.core.costs import DEFAULT_COSTS
from repro.core.piggyback import (
    CommitVector,
    PiggybackLog,
    PiggybackMessage,
    value_bytes,
)


class TestValueBytes:
    def test_primitives(self):
        assert value_bytes(None) == 1
        assert value_bytes(True) == 1
        assert value_bytes(7) == 8
        assert value_bytes(3.14) == 8
        assert value_bytes(b"abcd") == 4
        assert value_bytes("hello") == 5

    def test_containers(self):
        assert value_bytes((1, 2)) == 16
        assert value_bytes([b"ab", b"c"]) == 3

    def test_nat_record_is_paper_sized(self):
        """§7.2 sizes a NAT record at ~32 B; our estimate should agree."""
        record = (3405803776, 134744072, 10000, 80)  # ext ip, dst ip, ports
        assert 24 <= value_bytes(record) <= 40


class TestPiggybackLog:
    def test_noop_detection(self):
        assert PiggybackLog("m").is_noop
        assert not PiggybackLog("m", depvec={0: 1}).is_noop
        assert not PiggybackLog("m", updates={"k": 1}).is_noop

    def test_byte_size_scales_with_updates(self):
        small = PiggybackLog("m", depvec={0: 1}, updates={"k": b"x" * 8})
        large = PiggybackLog("m", depvec={0: 1}, updates={"k": b"x" * 64})
        assert large.byte_size() - small.byte_size() == 56

    def test_byte_size_includes_depvec_entries(self):
        one = PiggybackLog("m", depvec={0: 1})
        two = PiggybackLog("m", depvec={0: 1, 1: 2})
        assert two.byte_size() - one.byte_size() == DEFAULT_COSTS.depvec_entry_bytes

    def test_log_ids_unique(self):
        assert PiggybackLog("m").log_id != PiggybackLog("m").log_id


class TestCommitVector:
    def test_covers_requires_post_increment(self):
        commit = CommitVector("m", {0: 3})
        assert commit.covers({0: 2})   # applied: MAX advanced past 2
        assert not commit.covers({0: 3})
        assert commit.covers({})       # no dependencies

    def test_covers_all_entries(self):
        commit = CommitVector("m", {0: 3, 1: 1})
        assert commit.covers({0: 2, 1: 0})
        assert not commit.covers({0: 2, 1: 1})

    def test_missing_partition_not_covered(self):
        assert not CommitVector("m", {}).covers({5: 0})

    def test_merge_takes_elementwise_max(self):
        target = {0: 5, 1: 2}
        CommitVector("m", {0: 3, 1: 4, 2: 1}).merge_into(target)
        assert target == {0: 5, 1: 4, 2: 1}

    def test_byte_size(self):
        empty = CommitVector("m", {})
        assert (CommitVector("m", {0: 1}).byte_size() - empty.byte_size()
                == DEFAULT_COSTS.depvec_entry_bytes)


class TestPiggybackMessage:
    def test_add_and_take_logs(self):
        msg = PiggybackMessage()
        log_a = PiggybackLog("a", depvec={0: 0})
        log_b = PiggybackLog("b", depvec={0: 0})
        msg.add_logs([log_a, log_b])
        assert msg.n_logs == 2
        assert msg.take_logs("a") == [log_a]
        assert msg.n_logs == 1
        assert msg.take_logs("a") == []

    def test_logs_for_preserves_order(self):
        msg = PiggybackMessage()
        logs = [PiggybackLog("m", depvec={0: i}) for i in range(3)]
        msg.add_logs(logs)
        assert msg.logs_for("m") == logs

    def test_commit_replacement(self):
        msg = PiggybackMessage()
        msg.set_commit(CommitVector("m", {0: 1}))
        msg.set_commit(CommitVector("m", {0: 2}))
        assert msg.commit_for("m").entries == {0: 2}
        assert msg.commit_for("other") is None

    def test_byte_size_accumulates(self):
        msg = PiggybackMessage()
        base = msg.byte_size()
        log = PiggybackLog("m", depvec={0: 1}, updates={"k": b"1234"})
        msg.add_log(log)
        assert msg.byte_size() == base + log.byte_size()

    def test_state_bytes_counts_values_only(self):
        msg = PiggybackMessage()
        msg.add_log(PiggybackLog("m", depvec={0: 1}, updates={"k": b"12345678"}))
        assert msg.state_bytes() == 8
