"""Live reconfiguration: zero-loss versioned chain updates (§11).

End-to-end: every operation kind (classifier swap, rescale, migrate,
evacuate, insert, remove) applied to a chain under offered load on
impaired-but-reliable links must commit with zero egress loss and zero
per-flow reordering.  Unit/property coverage: config-version
monotonicity, epoch fencing of stale switches, journal open-reconfig
bookkeeping, ReliableChannel re-binding after a rescale, and the
orchestrator noticing route changes (so a post-rescale crash of the
*new* server is still detected).
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.chaos.auditor import ShadowOracle
from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.core.fencing import EpochGate, StaleConfigError, StaleEpochError
from repro.core.reconfig import (
    ClassifierRule,
    ClassifierSet,
    ReconfigOp,
    apply_reconfig,
)
from repro.middlebox import ch_n
from repro.middlebox.monitor import Monitor
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration import Orchestrator
from repro.orchestration.journal import CommandJournal, JournalEntry
from repro.sim import Simulator
from repro.telemetry import Telemetry, validate_chrome_trace

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)
RATE_PPS = 2e4
DURATION_S = 24e-3
DRAIN_S = 40e-3


def _build_chain(seed=3, telemetry=None, reliable=True, impaired=True):
    sim = Simulator()
    oracle = ShadowOracle(track_order=True)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=oracle,
                     costs=FAST_COSTS, n_threads=2, seed=seed,
                     telemetry=telemetry, reliable_links=reliable)
    chain.start()
    if impaired:
        chain.net.impair_data(drop_rate=0.02, dup_rate=0.01,
                              reorder_rate=0.01, corrupt_rate=0.005,
                              seed=seed)
    return sim, chain, oracle


def _drive_one(op, seed=3, telemetry=None):
    sim, chain, oracle = _build_chain(seed=seed, telemetry=telemetry)
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=RATE_PPS,
                                 flows=balanced_flows(8, 2))
    outcome = {}

    def drive():
        outcome["report"] = yield from apply_reconfig(chain, op)

    sim.schedule_callback(DURATION_S * 0.4, lambda: sim.process(drive()))
    sim.run(until=DURATION_S)
    generator.stop()
    chain.net.heal()
    chain.net.clear_impairment()
    sim.run(until=DURATION_S + DRAIN_S)
    return chain, generator, oracle, outcome.get("report")


def _all_ops():
    return [
        ReconfigOp(kind="classifier", classifier=ClassifierSet(
            version=1, rules=(ClassifierRule(action="allow"),))),
        ReconfigOp(kind="rescale", position=1, n_threads=4),
        ReconfigOp(kind="migrate", position=1),
        ReconfigOp(kind="evacuate", position=2),
        ReconfigOp(kind="insert", index=1,
                   middlebox=Monitor(name="probe")),
        ReconfigOp(kind="remove", middlebox_name="monitor2"),
    ]


class TestZeroLossPerOperation:
    @pytest.mark.parametrize("op", _all_ops(), ids=lambda op: op.kind)
    def test_op_commits_with_zero_loss_zero_reorder(self, op):
        chain, generator, oracle, report = _drive_one(op)
        assert report is not None and report.committed
        assert generator.sent > 0
        assert oracle.released == generator.sent  # zero loss
        assert oracle.out_of_order == 0  # per-flow order preserved
        assert chain.config_version >= 1

    def test_back_to_back_ops_under_load(self):
        sim, chain, oracle = _build_chain(seed=9)
        generator = TrafficGenerator(sim, chain.ingress, rate_pps=RATE_PPS,
                                     flows=balanced_flows(8, 2))
        reports = []

        def drive(op):
            def run():
                reports.append((yield from apply_reconfig(chain, op)))
            sim.process(run())

        sim.schedule_callback(6e-3, lambda: drive(
            ReconfigOp(kind="rescale", position=0, n_threads=3)))
        sim.schedule_callback(14e-3, lambda: drive(
            ReconfigOp(kind="migrate", position=2)))
        sim.run(until=DURATION_S)
        generator.stop()
        chain.net.heal()
        chain.net.clear_impairment()
        sim.run(until=DURATION_S + DRAIN_S)
        assert [r.committed for r in reports] == [True, True]
        assert oracle.released == generator.sent
        assert oracle.out_of_order == 0
        assert chain.config_version == 2


class TestChannelRebind:
    def test_rescale_resets_and_rebinds_hop_channels(self):
        """Satellite: hop channels into a replaced instance must not
        keep retransmitting to the retired endpoint."""
        op = ReconfigOp(kind="rescale", position=1, n_threads=3)
        chain, generator, oracle, report = _drive_one(op, seed=5)
        assert report.committed
        # The replaced hop's channels were reset at the switch and
        # re-bound on the next send: packets kept flowing afterwards.
        assert oracle.released == generator.sent
        stats = chain.channel_stats()
        assert stats.get("retransmissions", 0) > 0  # layer was active
        # No channel may still reference a failed (retired) endpoint.
        for (src, dst) in chain._channels:
            assert not chain.net.servers[chain.route[src]].failed
            assert not chain.net.servers[chain.route[dst]].failed


class TestRouteObserver:
    def test_rescale_resets_miss_streak_and_new_server_is_monitored(self):
        """Satellite: the orchestrator must observe route changes --
        a heartbeat-miss streak accrued against the old instance must
        not carry over, and a crash of the *new* server must still be
        detected and recovered."""
        sim, chain, oracle = _build_chain(seed=11, impaired=False)
        orchestrator = Orchestrator(sim, chain,
                                    heartbeat_interval_s=1e-3)
        orchestrator.start()
        generator = TrafficGenerator(sim, chain.ingress, rate_pps=RATE_PPS,
                                     flows=balanced_flows(8, 2))
        sim.run(until=4e-3)
        # A poisoned miss streak, as if the old instance had been slow.
        orchestrator._misses[1] = 2
        done = orchestrator.request_reconfig(
            ReconfigOp(kind="rescale", position=1, n_threads=3))
        sim.run(until=12e-3)
        assert not done.is_alive  # the op completed
        assert orchestrator.reconfig_history[-1].committed
        assert orchestrator._misses[1] == 0  # observer reset the streak
        # Crash the replacement: detection must fire for the new server.
        new_name = chain.route[1]
        chain.server_at(1).fail()
        sim.run(until=60e-3)
        generator.stop()
        sim.run(until=80e-3)
        assert any(1 in event.positions for event in orchestrator.history)
        assert chain.route[1] != new_name  # recovered onto a spare
        orchestrator.stop()


class TestConfigVersioning:
    @settings(max_examples=25, deadline=None)
    @given(versions=st.lists(st.integers(min_value=1, max_value=40),
                             min_size=1, max_size=12))
    def test_apply_config_is_strictly_monotonic(self, versions):
        sim = Simulator()
        chain = FTCChain(sim, ch_n(2, n_threads=2), f=1,
                         deliver=lambda packet: None, costs=FAST_COSTS,
                         n_threads=2, seed=0)
        applied = 0
        for version in versions:
            if version > chain.config_version:
                chain.apply_config(version)
                applied = version
            else:
                with pytest.raises(StaleConfigError):
                    chain.apply_config(version)
            assert chain.config_version == applied

    @settings(max_examples=25, deadline=None)
    @given(epochs=st.lists(st.integers(min_value=1, max_value=30),
                           min_size=1, max_size=12))
    def test_gate_fences_stale_reconfig_switches(self, epochs):
        sim = Simulator()
        gate = EpochGate(sim)
        fence = 0
        for epoch in epochs:
            if epoch >= fence:
                gate.apply(epoch, "reconfig-switch", (1,))
                fence = epoch
            else:
                with pytest.raises(StaleEpochError):
                    gate.apply(epoch, "reconfig-switch", (1,))
            assert gate.max_epoch == fence
        switches = [c for c in gate.applied if c.kind == "reconfig-switch"]
        assert [c.epoch for c in switches] == sorted(c.epoch
                                                     for c in switches)

    def test_current_config_snapshots_version_and_route(self):
        sim, chain, _ = _build_chain(impaired=False)
        before = chain.current_config()
        chain.apply_config(1)
        after = chain.current_config()
        assert before.version == 0 and after.version == 1
        assert after.route == tuple(chain.route)


class TestJournalOpenReconfigs:
    def _entry(self, seq, step, positions=(1,), detail="op=migrate position=1"):
        return JournalEntry(epoch=1, seq=seq, step=step,
                            positions=tuple(positions), t=0.0, detail=detail)

    def test_prepare_without_cover_is_open(self):
        journal = CommandJournal()
        journal.append(self._entry(1, "reconfig-prepare"))
        assert journal.open_reconfigs() == {(1,): "op=migrate position=1"}

    def test_commit_and_abort_close(self):
        journal = CommandJournal()
        journal.append(self._entry(1, "reconfig-prepare"))
        journal.append(self._entry(2, "reconfig-switch"))
        journal.append(self._entry(3, "reconfig-commit"))
        journal.append(self._entry(4, "reconfig-prepare", positions=(2,),
                                   detail="op=evacuate position=2"))
        journal.append(self._entry(5, "reconfig-abort", positions=(2,),
                                   detail="op=evacuate position=2"))
        assert journal.open_reconfigs() == {}

    def test_switch_alone_stays_open(self):
        journal = CommandJournal()
        journal.append(self._entry(1, "reconfig-prepare"))
        journal.append(self._entry(2, "reconfig-switch"))
        assert (1,) in journal.open_reconfigs()

    def test_parse_round_trips_resumable_kinds(self):
        for op in (ReconfigOp(kind="rescale", position=2, n_threads=3),
                   ReconfigOp(kind="migrate", position=0),
                   ReconfigOp(kind="evacuate", position=1),
                   ReconfigOp(kind="remove", middlebox_name="monitor2")):
            assert ReconfigOp.parse(op.describe()) == op
        # Object-carrying kinds cannot ride in a journal detail string.
        classifier = ReconfigOp(kind="classifier",
                                classifier=ClassifierSet(version=1))
        insert = ReconfigOp(kind="insert", index=0,
                            middlebox=Monitor(name="x"))
        assert ReconfigOp.parse(classifier.describe()) is None
        assert ReconfigOp.parse(insert.describe()) is None


class TestReconfigTelemetry:
    def test_counters_and_ctrl_track_spans(self, tmp_path):
        telemetry = Telemetry()
        op = ReconfigOp(kind="rescale", position=1, n_threads=3)
        chain, generator, oracle, report = _drive_one(
            op, seed=7, telemetry=telemetry)
        assert report.committed
        registry = telemetry.registry
        assert registry.counter("reconfig/prepares").value == 1
        assert registry.counter("reconfig/switches").value == 1
        assert registry.counter("reconfig/aborted").value == 0
        assert registry.counter("reconfig/held_packets").value >= 1
        assert registry.counter("reconfig/migrated_bytes").value > 0
        path = tmp_path / "trace.json"
        telemetry.export_chrome(str(path))
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        spans = [e for e in events
                 if e.get("name") == "reconfig:rescale"
                 and e.get("tid") == 9998]
        assert {e["ph"] for e in spans} == {"b", "e"}
        phases = [e for e in events
                  if str(e.get("name", "")).startswith("reconfig-")
                  and e.get("tid") == 9998]
        names = {e["name"] for e in phases}
        assert {"reconfig-preparing", "reconfig-draining",
                "reconfig-switching", "reconfig-committed"} <= names
