"""Bidirectional traffic through a fault-tolerant NAT chain.

Return traffic must match the forward mappings (connection
persistence, §3.2) through the full FTC pipeline -- including after
the reverse-path entries were only ever created as *replicated* state.
"""

import pytest

from repro.core import FTCChain, recover_positions
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import MazuNAT, Monitor
from repro.net import FlowKey, Packet, ip
from repro.sim import Simulator

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


def _build(sim):
    egress = EgressRecorder(sim, keep_packets=True)
    chain = FTCChain(sim, [MazuNAT(name="nat"),
                           Monitor(name="mon", n_threads=2)],
                     f=1, deliver=egress, costs=FAST_COSTS, n_threads=2)
    chain.start()
    return chain, egress


def _outbound_flow(sport):
    return FlowKey(ip("10.0.0.5"), ip("8.8.8.8"), sport, 80)


class TestBidirectionalNAT:
    def test_replies_translate_back(self):
        sim = Simulator()
        chain, egress = _build(sim)

        def scenario(sim):
            # Outbound packets establish two mappings.
            for sport in (1111, 2222):
                chain.ingress(Packet(flow=_outbound_flow(sport),
                                     created_at=sim.now))
            yield sim.timeout(1e-3)
            # Replies arrive addressed to the NAT's external side.
            translated = [p for p in egress.packets]
            assert len(translated) == 2
            for out in translated:
                chain.ingress(Packet(flow=out.flow.reversed(),
                                     created_at=sim.now))
            yield sim.timeout(1e-3)

        done = sim.process(scenario(sim))
        sim.run(until=0.02)
        assert done.ok
        # 2 outbound + 2 inbound released; inbound carry internal dst.
        assert egress.count == 4
        inbound = [p for p in egress.packets
                   if p.flow.dst_ip == ip("10.0.0.5")]
        assert sorted(p.flow.dst_port for p in inbound) == [1111, 2222]

    def test_replies_survive_nat_failover(self):
        """Reverse mappings recovered from the replica still translate."""
        sim = Simulator()
        chain, egress = _build(sim)

        def scenario(sim):
            chain.ingress(Packet(flow=_outbound_flow(3333),
                                 created_at=sim.now))
            yield sim.timeout(1e-3)
            (outbound,) = list(egress.packets)
            # Kill the NAT's server; recover from its replica.
            chain.fail_position(0)
            yield sim.process(recover_positions(chain, [0]))
            yield sim.timeout(0.5e-3)
            chain.ingress(Packet(flow=outbound.flow.reversed(),
                                 created_at=sim.now))
            yield sim.timeout(1.5e-3)

        done = sim.process(scenario(sim))
        sim.run(until=0.03)
        assert done.ok
        inbound = [p for p in egress.packets
                   if p.flow.dst_ip == ip("10.0.0.5")]
        assert len(inbound) == 1
        assert inbound[0].flow.dst_port == 3333
