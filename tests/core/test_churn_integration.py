"""End-to-end: flow churn, state eviction, and tombstone replication.

A stateful firewall under connection churn both inserts and *deletes*
state (idle-timeout eviction); deletions travel through piggyback logs
as tombstones and must replicate exactly like writes.
"""

import pytest

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import Monitor, StatefulFirewall
from repro.net import FlowChurnGenerator, FlowKey, Packet, ip
from repro.sim import RandomStreams, Simulator

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


class TestChurnThroughChain:
    def test_churn_traffic_replicates_consistently(self):
        sim = Simulator()
        egress = EgressRecorder(sim)
        chain = FTCChain(
            sim,
            [StatefulFirewall(name="sfw"),
             Monitor(name="mon", n_threads=2)],
            f=1, deliver=egress, costs=FAST_COSTS, n_threads=2)
        chain.start()
        gen = FlowChurnGenerator(sim, chain.ingress,
                                 flow_arrival_rate=3000,
                                 flow_lifetime_s=2e-3,
                                 per_flow_pps=50_000,
                                 streams=RandomStreams(7))
        sim.run(until=0.02)
        gen.stop()
        sim.run(until=0.03)
        assert chain.total_released() > 100
        for name, index in (("sfw", 0), ("mon", 1)):
            stores = [chain.store_of(name, pos)
                      for pos in chain.group_positions(index)]
            assert stores[0] == stores[1]
        # Firewall tracked many distinct connections.
        assert len(chain.store_of("sfw", 0)) > 20

    def test_tombstone_deletion_replicates(self):
        """An idle-timeout eviction at the head must delete the entry
        at every replica, not just locally."""
        sim = Simulator()
        egress = EgressRecorder(sim)
        fw = StatefulFirewall(name="sfw", idle_timeout_s=1e-3)
        chain = FTCChain(sim, [fw, Monitor(name="mon", n_threads=2)],
                         f=1, deliver=egress, costs=FAST_COSTS, n_threads=2)
        chain.start()

        outbound = FlowKey(ip("10.0.0.9"), ip("8.8.8.8"), 1234, 80)

        def scenario(sim):
            # Establish the connection.
            chain.ingress(Packet(flow=outbound, created_at=sim.now))
            yield sim.timeout(0.5e-3)
            group = chain.group_positions(0)
            assert all(("conn", outbound) in chain.store_of("sfw", pos)
                       for pos in group)
            # Idle past the timeout, then inbound traffic triggers the
            # eviction (a ctx.delete -> tombstone in the piggyback log).
            yield sim.timeout(2e-3)
            chain.ingress(Packet(flow=outbound.reversed(),
                                 created_at=sim.now))
            yield sim.timeout(2e-3)
            for pos in group:
                assert ("conn", outbound) not in chain.store_of("sfw", pos)

        done = sim.process(scenario(sim))
        sim.run(until=0.02)
        assert done.ok

    def test_dropped_inbound_state_still_replicates(self):
        """The eviction above happens on a DROPPED packet: its tombstone
        must ride a propagating packet (§5.1) to the replicas."""
        sim = Simulator()
        fw = StatefulFirewall(name="sfw", idle_timeout_s=1e-3)
        chain = FTCChain(sim, [fw, Monitor(name="mon", n_threads=2)],
                         f=1, costs=FAST_COSTS, n_threads=2)
        chain.start()
        outbound = FlowKey(ip("10.0.0.9"), ip("8.8.8.8"), 1234, 80)

        def scenario(sim):
            chain.ingress(Packet(flow=outbound, created_at=sim.now))
            yield sim.timeout(3e-3)  # idle out
            chain.ingress(Packet(flow=outbound.reversed(),
                                 created_at=sim.now))
            yield sim.timeout(3e-3)

        sim.process(scenario(sim))
        sim.run(until=0.02)
        assert fw.packets_dropped >= 1
        assert chain.replica_at(0).propagating_emitted >= 1
