"""Focused tests for replica pipeline details and chain mechanics."""

import pytest

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import Firewall, Gen, Monitor, PASS
from repro.net import FlowKey, Packet, TrafficGenerator, balanced_flows
from repro.sim import Simulator

FAST_COSTS = CostModel(cycle_jitter_frac=0.0)


def build(sim, middleboxes, f=1, n_threads=2, **kwargs):
    egress = EgressRecorder(sim, keep_packets=True)
    chain = FTCChain(sim, middleboxes, f=f, deliver=egress,
                     costs=FAST_COSTS, n_threads=n_threads, **kwargs)
    chain.start()
    return chain, egress


class TestReplicaRoles:
    def test_membership_matrix(self):
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name=f"m{i}", n_threads=2)
                               for i in range(4)], f=1)
        # Position p replicates its own middlebox and its predecessor's.
        for position in range(4):
            replica = chain.replica_at(position)
            expected = {f"m{position}", f"m{(position - 1) % 4}"}
            assert set(replica.states) == expected

    def test_tail_roles(self):
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name=f"m{i}", n_threads=2)
                               for i in range(3)], f=1)
        for position in range(3):
            replica = chain.replica_at(position)
            assert set(replica.tail_last_sent) == {f"m{(position - 1) % 3}"}

    def test_extension_replica_replicates_without_middlebox(self):
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name="m", n_threads=2)], f=2)
        ext = chain.replica_at(1)
        assert ext.middlebox is None
        assert ext.runtime is None
        assert set(ext.states) == {"m"}
        assert ext.replicated == ["m"]

    def test_f_zero_head_is_tail(self):
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name="m", n_threads=2),
                               Monitor(name="m2", n_threads=2)], f=0)
        assert set(chain.replica_at(0).tail_last_sent) == {"m"}
        assert chain.replica_at(0).replicated == []


class TestPiggybackFlow:
    def test_message_stripped_before_delivery(self):
        sim = Simulator()
        chain, egress = build(sim, [Monitor(name="m", n_threads=2),
                                    Monitor(name="m2", n_threads=2)])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=50)
        sim.run(until=0.01)
        assert egress.count == 50
        assert all(p.attachment("ftc") is None for p in egress.packets)

    def test_wire_size_grows_midchain(self):
        """Packets between replicas carry logs; measure via link bytes."""
        sim = Simulator()
        chain, _ = build(sim, [Gen(name="g1", state_size=100),
                               Gen(name="g2", state_size=100)])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=100,
                         packet_size=256)
        sim.run(until=0.01)
        link = chain.net.link(chain.route[0], chain.route[1])
        # Each mid-chain packet carries >= one 100 B state update.
        assert link.tx_bytes / link.tx_packets > 256 + 100

    def test_noop_logs_add_no_bytes(self):
        """A stateless middlebox's packets carry no log for it."""
        sim = Simulator()
        chain, _ = build(sim, [Firewall(name="fw"),
                               Monitor(name="m", n_threads=2)])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=100)
        sim.run(until=0.01)
        assert chain.replica_at(1).states["fw"].applied == 0

    def test_commit_vectors_prune_at_head(self):
        """The head's retained logs shrink once commits loop back."""
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name="m1", n_threads=2),
                               Monitor(name="m2", n_threads=2)])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=500)
        sim.run(until=0.02)
        head_state = chain.replica_at(0).states["m1"]
        assert head_state.applied == 500
        assert len(head_state.retained) < 100


class TestBackpressureAndOverload:
    def test_overload_drops_at_nic_not_in_protocol(self):
        """Under 3x overload the NIC drops, but everything that enters
        the chain is either released or still consistent."""
        sim = Simulator()
        chain, egress = build(sim, [Monitor(name="m", n_threads=1)],
                              n_threads=1)
        TrafficGenerator(sim, chain.ingress, rate_pps=10e6,
                         flows=balanced_flows(4, 1))
        sim.run(until=0.005)
        first_server = chain.server_at(0)
        assert first_server.nic.rx_dropped > 0
        # Consistency despite overload:
        monitor = chain.middleboxes[0]
        for pos in chain.group_positions(0):
            count = monitor.total_count(chain.store_of("m", pos))
            assert count >= chain.total_released()

    def test_latency_spikes_past_saturation(self):
        sim = Simulator()
        chain, egress = build(sim, [Monitor(name="m", n_threads=1)],
                              n_threads=1)
        TrafficGenerator(sim, chain.ingress, rate_pps=10e6,
                         flows=balanced_flows(4, 1))
        sim.run(until=0.004)
        # Queues full: latency far above the unloaded floor (~15 us).
        assert egress.latency.percentile_us(99) > 100


class TestPacketKinds:
    def test_feedback_packets_not_counted_as_traffic(self):
        sim = Simulator()
        chain, egress = build(sim, [Monitor(name="m1", n_threads=2),
                                    Monitor(name="m2", n_threads=2)])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=100)
        sim.run(until=0.02)
        assert egress.count == 100
        assert chain.forwarder.feedback_received > 0

    def test_propagating_after_burst_only_when_needed(self):
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name="m1", n_threads=2),
                               Monitor(name="m2", n_threads=2)])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=20)
        sim.run(until=0.05)
        assert chain.total_released() == 20
        # Once everything is flushed, the timer stops emitting.
        sent_after_flush = chain.forwarder.propagating_sent
        sim.run(until=0.1)
        assert chain.forwarder.propagating_sent <= sent_after_flush + 1


class TestChainStatistics:
    def test_packets_in_counts_ingress(self):
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name="m", n_threads=2)])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=77)
        sim.run(until=0.01)
        assert chain.packets_in == 77

    def test_stop_halts_workers(self):
        sim = Simulator()
        chain, _ = build(sim, [Monitor(name="m", n_threads=2)])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(4, 2), count=50)
        sim.run(until=0.005)
        released_at_stop = chain.total_released()
        chain.stop()
        chain.ingress(Packet(flow=FlowKey(1, 2, 3, 4), created_at=sim.now))
        sim.run(until=0.01)
        assert chain.total_released() == released_at_stop
