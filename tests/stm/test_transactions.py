"""Tests for transactional packet processing: 2PL, wound-wait, serializability."""

import pytest

from repro.sim import Simulator
from repro.stm import (
    PartitionSpace,
    StateStore,
    TransactionManager,
)


def _manager(sim, n_partitions=8, **kwargs):
    return TransactionManager(sim, StateStore(), PartitionSpace(n_partitions),
                              **kwargs)


def run_tx(sim, manager, body, **kwargs):
    """Run one transaction to completion and return its result."""
    return sim.run(until=sim.process(manager.run(body, **kwargs)))


class TestBasicSemantics:
    def test_commit_applies_writes(self):
        sim = Simulator()
        manager = _manager(sim)

        def body(ctx):
            ctx.write("k", 42)

        result = run_tx(sim, manager, body)
        assert manager.store.get("k") == 42
        assert result.wrote
        assert result.writes == {"k": 42}

    def test_read_only_transaction(self):
        sim = Simulator()
        manager = _manager(sim)
        manager.store.apply("k", 5)

        def body(ctx):
            return ctx.read("k")

        result = run_tx(sim, manager, body)
        assert result.read_only
        assert result.value == 5
        assert result.read_keys == {"k"}

    def test_read_your_own_writes(self):
        sim = Simulator()
        manager = _manager(sim)
        seen = []

        def body(ctx):
            ctx.write("k", 1)
            seen.append(ctx.read("k"))

        run_tx(sim, manager, body)
        assert seen[-1] == 1

    def test_delete_visible_and_replicable(self):
        sim = Simulator()
        manager = _manager(sim)
        manager.store.apply("k", 1)

        def body(ctx):
            ctx.delete("k")
            return ctx.contains("k")

        result = run_tx(sim, manager, body)
        assert result.value is False
        assert "k" not in manager.store
        assert result.wrote  # deletion must appear in the piggyback log

    def test_contains_on_store_value(self):
        sim = Simulator()
        manager = _manager(sim)
        manager.store.apply("present", 0)

        def body(ctx):
            return (ctx.contains("present"), ctx.contains("absent"))

        result = run_tx(sim, manager, body)
        assert result.value == (True, False)

    def test_hold_time_elapses(self):
        sim = Simulator()
        manager = _manager(sim)

        def body(ctx):
            ctx.write("k", 1)

        run_tx(sim, manager, body, hold_time=1e-6)
        assert sim.now == pytest.approx(1e-6)

    def test_partitions_include_reads_and_writes(self):
        sim = Simulator()
        manager = _manager(sim, n_partitions=1024)

        def body(ctx):
            ctx.read("r")
            ctx.write("w", 1)

        result = run_tx(sim, manager, body)
        space = manager.partitions
        assert result.partitions == frozenset(
            {space.partition_of("r"), space.partition_of("w")})

    def test_committed_counter(self):
        sim = Simulator()
        manager = _manager(sim)
        for i in range(3):
            run_tx(sim, manager, lambda ctx, i=i: ctx.write("k", i))
        assert manager.committed == 3


class TestConcurrencyControl:
    def test_conflicting_transactions_serialize(self):
        """Two increments of the same counter must not lose an update."""
        sim = Simulator()
        manager = _manager(sim)

        def increment(ctx):
            ctx.write("count", ctx.read("count", 0) + 1)

        def worker(sim):
            yield from manager.run(increment, hold_time=1e-6)

        for _ in range(10):
            sim.process(worker(sim))
        sim.run()
        assert manager.store.get("count") == 10

    def test_serial_holds_extend_completion_time(self):
        """N conflicting transactions of hold h take ~N*h: true serialization."""
        sim = Simulator()
        manager = _manager(sim)

        def body(ctx):
            ctx.write("shared", ctx.read("shared", 0) + 1)

        def worker(sim):
            yield from manager.run(body, hold_time=1e-6)

        for _ in range(8):
            sim.process(worker(sim))
        sim.run()
        assert sim.now >= 8e-6 - 1e-12

    def test_disjoint_transactions_run_in_parallel(self):
        sim = Simulator()
        manager = _manager(sim, n_partitions=64)

        def make_body(i):
            def body(ctx):
                ctx.write(("key", i), 1)
            return body

        def worker(sim, i):
            yield from manager.run(make_body(i), hold_time=1e-6)

        for i in range(8):
            sim.process(worker(sim, i))
        sim.run()
        # Different partitions -> concurrent holds -> finish together.
        assert sim.now == pytest.approx(1e-6)

    def test_lock_conflict_counted(self):
        sim = Simulator()
        manager = _manager(sim)

        def body(ctx):
            ctx.write("shared", ctx.read("shared", 0) + 1)

        def worker(sim):
            yield from manager.run(body, hold_time=1e-6)

        for _ in range(4):
            sim.process(worker(sim))
        sim.run()
        assert manager.lock_stats.conflicts >= 3

    def test_access_set_growth_retries(self):
        """A transaction whose live execution touches new keys retries safely."""
        sim = Simulator()
        manager = _manager(sim, n_partitions=1024)
        manager.store.apply("route", "a")

        def body(ctx):
            # Which key we touch depends on a value another tx may change.
            target = ctx.read("route")
            ctx.write(("bucket", target), 1)

        def flipper(ctx):
            ctx.write("route", "b")

        def worker(sim):
            yield from manager.run(body, hold_time=2e-6)

        def interferer(sim):
            yield sim.timeout(5e-7)
            yield from manager.run(flipper, hold_time=1e-7)

        sim.process(worker(sim))
        sim.process(interferer(sim))
        sim.run()
        assert ("bucket", "a") in manager.store or ("bucket", "b") in manager.store


class TestWoundWait:
    def test_unordered_acquisition_no_deadlock(self):
        """Opposite-order lock acquisition must resolve via wounding."""
        sim = Simulator()
        manager = _manager(sim, n_partitions=1024, acquire_order="declared")

        def ab(ctx):
            ctx.write("a", ctx.read("a", 0) + 1)
            ctx.write("b", ctx.read("b", 0) + 1)

        def ba(ctx):
            ctx.write("b", ctx.read("b", 0) + 1)
            ctx.write("a", ctx.read("a", 0) + 1)

        def worker(sim, body):
            yield from manager.run(body, hold_time=1e-6)

        for _ in range(5):
            sim.process(worker(sim, ab))
            sim.process(worker(sim, ba))
        sim.run()
        assert manager.store.get("a") == 10
        assert manager.store.get("b") == 10

    def test_heavy_interleaving_progress(self):
        sim = Simulator()
        manager = _manager(sim, n_partitions=1024, acquire_order="declared")
        keys = ["k0", "k1", "k2", "k3"]

        def make_body(order):
            def body(ctx):
                for key in order:
                    ctx.write(key, ctx.read(key, 0) + 1)
            return body

        def worker(sim, order, delay):
            yield sim.timeout(delay)
            yield from manager.run(make_body(order), hold_time=1e-6)

        import itertools
        perms = list(itertools.permutations(keys))
        for i, perm in enumerate(perms):
            sim.process(worker(sim, list(perm), delay=(i % 4) * 2e-7))
        sim.run()
        total = sum(manager.store.get(k) for k in keys)
        assert total == len(perms) * len(keys)

    def test_aborted_transactions_reexecute(self):
        sim = Simulator()
        manager = _manager(sim, n_partitions=1024, acquire_order="declared")

        def ab(ctx):
            ctx.write("a", ctx.read("a", 0) + 1)
            ctx.write("b", ctx.read("b", 0) + 1)

        def ba(ctx):
            ctx.write("b", ctx.read("b", 0) + 1)
            ctx.write("a", ctx.read("a", 0) + 1)

        def worker(sim, body):
            yield from manager.run(body, hold_time=1e-5)

        for _ in range(20):
            sim.process(worker(sim, ab))
            sim.process(worker(sim, ba))
        sim.run()
        # Everything committed despite any wounds.
        assert manager.store.get("a") == 40
        assert manager.store.get("b") == 40

    def test_invalid_acquire_order_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            _manager(sim, acquire_order="random")


class TestSerializability:
    def test_randomized_schedule_equals_serial_outcome(self):
        """Transfer workload: total balance is invariant under any schedule."""
        sim = Simulator()
        manager = _manager(sim, n_partitions=16)
        accounts = [("acct", i) for i in range(8)]
        for acct in accounts:
            manager.store.apply(acct, 100)

        def make_transfer(src, dst, amount):
            def body(ctx):
                ctx.write(src, ctx.read(src, 0) - amount)
                ctx.write(dst, ctx.read(dst, 0) + amount)
            return body

        import random
        rng = random.Random(42)

        def worker(sim, body, delay):
            yield sim.timeout(delay)
            yield from manager.run(body, hold_time=rng.uniform(1e-7, 1e-6))

        for _ in range(100):
            src, dst = rng.sample(accounts, 2)
            sim.process(worker(sim, make_transfer(src, dst, rng.randint(1, 10)),
                               rng.uniform(0, 2e-5)))
        sim.run()
        assert sum(manager.store.get(a) for a in accounts) == 800
        assert manager.committed == 100
