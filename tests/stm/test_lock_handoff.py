"""Tests for lock handoff wakeup behaviour (the Fig 6 contention model)."""

import pytest

from repro.sim import Simulator
from repro.stm import PartitionSpace, StateStore, TransactionManager


def _manager(sim, handoff_s=0.0, spin_threshold=2):
    return TransactionManager(sim, StateStore(), PartitionSpace(4),
                              handoff_delay_s=handoff_s,
                              spin_threshold=spin_threshold)


def _conflicting_worker(sim, manager, hold):
    def body(ctx):
        ctx.write("shared", ctx.read("shared", 0) + 1)

    def worker(sim):
        yield from manager.run(body, hold_time=hold)

    return worker(sim)


class TestHandoffDelay:
    def test_no_handoff_perfect_serialization(self):
        sim = Simulator()
        manager = _manager(sim, handoff_s=0.0)
        for _ in range(4):
            sim.process(_conflicting_worker(sim, manager, hold=1e-6))
        sim.run()
        assert sim.now == pytest.approx(4e-6)

    def test_light_contention_pays_wakeup(self):
        """Two alternating threads expose the handoff delay."""
        sim = Simulator()
        manager = _manager(sim, handoff_s=0.25e-6, spin_threshold=2)
        for _ in range(4):
            sim.process(_conflicting_worker(sim, manager, hold=1e-6))
        sim.run()
        # First acquisition free; 3 handoffs with <2 remaining waiters...
        # with 4 queued, the first handoffs see a crowd: only the last
        # 2 grants have < 2 waiters left.
        assert sim.now > 4e-6

    def test_crowded_queue_spins_through(self):
        """With many waiters still queued, grants are immediate."""
        sim = Simulator()
        manager = _manager(sim, handoff_s=0.25e-6, spin_threshold=2)
        for _ in range(10):
            sim.process(_conflicting_worker(sim, manager, hold=1e-6))
        sim.run()
        # Only the final two handoffs (queue drained) pay the wakeup.
        assert sim.now == pytest.approx(10e-6 + 2 * 0.25e-6, rel=0.01)

    def test_uncontended_never_pays(self):
        sim = Simulator()
        manager = _manager(sim, handoff_s=1e-3)

        def worker(sim, key):
            yield from manager.run(lambda ctx: ctx.write(key, 1),
                                   hold_time=1e-6)

        sim.process(worker(sim, 0))
        sim.run()
        assert sim.now == pytest.approx(1e-6)

    def test_correctness_unaffected_by_handoff(self):
        sim = Simulator()
        manager = _manager(sim, handoff_s=0.5e-6)
        for _ in range(8):
            sim.process(_conflicting_worker(sim, manager, hold=1e-7))
        sim.run()
        assert manager.store.get("shared") == 8
