"""Tests for state stores and partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.stm import PartitionSpace, StateStore, TOMBSTONE


class TestStateStore:
    def test_get_default(self):
        store = StateStore()
        assert store.get("missing") is None
        assert store.get("missing", 7) == 7

    def test_apply_and_read(self):
        store = StateStore()
        store.apply("k", 1)
        assert store.get("k") == 1
        assert "k" in store
        assert len(store) == 1

    def test_tombstone_deletes(self):
        store = StateStore()
        store.apply("k", 1)
        store.apply("k", TOMBSTONE)
        assert "k" not in store
        assert len(store) == 0

    def test_tombstone_on_missing_key_is_noop(self):
        store = StateStore()
        store.apply("ghost", TOMBSTONE)
        assert len(store) == 0

    def test_tombstone_singleton(self):
        from repro.stm.store import _Tombstone
        assert _Tombstone() is TOMBSTONE

    def test_apply_many_ordered(self):
        store = StateStore()
        store.apply_many({"a": 1, "b": 2})
        assert store.get("a") == 1 and store.get("b") == 2
        assert store.writes_applied == 2

    def test_snapshot_is_deep(self):
        store = StateStore()
        store.apply("k", {"nested": [1, 2]})
        snap = store.snapshot()
        snap["k"]["nested"].append(3)
        assert store.get("k") == {"nested": [1, 2]}

    def test_load_replaces_contents(self):
        store = StateStore()
        store.apply("old", 1)
        store.load({"new": 2})
        assert "old" not in store
        assert store.get("new") == 2

    def test_equality_by_contents(self):
        a, b = StateStore("a"), StateStore("b")
        a.apply("k", 1)
        b.apply("k", 1)
        assert a == b
        b.apply("k", 2)
        assert a != b

    def test_fingerprint_order_independent(self):
        a, b = StateStore(), StateStore()
        a.apply("x", 1)
        a.apply("y", 2)
        b.apply("y", 2)
        b.apply("x", 1)
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_handles_unhashable_values(self):
        store = StateStore()
        store.apply("k", {"a": [1, {2}]})
        assert isinstance(store.fingerprint(), int)

    def test_state_bytes_scales_with_keys(self):
        store = StateStore()
        for i in range(10):
            store.apply(i, i)
        assert store.state_bytes(value_size=32) == 320


class TestPartitionSpace:
    def test_stable_mapping(self):
        space = PartitionSpace(16)
        assert space.partition_of("key") == space.partition_of("key")

    def test_consistent_across_instances(self):
        # Replicas build their own PartitionSpace; mappings must agree.
        assert (PartitionSpace(64).partition_of(("flow", 1, 2)) ==
                PartitionSpace(64).partition_of(("flow", 1, 2)))

    def test_range(self):
        space = PartitionSpace(8)
        for key in range(1000):
            assert 0 <= space.partition_of(key) < 8

    def test_tuple_and_str_keys_distinct_encoding(self):
        space = PartitionSpace(1 << 30)
        # ("ab",) and ("a","b") must not collide by construction.
        assert (space.partition_of(("ab",)) != space.partition_of(("a", "b")))

    def test_spreads_keys(self):
        space = PartitionSpace(64)
        buckets = {space.partition_of(("flow", i)) for i in range(1000)}
        assert len(buckets) > 48  # good dispersion

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            PartitionSpace(0)

    @given(st.one_of(st.integers(), st.text(),
                     st.tuples(st.integers(), st.text())))
    def test_deterministic_for_any_key(self, key):
        space = PartitionSpace(32)
        assert space.partition_of(key) == space.partition_of(key)

    def test_integers_beyond_128_bits(self):
        # Regression: 16-byte fixed-width encoding overflowed here.
        space = PartitionSpace(32)
        for key in (2 ** 127, -(2 ** 127) - 1, 2 ** 400):
            assert 0 <= space.partition_of(key) < 32
            assert space.partition_of(key) == space.partition_of(key)

    def test_equality(self):
        assert PartitionSpace(8) == PartitionSpace(8)
        assert PartitionSpace(8) != PartitionSpace(16)
