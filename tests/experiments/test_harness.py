"""Tests for the experiment harness (fast, shrunken windows)."""

import pytest

from repro.experiments import ExperimentResult, build_system
from repro.experiments.runner import latency_under_load, saturation_throughput
from repro.metrics import EgressRecorder
from repro.middlebox import Monitor, ch_n
from repro.sim import Simulator


class TestExperimentResult:
    def test_add_and_column(self):
        result = ExperimentResult("X", headers=["a", "b"])
        result.add(1, 2)
        result.add(3, 4)
        assert result.column("b") == [2, 4]

    def test_render_includes_title_and_notes(self):
        result = ExperimentResult("Title", headers=["a"])
        result.add(1)
        result.notes.append("hello")
        text = result.render()
        assert "Title" in text and "hello" in text


class TestBuildSystem:
    @pytest.mark.parametrize("kind", ["nf", "FTC", "ftmb", "FTMB+Snapshot",
                                      "remote-store"])
    def test_known_kinds(self, kind):
        sim = Simulator()
        system = build_system(kind, sim, ch_n(2, n_threads=2),
                              EgressRecorder(sim), n_threads=2)
        assert hasattr(system, "ingress")
        assert hasattr(system, "total_released")

    def test_unknown_kind_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_system("paxos", sim, ch_n(1), lambda p: None)


class TestMeasurements:
    def test_saturation_respects_nic_cap(self):
        mpps = saturation_throughput(
            "nf", lambda: [Monitor(name="m", n_threads=2)],
            n_threads=2, warm_s=0.3e-3, window_s=0.7e-3)
        # Two threads of Monitor: CPU-bound below the NIC cap.
        assert 0 < mpps <= 10.5

    def test_saturation_deterministic_given_seed(self):
        def once():
            return saturation_throughput(
                "ftc", lambda: ch_n(2, n_threads=2), n_threads=2,
                warm_s=0.3e-3, window_s=0.7e-3, seed=5)

        assert once() == once()

    def test_latency_under_light_load_near_floor(self):
        egress = latency_under_load(
            "nf", lambda: ch_n(2, n_threads=2), rate_pps=1e5,
            n_threads=2, warm_s=0.3e-3, window_s=1e-3)
        assert len(egress.latency) > 0
        assert egress.latency.mean_us() < 30

    def test_latency_grows_with_load(self):
        light = latency_under_load(
            "nf", lambda: [Monitor(name="m", n_threads=1)], rate_pps=0.5e6,
            n_threads=1, warm_s=0.3e-3, window_s=1.5e-3)
        heavy = latency_under_load(
            "nf", lambda: [Monitor(name="m", n_threads=1)], rate_pps=3.4e6,
            n_threads=1, warm_s=0.3e-3, window_s=1.5e-3)
        assert heavy.latency.mean_us() > light.latency.mean_us()
