"""Tests for the packet tracer and Chrome trace_event schema."""

import json

import pytest

from repro.telemetry import (
    NULL_TRACER,
    PacketTracer,
    validate_chrome_trace,
)


class TestSampling:
    def test_every_packet_by_default(self):
        tracer = PacketTracer()
        assert all(tracer.wants(pid) for pid in range(10))

    def test_deterministic_modulo(self):
        tracer = PacketTracer(sample_every=10)
        wanted = [pid for pid in range(50) if tracer.wants(pid)]
        assert wanted == [0, 10, 20, 30, 40]

    def test_sample_every_validated(self):
        with pytest.raises(ValueError):
            PacketTracer(sample_every=0)

    def test_max_events_zero_disables_sampling(self):
        tracer = PacketTracer(max_events=0)
        assert not tracer.wants(0)
        assert tracer.dropped == 0


class TestRecording:
    def test_event_cap(self):
        tracer = PacketTracer(max_events=2)
        for pid in range(5):
            tracer.instant(pid, "x", "test", t_s=0.0)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3

    def test_complete_clamps_negative_duration(self):
        tracer = PacketTracer()
        tracer.complete(1, "span", "test", start_s=2.0, end_s=1.0)
        assert tracer.events[0]["dur"] == 0.0

    def test_timestamps_in_microseconds(self):
        tracer = PacketTracer()
        tracer.complete(1, "span", "test", start_s=1e-3, end_s=2e-3)
        event = tracer.events[0]
        assert event["ts"] == pytest.approx(1000.0)
        assert event["dur"] == pytest.approx(1000.0)

    def test_thread_name_metadata(self):
        tracer = PacketTracer()
        tracer.set_thread_name(0, "p0:firewall")
        events = tracer.chrome_events()
        assert events[0]["ph"] == "M"
        assert events[0]["args"]["name"] == "p0:firewall"


class TestExport:
    def test_export_roundtrip(self, tmp_path):
        tracer = PacketTracer(sample_every=2)
        tracer.complete(0, "span", "test", start_s=0.0, end_s=1e-6, tid=1)
        tracer.begin_async(0, "hold", "test", t_s=0.0)
        tracer.end_async(0, "hold", "test", t_s=2e-6)
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == []
        assert trace["otherData"]["sample_every"] == 2

    def test_validator_rejects_bad_events(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "no"}) != []
        bad_phase = {"traceEvents": [
            {"name": "n", "cat": "c", "ph": "Q", "ts": 0, "pid": 0, "tid": 0}]}
        assert any("phase" in p for p in validate_chrome_trace(bad_phase))
        missing_dur = {"traceEvents": [
            {"name": "n", "cat": "c", "ph": "X", "ts": 0, "pid": 0, "tid": 0}]}
        assert any("dur" in p for p in validate_chrome_trace(missing_dur))
        missing_id = {"traceEvents": [
            {"name": "n", "cat": "c", "ph": "b", "ts": 0, "pid": 0, "tid": 0}]}
        assert any("id" in p for p in validate_chrome_trace(missing_id))

    def test_null_tracer_exports_empty(self):
        assert not NULL_TRACER.enabled
        assert not NULL_TRACER.wants(0)
        NULL_TRACER.instant(0, "x", "test", t_s=0.0)
        assert NULL_TRACER.events == []
        assert NULL_TRACER.export()["traceEvents"] == []
