"""Tests for the metric registry and its null variants."""

import math

import pytest

from repro.telemetry import (
    Histogram,
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
)


class TestInstruments:
    def test_counter(self):
        registry = MetricRegistry()
        counter = registry.counter("a/b")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        assert registry.counter("a/b") is counter

    def test_gauge(self):
        registry = MetricRegistry()
        gauge = registry.gauge("g")
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0
        assert registry.gauge("g") is gauge

    def test_histogram_aggregates(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.mean() == 2.0
        assert hist.min == 1.0 and hist.max == 3.0
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 3.0

    def test_histogram_empty_is_nan(self):
        hist = Histogram("h")
        assert math.isnan(hist.mean())
        assert math.isnan(hist.percentile(50))
        assert math.isnan(hist.summary()["max"])

    def test_histogram_warmup_window(self):
        hist = Histogram("h")
        hist.observe(100.0, t=0.0)
        hist.start_window(1.0)
        hist.observe(1.0, t=1.5)
        assert hist.count == 1
        assert hist.mean() == 1.0
        assert hist.window_start == 1.0

    def test_histogram_reservoir_bounded(self):
        hist = Histogram("h", reservoir=8)
        for i in range(1000):
            hist.observe(float(i))
        assert hist.count == 1000
        assert len(hist._reservoir) == 8
        # Aggregates stay exact even when the reservoir wraps.
        assert hist.max == 999.0 and hist.min == 0.0


class TestRegistry:
    def test_snapshot(self):
        registry = MetricRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(4.0)
        snap = registry.snapshot()
        assert snap["c"] == 2
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricRegistry(), MetricRegistry()
        a.counter("c").inc(1)
        b.counter("c").inc(2)
        b.counter("only-b").inc(7)
        a.gauge("g").set(1.0)
        b.gauge("g").set(9.0)
        a.histogram("h").observe(1.0)
        b.histogram("h").observe(3.0)
        a.merge(b)
        assert a.counter("c").value == 3
        assert a.counter("only-b").value == 7
        assert a.gauge("g").value == 9.0
        assert a.histogram("h").count == 2
        assert a.histogram("h").mean() == 2.0

    def test_rows_sorted_and_typed(self):
        registry = MetricRegistry()
        registry.counter("z").inc()
        registry.counter("a").inc()
        registry.histogram("h").observe(1.0)
        rows = registry.rows()
        assert [r[0] for r in rows] == ["a", "z", "h"]
        assert rows[0][1] == "counter" and rows[2][1] == "hist"

    def test_start_window_cuts_every_histogram(self):
        registry = MetricRegistry()
        registry.histogram("h1").observe(1.0)
        registry.histogram("h2").observe(2.0)
        registry.start_window(5.0)
        assert registry.histogram("h1").count == 0
        assert registry.histogram("h2").count == 0


class TestNullVariants:
    def test_shared_singletons(self):
        assert NULL_REGISTRY.counter("x") is NULL_COUNTER
        assert NULL_REGISTRY.gauge("x") is NULL_GAUGE
        assert NULL_REGISTRY.histogram("x") is NULL_HISTOGRAM

    def test_noops_store_nothing(self):
        NULL_COUNTER.inc(100)
        NULL_GAUGE.set(5.0)
        NULL_HISTOGRAM.observe(1.0, t=2.0)
        assert NULL_COUNTER.value == 0
        assert NULL_GAUGE.value == 0.0
        assert NULL_HISTOGRAM.count == 0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.rows() == []

    def test_enabled_flags(self):
        assert MetricRegistry().enabled
        assert not NULL_REGISTRY.enabled
