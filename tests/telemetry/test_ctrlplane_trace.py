"""Chrome trace coverage for the control plane (satellite of §10).

A run under a replicated orchestrator ensemble must emit trace_event
spans for elections (async ``lead:mN`` spans), journal quorum writes,
and fenced commands on the dedicated control-plane track (tid 9998),
and the whole export must pass :func:`validate_chrome_trace`.
"""

import json

from repro.chaos.soak import CTRLPLANE_ELECTION, SOAK_COSTS
from repro.core import FTCChain
from repro.middlebox import ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration import OrchestratorEnsemble
from repro.sim import Simulator
from repro.telemetry import Telemetry, validate_chrome_trace

CTRL_TID = 9998


def _ctrlplane_run(seed=4):
    sim = Simulator()
    telemetry = Telemetry()
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1,
                     deliver=lambda packet: None, costs=SOAK_COSTS,
                     n_threads=2, seed=seed, telemetry=telemetry)
    chain.start()
    ensemble = OrchestratorEnsemble(sim, chain, n=3,
                                    election=CTRLPLANE_ELECTION,
                                    heartbeat_interval_s=1e-3)
    ensemble.start()
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=2e4,
                                 flows=balanced_flows(8, 2))
    sim.schedule_callback(15e-3, lambda: chain.fail_position(1))
    sim.run(until=50e-3)
    generator.stop()
    sim.run(until=80e-3)
    ensemble.stop()
    assert any(event.recovered for event in ensemble.history)
    return telemetry, ensemble


class TestCtrlplaneTrace:
    def test_export_validates_and_covers_the_control_plane(self, tmp_path):
        telemetry, ensemble = _ctrlplane_run()
        path = tmp_path / "trace.json"
        telemetry.export_chrome(str(path))
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        ctrl = [e for e in events if e.get("tid") == CTRL_TID]
        assert ctrl, "no control-plane events on tid 9998"
        # Leadership renders as an async span named for the winner.
        lead = [e for e in ctrl if e.get("name", "").startswith("lead:m")]
        assert any(e["ph"] == "b" for e in lead)
        # Journal quorum writes appear per step kind.
        journal = {e["name"] for e in ctrl
                   if e.get("name", "").startswith("journal:")}
        assert "journal:declare-failed" in journal
        assert "journal:re-steer" in journal
        # The control-plane track is labeled.
        names = [e for e in events
                 if e.get("ph") == "M" and e.get("tid") == CTRL_TID]
        assert any(e["args"]["name"] == "control-plane" for e in names)

    def test_quorum_write_counter_matches_journal(self):
        telemetry, ensemble = _ctrlplane_run()
        rows = {name: value
                for name, _, value, *_ in telemetry.registry.rows()}
        assert rows["ensemble/journal_quorum_writes"] >= 3  # declare/spawn/steer
        assert rows["election/rounds"] >= 1
        assert rows["election/lease_renewals"] >= 1
        assert rows["ensemble/journal_quorum_writes"] <= \
            rows["ensemble/journal_appends"]
