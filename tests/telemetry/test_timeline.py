"""Tests for recovery timeline stitching and attempt parsing."""

import pytest

from repro.telemetry import (
    NULL_TIMELINE,
    RecoveryTimeline,
    validate_chrome_trace,
)


def _record_attempt(timeline, t0=0.0, positions=(1,)):
    timeline.record("initializing", positions, t=t0)
    timeline.record("spawned", positions, t=t0 + 1e-3)
    timeline.record("fetching", positions, t=t0 + 1e-3)
    timeline.record("fetched", positions, t=t0 + 3e-3)
    timeline.record("rerouting", positions, t=t0 + 3e-3)
    timeline.record("committed", positions, t=t0 + 3.5e-3)


class TestRecording:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            RecoveryTimeline().record("exploded")

    def test_event_str(self):
        timeline = RecoveryTimeline()
        timeline.record("fault-injected", [2], detail="crash", t=1e-3)
        text = str(timeline.events[0])
        assert "fault-injected" in text and "crash" in text


class TestAttemptParsing:
    def test_phase_durations(self):
        timeline = RecoveryTimeline()
        timeline.record("fault-injected", [1], t=-1e-3)
        timeline.record("suspected", [1], t=-0.5e-3)
        timeline.record("confirmed", [1], t=-0.1e-3)
        _record_attempt(timeline)
        (attempt,) = timeline.committed_attempts()
        assert attempt.positions == (1,)
        assert attempt.phases["initialization"] == pytest.approx(1e-3)
        assert attempt.phases["state_recovery"] == pytest.approx(2e-3)
        assert attempt.phases["rerouting"] == pytest.approx(0.5e-3)
        assert attempt.total_s == pytest.approx(3.5e-3)
        assert attempt.span_s == pytest.approx(3.5e-3)

    def test_aborted_attempt_not_committed(self):
        timeline = RecoveryTimeline()
        timeline.record("initializing", [0], t=0.0)
        timeline.record("spawned", [0], t=1e-3)
        timeline.record("abandoned", [0], detail="gave up", t=2e-3)
        attempts = timeline.attempts()
        assert len(attempts) == 1
        assert not attempts[0].committed
        assert attempts[0].span_s is None
        assert timeline.committed_attempts() == []

    def test_multiple_attempts(self):
        timeline = RecoveryTimeline()
        _record_attempt(timeline, t0=0.0, positions=(0,))
        _record_attempt(timeline, t0=0.01, positions=(2,))
        attempts = timeline.committed_attempts()
        assert [a.positions for a in attempts] == [(0,), (2,)]


class TestExport:
    def test_as_dicts(self):
        timeline = RecoveryTimeline()
        timeline.record("confirmed", [1], detail="x", t=2e-3)
        (event,) = timeline.as_dicts()
        assert event == {"t_s": 2e-3, "kind": "confirmed",
                         "positions": [1], "detail": "x"}

    def test_chrome_events_valid(self):
        timeline = RecoveryTimeline()
        _record_attempt(timeline)
        trace = {"traceEvents": timeline.chrome_events()}
        assert validate_chrome_trace(trace) == []

    def test_render(self):
        timeline = RecoveryTimeline()
        _record_attempt(timeline)
        text = timeline.render()
        assert "recovery timeline" in text
        assert "committed" in text
        assert "total=3.500ms" in text

    def test_null_timeline(self):
        assert not NULL_TIMELINE.enabled
        NULL_TIMELINE.record("committed", [0], t=1.0)
        assert NULL_TIMELINE.events == []
        assert NULL_TIMELINE.attempts() == []
        assert NULL_TIMELINE.render() == ""
