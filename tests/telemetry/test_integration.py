"""End-to-end telemetry tests against the FTC chain.

The two load-bearing guarantees:

* **No-op parity** -- running the same seed with and without a
  ``Telemetry`` attached produces bit-identical results, because the
  hooks never touch the simulation clock or any RNG stream.
* **Timeline exactness** -- the stitched recovery timeline's per-phase
  durations sum to exactly the ``RecoveryReport`` total the
  orchestrator measured (same subtractions at the same instants).
"""

import pytest

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration import CloudNetwork, Orchestrator
from repro.sim import Simulator
from repro.telemetry import Telemetry, validate_chrome_trace

COSTS = CostModel(cycle_jitter_frac=0.0)


def _run_once(telemetry=None, fail_position=None, seed=0):
    sim = Simulator()
    net = CloudNetwork(sim, hop_delay_s=COSTS.hop_delay_s,
                       bandwidth_bps=COSTS.bandwidth_bps, rtt_jitter_frac=0.0)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                     costs=COSTS, net=net, n_threads=2, seed=seed,
                     telemetry=telemetry)
    chain.start()
    orch = Orchestrator(sim, chain, region="core")
    orch.start()
    TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                     flows=balanced_flows(4, 2))
    if fail_position is not None:
        sim.schedule_callback(0.01,
                              lambda: chain.fail_position(fail_position))
    sim.run(until=0.08)
    return sim, chain, orch, egress


class TestNoOpParity:
    def test_identical_without_failure(self):
        _, chain_a, _, egress_a = _run_once(telemetry=None)
        _, chain_b, _, egress_b = _run_once(telemetry=Telemetry())
        assert chain_a.packets_in == chain_b.packets_in
        assert chain_a.total_released() == chain_b.total_released()
        assert egress_a.latency.samples == egress_b.latency.samples

    def test_identical_through_recovery(self):
        _, chain_a, orch_a, egress_a = _run_once(telemetry=None,
                                                 fail_position=1)
        _, chain_b, orch_b, egress_b = _run_once(telemetry=Telemetry(),
                                                 fail_position=1)
        assert chain_a.total_released() == chain_b.total_released()
        assert egress_a.latency.samples == egress_b.latency.samples
        report_a = orch_a.history[0].report
        report_b = orch_b.history[0].report
        assert report_a.total_s == report_b.total_s
        assert orch_a.history[0].detected_at == orch_b.history[0].detected_at


class TestTimelineExactness:
    def test_phases_sum_to_report_total(self):
        telemetry = Telemetry()
        _, _, orch, _ = _run_once(telemetry=telemetry, fail_position=1)
        (event,) = orch.history
        (attempt,) = telemetry.timeline.committed_attempts()
        # Exact equality: the timeline records fire at the instants the
        # report's own subtractions are taken.
        assert attempt.total_s == event.report.total_s
        assert attempt.phases["initialization"] == \
            event.report.initialization_s
        assert attempt.phases["state_recovery"] == \
            event.report.state_recovery_s
        assert attempt.phases["rerouting"] == event.report.rerouting_s

    def test_detection_events_precede_recovery(self):
        telemetry = Telemetry()
        _run_once(telemetry=telemetry, fail_position=2)
        kinds = [e.kind for e in telemetry.timeline.events]
        assert kinds.index("suspected") < kinds.index("confirmed")
        assert kinds.index("confirmed") < kinds.index("initializing")


class TestLiveMetricsAndTrace:
    def test_registry_populated(self):
        telemetry = Telemetry()
        _, _, _, egress = _run_once(telemetry=telemetry, fail_position=1)
        snap = telemetry.registry.snapshot()
        assert snap["orch/failures_detected"] == 1
        assert snap["orch/recoveries"] == 1
        assert snap["piggyback/bytes"]["count"] > 0
        # Every released packet went through the buffer hold histogram.
        assert snap["ftc/buffer/hold_time_s"]["count"] >= egress.count

    def test_trace_export_valid(self, tmp_path):
        telemetry = Telemetry(sample_every=5)
        _run_once(telemetry=telemetry, fail_position=1)
        assert len(telemetry.tracer.events) > 0
        trace = telemetry.export_chrome(str(tmp_path / "trace.json"))
        assert validate_chrome_trace(trace) == []
        # Sampled pids all honour the modulo rule.
        pids = {e["pid"] for e in telemetry.tracer.events}
        assert all(pid % 5 == 0 for pid in pids)

    def test_summary_table_renders(self):
        telemetry = Telemetry()
        _run_once(telemetry=telemetry)
        text = telemetry.summary_table()
        assert "telemetry summary" in text
        assert "stm/" in text and "piggyback/bytes" in text


class TestSoakTelemetry:
    def test_soak_aggregates_registry_and_timelines(self):
        from repro.chaos import SoakConfig, run_soak

        config = SoakConfig(seed=0, schedules=2, faults_per_schedule=2,
                            chain_lengths=[2], f_values=[1],
                            duration_s=0.04, telemetry=True)
        result = run_soak(config)
        assert result.ok, result.summary()
        assert result.registry is not None
        assert result.registry.counter("orch/recoveries").value >= 1
        events = [e for s in result.schedules for e in s.timeline]
        assert any(e["kind"] == "fault-injected" for e in events)
        assert any(e["kind"] == "committed" for e in events)

    def test_soak_without_telemetry_has_none(self):
        from repro.chaos import SoakConfig, run_soak

        config = SoakConfig(seed=3, schedules=1, faults_per_schedule=1,
                            chain_lengths=[2], f_values=[1],
                            duration_s=0.02)
        result = run_soak(config)
        assert result.registry is None
        assert all(s.timeline == [] for s in result.schedules)
