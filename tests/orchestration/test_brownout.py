"""Brownout controller tests (PROTOCOL.md §12.3): hysteretic state
machine, exact knob restore at exit, 1:1 journal coverage."""

from hypothesis import given, settings, strategies as st

import pytest

from repro.core.admission import AdmissionControl
from repro.flight.slo import SLOBreach, SLOObjective
from repro.orchestration import (
    BROWNOUT_STEPS,
    BrownoutController,
    BrownoutPolicy,
)


class _Clock:
    def __init__(self):
        self.now = 0.0


class _Watchdog:
    """Evaluation-tick source: only the listener surface matters."""

    def __init__(self, interval_s=2e-3):
        self.interval_s = interval_s
        self.listeners = []

    def tick(self, breaches):
        for listener in list(self.listeners):
            listener(breaches)


class _Buffer:
    def __init__(self):
        self.feedback_min_interval_s = 50e-6


_BREACH = [SLOBreach(SLOObjective("p99_latency_us", "<=", 800.0),
                     observed=2500.0, t=0.0)]


def _controller(policy=None, journal=None, buffer=None):
    sim = _Clock()
    watchdog = _Watchdog()
    admission = AdmissionControl(sim, rate_pps=1e4)
    brownout = BrownoutController(sim, watchdog, admission=admission,
                                  buffer=buffer, policy=policy,
                                  journal=journal)
    return sim, watchdog, admission, brownout


class TestPolicyValidation:
    @pytest.mark.parametrize("kwargs,match", [
        (dict(enter_after=0), "hysteresis"),
        (dict(exit_after=0), "hysteresis"),
        (dict(max_level=0), "max_level"),
        (dict(admission_factor=0.0), "admission_factor"),
        (dict(admission_factor=1.5), "admission_factor"),
        (dict(sampling_factor=0.5), "sampling"),
        (dict(feedback_factor=0.5), "feedback"),
    ])
    def test_rejects(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            BrownoutPolicy(**kwargs)


class TestHysteresis:
    def test_enters_only_after_sustained_breaches(self):
        _, watchdog, _, brownout = _controller()
        watchdog.tick(_BREACH)
        assert brownout.level == 0 and not brownout.active
        watchdog.tick(_BREACH)
        assert brownout.level == 1 and brownout.active
        assert brownout.transitions[0].kind == "enter"

    def test_flapping_indicator_never_transitions(self):
        _, watchdog, _, brownout = _controller()
        for _ in range(20):
            watchdog.tick(_BREACH)
            watchdog.tick([])
        assert brownout.level == 0
        assert brownout.transitions == []

    def test_escalates_to_cap_then_holds(self):
        policy = BrownoutPolicy(enter_after=1, max_level=3)
        _, watchdog, _, brownout = _controller(policy)
        for _ in range(10):
            watchdog.tick(_BREACH)
        assert brownout.level == 3
        kinds = [tr.kind for tr in brownout.transitions]
        assert kinds == ["enter", "escalate", "escalate"]

    def test_exit_walks_down_one_level_per_window(self):
        policy = BrownoutPolicy(enter_after=1, exit_after=4)
        _, watchdog, _, brownout = _controller(policy)
        for _ in range(3):
            watchdog.tick(_BREACH)
        assert brownout.level == 3
        clean = 0
        while brownout.level > 0:
            watchdog.tick([])
            clean += 1
        assert clean == 3 * policy.exit_after
        kinds = [tr.kind for tr in brownout.transitions]
        assert kinds == ["enter", "escalate", "escalate",
                         "deescalate", "deescalate", "exit"]
        assert brownout.balanced()
        assert kinds.count("enter") == kinds.count("exit")

    @given(st.lists(st.booleans(), min_size=1, max_size=120))
    @settings(max_examples=150, deadline=None)
    def test_level_always_within_bounds(self, breach_pattern):
        policy = BrownoutPolicy(enter_after=2, exit_after=3, max_level=3)
        sim, watchdog, admission, brownout = _controller(policy)
        for i, breached in enumerate(breach_pattern):
            sim.now = i * watchdog.interval_s
            watchdog.tick(_BREACH if breached else [])
            assert 0 <= brownout.level <= policy.max_level
            # Scale tracks level exactly at every tick.
            assert admission.scale == pytest.approx(
                policy.admission_factor ** brownout.level)
        # Transition kinds are consistent with a walk on 0..max_level.
        level = 0
        for tr in brownout.transitions:
            level += 1 if tr.kind in ("enter", "escalate") else -1
            assert tr.level == level
        assert level == brownout.level


class TestKnobs:
    def test_all_knobs_applied_and_restored_exactly(self):
        policy = BrownoutPolicy(enter_after=1, exit_after=1)
        buffer = _Buffer()
        base_feedback = buffer.feedback_min_interval_s
        sim, watchdog, admission, brownout = _controller(
            policy, buffer=buffer)
        base_interval = watchdog.interval_s
        watchdog.tick(_BREACH)
        watchdog.tick(_BREACH)
        assert brownout.level == 2
        assert admission.scale == pytest.approx(0.25)
        assert watchdog.interval_s == pytest.approx(base_interval * 4)
        assert buffer.feedback_min_interval_s == pytest.approx(
            base_feedback * 16)
        watchdog.tick([])
        watchdog.tick([])
        assert brownout.level == 0
        # Exact restore -- not approximately, *exactly* the base value.
        assert admission.scale == 1.0
        assert watchdog.interval_s == base_interval
        assert buffer.feedback_min_interval_s == base_feedback
        assert admission.bucket.rate_pps == pytest.approx(
            admission.base_rate_pps)

    def test_timeline_renders(self):
        policy = BrownoutPolicy(enter_after=1)
        sim, watchdog, _, brownout = _controller(policy)
        sim.now = 4e-3
        watchdog.tick(_BREACH)
        assert brownout.timeline() == [
            "[4.000ms] brownout enter level=1 sustained breach: "
            "p99_latency_us<=800 observed=2500"]


class TestJournal:
    def test_every_transition_journaled_one_to_one(self):
        sink = []
        policy = BrownoutPolicy(enter_after=1, exit_after=1)
        _, watchdog, _, brownout = _controller(policy, journal=sink.append)
        for _ in range(3):
            watchdog.tick(_BREACH)
        for _ in range(3):
            watchdog.tick([])
        assert brownout.level == 0
        assert len(brownout.transitions) == 6
        assert brownout.journaled == brownout.transitions
        assert sink == brownout.transitions
        for tr in sink:
            assert f"brownout-{tr.kind}" in BROWNOUT_STEPS

    def test_no_sink_means_no_journal_claims(self):
        policy = BrownoutPolicy(enter_after=1)
        _, watchdog, _, brownout = _controller(policy)
        watchdog.tick(_BREACH)
        assert brownout.transitions and brownout.journaled == []
