"""Tests for heartbeat failure detection and orchestrated recovery."""

import pytest

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration import CloudNetwork, Orchestrator, place_chain
from repro.sim import Simulator

COSTS = CostModel(cycle_jitter_frac=0.0)


def _setup(sim, regions=None, n=3):
    net = CloudNetwork(sim, hop_delay_s=COSTS.hop_delay_s,
                       bandwidth_bps=COSTS.bandwidth_bps, rtt_jitter_frac=0.0)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(n, n_threads=2), f=1, deliver=egress,
                     costs=COSTS, net=net, n_threads=2)
    if regions:
        place_chain(chain, regions)
    chain.start()
    orch = Orchestrator(sim, chain, region="core")
    orch.start()
    return chain, orch, egress


class TestDetection:
    def test_no_failure_no_events(self):
        sim = Simulator()
        chain, orch, _ = _setup(sim)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                         flows=balanced_flows(4, 2), count=200)
        sim.run(until=0.05)
        assert orch.history == []
        assert orch.heartbeats_sent > 0

    def test_failure_detected_and_recovered(self):
        sim = Simulator()
        chain, orch, _ = _setup(sim)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                         flows=balanced_flows(4, 2))
        sim.schedule_callback(0.01, lambda: chain.fail_position(1))
        sim.run(until=0.1)
        assert len(orch.history) == 1
        event = orch.history[0]
        assert event.positions == [1]
        assert event.report is not None
        assert not chain.server_at(1).failed

    def test_detection_delay_bounded_by_heartbeat_config(self):
        sim = Simulator()
        chain, orch, _ = _setup(sim)
        sim.schedule_callback(0.01, lambda: chain.fail_position(2))
        sim.run(until=0.1)
        event = orch.history[0]
        # Each probe round takes interval + ping timeout (0.8*interval)
        # when a replica is silent.
        bound = orch.heartbeat_interval_s * 1.8 * (orch.misses_allowed + 3)
        assert event.detection_delay_s <= bound

    def test_traffic_flows_after_orchestrated_recovery(self):
        sim = Simulator()
        chain, orch, egress = _setup(sim)
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=2e5,
                               flows=balanced_flows(8, 2))
        sim.schedule_callback(0.01, lambda: chain.fail_position(1))
        sim.run(until=0.2)
        gen.stop()
        sim.run(until=0.21)
        released = chain.total_released()
        assert released > 0
        # Post-recovery consistency.
        for mbox in chain.middleboxes:
            index = chain.mbox_index(mbox.name)
            stores = [chain.store_of(mbox.name, p)
                      for p in chain.group_positions(index)]
            assert all(s == stores[0] for s in stores)
            assert mbox.total_count(stores[0]) >= released


class TestRegionAwareRecovery:
    def test_init_delay_tracks_region_rtt(self):
        """Fig 13: farther regions -> longer initialization."""
        delays = {}
        for region, position in (("core", 0), ("remote", 1), ("neighbor", 2)):
            sim = Simulator()
            chain, orch, _ = _setup(
                sim, regions=["core", "remote", "neighbor"])
            sim.schedule_callback(0.01, lambda p=position: chain.fail_position(p))
            sim.run(until=0.4)
            delays[region] = orch.history[0].report.initialization_s
        assert delays["core"] < delays["neighbor"] < delays["remote"]
        assert delays["core"] == pytest.approx(0.9e-3 + 0.3e-3, rel=0.01)
        assert delays["remote"] == pytest.approx(49.5e-3 + 0.3e-3, rel=0.01)

    def test_state_recovery_dominated_by_wan(self):
        sim = Simulator()
        chain, orch, _ = _setup(sim, regions=["core", "remote", "neighbor"])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                         flows=balanced_flows(4, 2))
        sim.schedule_callback(0.01, lambda: chain.fail_position(1))
        sim.run(until=0.4)
        report = orch.history[0].report
        # Fetching from core and neighbor: at least one neighbor RTT.
        assert report.state_recovery_s >= 5e-3

    def test_parallel_fetches_not_serialized(self):
        """§7.5: a new replica fetches state in parallel, so recovery
        time tracks the slowest fetch, not the sum."""
        sim = Simulator()
        chain, orch, _ = _setup(sim, regions=["remote", "core", "remote"])
        TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                         flows=balanced_flows(4, 2))
        sim.schedule_callback(0.01, lambda: chain.fail_position(1))
        sim.run(until=0.5)
        report = orch.history[0].report
        # Both fetches cross core<->remote (49.5 ms RTT) and cost two
        # round trips each (connect + request/response); serialized
        # they would take >= 198 ms, parallel ~100 ms.
        assert len(report.fetches) == 2
        assert report.state_recovery_s < 140e-3
