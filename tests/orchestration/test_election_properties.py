"""Property tests for election safety (PROTOCOL.md §9).

Hypothesis drives randomized fault scripts -- leader crashes, pauses,
and one-member partitions at arbitrary instants -- and checks the two
safety properties the replicated control plane rests on:

* **at most one leader per epoch**, ever (grants are durable and
  monotonic, so an epoch can never be won twice);
* **at most one unexpired lease at any instant** (single global sim
  clock), sampled on a fine grid throughout the run;

and, end-to-end on a real chain, **no double recovery**: a single
data-plane failure is never re-steered twice under different epochs,
no matter when the leader dies or freezes relative to the recovery.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import ch_n
from repro.orchestration import (
    CloudNetwork,
    ElectionConfig,
    ElectionMember,
    OrchestratorEnsemble,
    place_chain,
)
from repro.sim import RandomStreams, Simulator
from repro.telemetry import Telemetry

COSTS = CostModel(cycle_jitter_frac=0.0)
CFG = ElectionConfig(lease_s=6e-3, renew_every_s=2e-3, candidacy_base_s=2e-3)

#: One scripted control-plane fault: (kind, at_s, duration_s).
FAULTS = st.lists(
    st.tuples(st.sampled_from(["crash", "pause", "partition"]),
              st.floats(min_value=5e-3, max_value=45e-3),
              st.floats(min_value=2e-3, max_value=20e-3)),
    min_size=1, max_size=3)

SLOW = settings(deadline=None, max_examples=12,
                suppress_health_check=[HealthCheck.too_slow])


class _Recorder(ElectionMember):
    """Member that logs every election win into a shared list."""

    def __init__(self, log, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._log = log

    def _on_elected(self, epoch):
        self._log.append((epoch, self.index))


def _election_only(sim, seed, log):
    net = CloudNetwork(sim, rtt_jitter_frac=0.0, seed=seed)
    streams = RandomStreams(seed)
    members = []
    for i in range(3):
        net.add_server(f"orch{i}", n_cores=1)
        members.append(_Recorder(log, sim, net, i, f"orch{i}", CFG,
                                 rng=streams.stream(f"m{i}")))
    for member in members:
        member.set_peers(members)
    for member in members:
        member.start()
    return net, members


def _apply_fault(sim, net, members, kind, duration_s):
    leaders = [m for m in members if m.is_leader and not m.crashed
               and not m.paused]
    target = leaders[0] if leaders else members[0]
    if kind == "crash":
        if not target.crashed:
            target.crash()
            sim.schedule_callback(duration_s, target.restart)
    elif kind == "pause":
        target.pause(duration_s)
    else:
        others = [m.server_name for m in members if m is not target]
        token = net.partition([target.server_name], others)
        sim.schedule_callback(duration_s, lambda: net.heal(token))


@given(faults=FAULTS, seed=st.integers(min_value=0, max_value=2**16))
@SLOW
def test_election_safety_under_fault_scripts(faults, seed):
    sim = Simulator()
    log = []
    net, members = _election_only(sim, seed, log)
    lease_samples = []

    def sample():
        alive = [m for m in members if m.lease_valid and not m.crashed]
        lease_samples.append(len(alive))
        if sim.now < 0.078:
            sim.schedule_callback(0.4e-3, sample)

    sim.schedule_callback(0.4e-3, sample)
    for kind, at_s, duration_s in faults:
        sim.schedule_callback(
            at_s, lambda k=kind, d=duration_s: _apply_fault(
                sim, net, members, k, d))
    sim.run(until=0.08)
    epochs = [epoch for epoch, _ in log]
    assert len(epochs) == len(set(epochs)), f"epoch won twice: {log}"
    assert max(lease_samples, default=0) <= 1, \
        f"dual lease observed: {max(lease_samples)}"


@given(fault_kind=st.sampled_from(["crash", "pause"]),
       delay_s=st.floats(min_value=0.0, max_value=8e-3),
       seed=st.integers(min_value=0, max_value=255))
@settings(deadline=None, max_examples=8,
          suppress_health_check=[HealthCheck.too_slow])
def test_no_double_recovery_whenever_leader_dies(fault_kind, delay_s, seed):
    """One chain failure, one leader fault at a random offset: the
    epoch gate must never apply two re-steers for the same server."""
    sim = Simulator()
    net = CloudNetwork(sim, hop_delay_s=COSTS.hop_delay_s,
                       bandwidth_bps=COSTS.bandwidth_bps,
                       rtt_jitter_frac=0.0, seed=seed)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                     costs=COSTS, net=net, n_threads=2, seed=seed,
                     telemetry=Telemetry(max_trace_events=0))
    place_chain(chain, ["core", "core", "core"])
    chain.start()
    ensemble = OrchestratorEnsemble(sim, chain, n=3, election=CFG,
                                    region="core")
    ensemble.start()
    t_fail = 15e-3
    sim.schedule_callback(t_fail, lambda: chain.fail_position(1))

    def fault_leader():
        leader = ensemble.leader
        if leader is None:
            return
        if fault_kind == "crash":
            leader.crash()
            sim.schedule_callback(20e-3, leader.restart)
        else:
            leader.pause(20e-3)

    sim.schedule_callback(t_fail + delay_s, fault_leader)
    sim.run(until=0.12)
    replaced = {}
    for command in ensemble.gate.applied:
        if command.kind != "re-steer" or not command.detail:
            continue
        old = command.detail.split(" with ")[0]
        first = replaced.setdefault(old, command)
        assert first is command or first.epoch == command.epoch, (
            f"{old} re-steered under epochs {first.epoch} and "
            f"{command.epoch}")
    epochs = [epoch for epoch, _ in ensemble.election_log]
    assert len(epochs) == len(set(epochs))
    assert not chain.server_at(1).failed or not ensemble.has_quorum
