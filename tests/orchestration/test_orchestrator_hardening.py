"""Hardened recovery path: failures during recovery, control-plane
retries, graceful degradation (the §5.2 robustness envelope)."""

import pytest

from repro.chaos import FaultInjector, FaultPlan
from repro.core import FTCChain, RECOVERY_PHASES
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration import CloudNetwork, Orchestrator, place_chain
from repro.sim import Simulator, Timeout

COSTS = CostModel(cycle_jitter_frac=0.0)


def _setup(sim, regions=None, n=3, f=1, seed=0, rtt_jitter=0.0):
    net = CloudNetwork(sim, hop_delay_s=COSTS.hop_delay_s,
                       bandwidth_bps=COSTS.bandwidth_bps,
                       rtt_jitter_frac=rtt_jitter, seed=seed)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(n, n_threads=2), f=f, deliver=egress,
                     costs=COSTS, net=net, n_threads=2, seed=seed)
    if regions:
        place_chain(chain, regions)
    chain.start()
    orch = Orchestrator(sim, chain, region="core")
    orch.start()
    return chain, orch, egress


class TestPingHygiene:
    def test_ping_cancels_losing_deadline(self):
        """Regression: the AnyOf race inside a heartbeat must withdraw
        its loser, not leave live timeouts in the queue."""
        sim = Simulator()
        net = CloudNetwork(sim, hop_delay_s=COSTS.hop_delay_s,
                           bandwidth_bps=COSTS.bandwidth_bps,
                           rtt_jitter_frac=0.0)
        net.add_server("s0")
        net.add_server("s1")

        # A bare chain facade: the queue then holds only ping events.
        class _Chain:
            def __init__(self):
                self.net = net
                self.route = ["s0", "s1"]

            def server_at(self, position):
                return net.servers[self.route[position]]

        orch = Orchestrator(sim, _Chain())
        ping = sim.process(orch._ping(0))
        sim.run(until=ping)
        stale = [event for _, _, _, event in sim._queue
                 if isinstance(event, Timeout) and not event._cancelled]
        assert stale == []
        assert orch._misses[0] == 0  # the ping itself succeeded

    def test_ping_against_dead_server_misses(self):
        sim = Simulator()
        chain, orch, _ = _setup(sim)
        chain.server_at(1).fail()
        ping = sim.process(orch._ping(1))
        sim.run(until=ping)
        assert orch._misses[1] == 1


class TestFailureDuringRecovery:
    def test_crash_during_recovery_union_reentry(self):
        """Acceptance: a crash injected while state recovery is fetching
        (via a recovery-phase hook) is detected and recovered -- the
        running attempt aborts and re-enters with the union (§5.2)."""
        sim = Simulator()
        # WAN placement makes the fetch slow enough (~100 ms) for the
        # second crash to be *detected* mid-recovery.
        chain, orch, egress = _setup(
            sim, regions=["core", "remote", "neighbor", "core"], n=4, f=2)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                         flows=balanced_flows(8, 2))
        plan = FaultPlan().crash(1, at_s=0.01)
        plan.crash_during_recovery(position=3, phase="fetching")
        injector = FaultInjector(chain, orch, plan)
        injector.start()
        heartbeats_at_crash = []
        orch.recovery_hooks.append(
            lambda phase, _pos: heartbeats_at_crash.append(
                orch.heartbeats_sent) if phase == "fetching" else None)
        sim.run(until=0.6)

        assert len(injector.injected) == 2
        assert len(orch.history) == 2
        first, second = orch.history
        assert first.positions == [1]
        assert second.positions == [3]
        # The first attempt was aborted and re-entered with the union.
        assert first.recovery_attempts >= 2
        assert first.recovered and second.recovered
        assert not chain.degraded
        for position in range(chain.n_positions):
            assert not chain.server_at(position).failed
        # Monitoring never paused: heartbeats kept flowing between the
        # two fetching phases.
        assert len(heartbeats_at_crash) >= 2
        assert heartbeats_at_crash[-1] > heartbeats_at_crash[0]

    def test_traffic_flows_after_union_recovery(self):
        sim = Simulator()
        chain, orch, egress = _setup(
            sim, regions=["core", "remote", "neighbor", "core"], n=4, f=2)
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                               flows=balanced_flows(8, 2))
        plan = FaultPlan().crash(1, at_s=0.01)
        plan.crash_during_recovery(position=3, phase="fetching")
        FaultInjector(chain, orch, plan).start()
        sim.run(until=0.55)
        released_mid = chain.total_released()
        sim.run(until=0.7)
        gen.stop()
        sim.run(until=0.72)
        assert chain.total_released() > released_mid > 0


class TestSimultaneousFailures:
    def test_correlated_multi_crash_single_recovery(self):
        sim = Simulator()
        chain, orch, _ = _setup(sim, n=4, f=2)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                         flows=balanced_flows(8, 2))
        plan = FaultPlan().crash(0, at_s=0.01).crash(2, at_s=0.01)
        FaultInjector(chain, orch, plan).start()
        sim.run(until=0.15)
        assert len(orch.history) == 1
        event = orch.history[0]
        assert event.positions == [0, 2]
        assert event.recovered
        assert event.report.positions == [0, 2]
        for position in range(chain.n_positions):
            assert not chain.server_at(position).failed


class TestGracefulDegradation:
    def test_more_than_f_failures_degrade_not_crash(self):
        """>f members of a group gone: the chain flags degraded, the
        event carries the error, and the simulation keeps running."""
        sim = Simulator()
        chain, orch, egress = _setup(sim, n=3, f=1)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                         flows=balanced_flows(8, 2))
        # Positions 1 and 2 are both in monitor2's group: unrecoverable.
        plan = FaultPlan().crash(1, at_s=0.01).crash(2, at_s=0.01)
        FaultInjector(chain, orch, plan).start()
        sim.run(until=0.1)

        assert chain.degraded
        assert "no alive replica" in chain.degraded_reason
        event = orch.history[0]
        assert event.error is not None
        assert not event.recovered
        assert orch.lost_positions == {1, 2}
        # The orchestrator survives and keeps monitoring the rest.
        sent = orch.heartbeats_sent
        sim.run(until=0.15)
        assert orch.heartbeats_sent > sent
        assert orch.history[0] is event  # no spurious re-detections

    def test_degraded_chain_meters_keep_reporting(self):
        sim = Simulator()
        chain, orch, egress = _setup(sim, n=3, f=1)
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                               flows=balanced_flows(8, 2))
        plan = FaultPlan().crash(1, at_s=0.02).crash(2, at_s=0.02)
        FaultInjector(chain, orch, plan).start()
        sim.run(until=0.1)
        gen.stop()
        sim.run(until=0.11)
        # Packets released before the double fault stay counted.
        assert chain.total_released() > 0
        assert chain.packets_in > chain.total_released()


class TestControlPlaneImpairment:
    def test_lost_control_messages_do_not_hang_recovery(self):
        """Acceptance: with a 30% control-message drop rate, detection
        and recovery still complete (retry/backoff absorbs the loss)."""
        sim = Simulator()
        chain, orch, _ = _setup(sim, n=3, f=1, seed=11)
        TrafficGenerator(sim, chain.ingress, rate_pps=1e5,
                         flows=balanced_flows(8, 2))
        # Drops cover the crash, its detection, and the whole recovery.
        chain.net.impair(drop_rate=0.3, duration_s=0.08, seed=11)
        sim.schedule_callback(0.01, lambda: chain.fail_position(1))
        sim.run(until=0.3)

        recovered = [e for e in orch.history if e.recovered]
        assert recovered, "no recovery completed under 30% drops"
        assert not chain.degraded
        assert chain.net.control_drops > 0
        assert orch.control_retries > 0
        for position in range(chain.n_positions):
            assert not chain.server_at(position).failed

    def test_recovery_hook_phases_fire_in_order(self):
        sim = Simulator()
        chain, orch, _ = _setup(sim, n=3, f=1)
        phases = []
        orch.recovery_hooks.append(lambda phase, _pos: phases.append(phase))
        sim.schedule_callback(0.01, lambda: chain.fail_position(1))
        sim.run(until=0.1)
        assert phases == list(RECOVERY_PHASES)
        assert orch.history[0].recovered
