"""Tests for the multi-region cloud model and placement."""

import pytest

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.middlebox import ch_rec
from repro.net import Network
from repro.orchestration import (
    CloudNetwork,
    SAVI_REGIONS,
    place_chain,
    savi_rtt_matrix,
    validate_isolation,
)
from repro.sim import Simulator

COSTS = CostModel(cycle_jitter_frac=0.0)


class TestCloudNetwork:
    def test_rtt_matrix_symmetric_and_complete(self):
        matrix = savi_rtt_matrix()
        for a in SAVI_REGIONS:
            for b in SAVI_REGIONS:
                assert matrix[a][b] == matrix[b][a]
                assert matrix[a][b] > 0

    def test_intra_region_is_fast(self):
        matrix = savi_rtt_matrix()
        for region in SAVI_REGIONS:
            assert matrix[region][region] < 2e-3

    def test_control_rtt_uses_regions(self):
        sim = Simulator()
        net = CloudNetwork(sim, rtt_jitter_frac=0.0)
        net.add_server("a")
        net.add_server("b")
        net.place("a", "core")
        net.place("b", "remote")
        assert net.control_rtt("a", "b") == pytest.approx(49.5e-3)

    def test_control_rtt_jitter_reproducible(self):
        def sample(seed):
            sim = Simulator()
            net = CloudNetwork(sim, seed=seed)
            net.add_server("a")
            net.add_server("b")
            net.place("a", "core")
            net.place("b", "remote")
            return [net.control_rtt("a", "b") for _ in range(5)]

        assert sample(1) == sample(1)
        assert sample(1) != sample(2)

    def test_unplaced_server_defaults_to_first_region(self):
        sim = Simulator()
        net = CloudNetwork(sim)
        net.add_server("a")
        assert net.region_of("a") == SAVI_REGIONS[0]

    def test_unknown_region_rejected(self):
        sim = Simulator()
        net = CloudNetwork(sim)
        net.add_server("a")
        with pytest.raises(ValueError):
            net.place("a", "mars")

    def test_wan_bandwidth_slows_control_transfers(self):
        sim = Simulator()
        net = CloudNetwork(sim, wan_bandwidth_bps=1e9, rtt_jitter_frac=0.0)
        net.add_server("a")
        net.add_server("b")
        net.place("a", "core")
        net.place("b", "neighbor")
        results = []

        def call(sim):
            yield net.control_call("a", "b", lambda: "x",
                                   response_bytes=10_000_000)
            results.append(sim.now)

        sim.process(call(sim))
        sim.run()
        # 10 MB at 1 Gbps = 80 ms transfer, plus the 5 ms RTT.
        assert results[0] == pytest.approx(0.085, rel=0.05)


class TestPlacement:
    def _chain(self, sim, net):
        return FTCChain(sim, ch_rec(n_threads=2), f=1, costs=COSTS,
                        net=net, n_threads=2)

    def test_place_chain_assigns_regions(self):
        sim = Simulator()
        net = CloudNetwork(sim)
        chain = self._chain(sim, net)
        place_chain(chain, ["core", "remote", "neighbor"])
        assert net.region_of(chain.route[1]) == "remote"

    def test_respawned_server_inherits_region(self):
        sim = Simulator()
        net = CloudNetwork(sim)
        chain = self._chain(sim, net)
        place_chain(chain, ["core", "remote", "neighbor"])
        server = chain._new_server(1)
        assert server.region == "remote"

    def test_wrong_region_count_rejected(self):
        sim = Simulator()
        net = CloudNetwork(sim)
        chain = self._chain(sim, net)
        with pytest.raises(ValueError):
            place_chain(chain, ["core"])

    def test_requires_cloud_network(self):
        sim = Simulator()
        chain = FTCChain(sim, ch_rec(n_threads=2), f=1, costs=COSTS,
                         net=Network(sim), n_threads=2)
        with pytest.raises(TypeError):
            place_chain(chain, ["core", "remote", "neighbor"])

    def test_isolation_valid_for_fresh_chain(self):
        sim = Simulator()
        net = CloudNetwork(sim)
        chain = self._chain(sim, net)
        assert validate_isolation(chain) == []

    def test_isolation_detects_shared_server(self):
        sim = Simulator()
        net = CloudNetwork(sim)
        chain = self._chain(sim, net)
        chain.route[1] = chain.route[0]  # corrupt deliberately
        violations = validate_isolation(chain)
        assert violations
