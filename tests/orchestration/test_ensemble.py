"""Replicated control plane: ensemble failover, journal, fencing."""

import pytest

from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import ch_n
from repro.orchestration import (
    CloudNetwork,
    CommandJournal,
    ElectionConfig,
    JournalEntry,
    OrchestratorEnsemble,
    place_chain,
)
from repro.sim import Simulator
from repro.telemetry import Telemetry

COSTS = CostModel(cycle_jitter_frac=0.0)
CFG = ElectionConfig(lease_s=6e-3, renew_every_s=2e-3, candidacy_base_s=2e-3)


def _setup(seed=1, n=3):
    sim = Simulator()
    net = CloudNetwork(sim, hop_delay_s=COSTS.hop_delay_s,
                       bandwidth_bps=COSTS.bandwidth_bps, rtt_jitter_frac=0.0)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                     costs=COSTS, net=net, n_threads=2, seed=seed,
                     telemetry=Telemetry())
    place_chain(chain, ["core", "core", "core"])
    chain.start()
    ensemble = OrchestratorEnsemble(sim, chain, n=n, election=CFG,
                                    region="core")
    ensemble.start()
    return sim, chain, ensemble


class TestCommandJournal:
    def test_append_is_idempotent_by_key(self):
        journal = CommandJournal()
        entry = JournalEntry(epoch=1, seq=1, step="declare-failed",
                             positions=(1,), t=0.0)
        journal.append(entry)
        journal.append(entry)
        assert len(journal) == 1

    def test_open_positions_tracks_lifecycle(self):
        journal = CommandJournal()
        journal.append(JournalEntry(1, 1, "declare-failed", (1, 2), 0.0))
        journal.append(JournalEntry(1, 2, "re-steer", (1,), 1e-3))
        assert journal.open_positions() == {1, 2}
        journal.append(JournalEntry(1, 3, "committed", (1, 2), 2e-3))
        assert journal.open_positions() == set()

    def test_merge_unions_and_sorts(self):
        a, b = CommandJournal(), CommandJournal()
        a.append(JournalEntry(1, 1, "declare-failed", (0,), 0.0))
        b.append(JournalEntry(2, 1, "declare-failed", (2,), 1e-3))
        b.append(JournalEntry(1, 1, "declare-failed", (0,), 0.0))
        a.merge(b.entries())
        assert len(a) == 2
        assert a.max_epoch() == 2


class TestEnsembleBasics:
    def test_requires_at_least_two_members(self):
        sim = Simulator()
        net = CloudNetwork(sim, rtt_jitter_frac=0.0)
        egress = EgressRecorder(sim)
        chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                         costs=COSTS, net=net, n_threads=2)
        with pytest.raises(ValueError):
            OrchestratorEnsemble(sim, chain, n=1)

    def test_default_chain_has_no_gate(self):
        sim = Simulator()
        egress = EgressRecorder(sim)
        chain = FTCChain(sim, ch_n(2, n_threads=2), f=1, deliver=egress,
                         costs=COSTS, n_threads=2)
        assert chain.gate is None

    def test_ensemble_installs_gate_and_servers(self):
        sim, chain, ensemble = _setup()
        assert chain.gate is ensemble.gate
        for member in ensemble.members:
            assert member.server_name in chain.net.servers

    def test_recovers_chain_failure_through_journal(self):
        sim, chain, ensemble = _setup()
        sim.schedule_callback(0.02, lambda: chain.fail_position(1))
        sim.run(until=0.08)
        assert ensemble.leader is not None
        assert ensemble.history and ensemble.history[0].recovered
        assert not chain.server_at(1).failed
        # Every command went through the replicated journal first: the
        # full declare -> re-steer -> committed lifecycle is journaled
        # on a quorum, and the chain applied the one side-effecting step.
        steps = {entry.step for member in ensemble.members
                 for entry in member.journal.entries()}
        assert {"declare-failed", "re-steer", "committed"} <= steps
        assert [c.kind for c in ensemble.gate.applied] == ["re-steer"]


class TestFailover:
    def test_leader_crash_before_detection(self):
        sim, chain, ensemble = _setup(seed=2)

        def crash_leader():
            leader = ensemble.leader
            assert leader is not None
            leader.crash()

        sim.schedule_callback(0.02, lambda: chain.fail_position(1))
        sim.schedule_callback(0.021, crash_leader)
        sim.run(until=0.12)
        assert ensemble.leader is not None
        epochs = [epoch for epoch, _ in ensemble.election_log]
        assert len(epochs) == len(set(epochs))
        assert any(event.recovered for event in ensemble.history)
        assert not chain.server_at(1).failed

    def test_leader_death_mid_recovery_resumes_from_journal(self):
        sim, chain, ensemble = _setup(seed=4)
        state = {}

        def hook(phase, positions):
            if phase == "fetching" and "crashed" not in state:
                state["crashed"] = True
                leader = ensemble.leader
                if leader is not None:
                    leader.crash()

        ensemble.recovery_hooks.append(hook)
        sim.schedule_callback(0.02, lambda: chain.fail_position(1))
        sim.run(until=0.15)
        assert state.get("crashed"), "fetching hook never fired"
        assert any(event.recovered for event in ensemble.history)
        assert not chain.server_at(1).failed
        replayed = [event for event in ensemble.telemetry.timeline.events
                    if event.kind == "journal-replayed"]
        assert replayed, "successor did not replay the journal"

    def test_stale_leader_resume_is_fenced(self):
        sim, chain, ensemble = _setup(seed=3)

        def pause_leader():
            leader = ensemble.leader
            assert leader is not None
            leader.pause(0.03)  # longer than the lease: successor certain

        sim.schedule_callback(0.02, pause_leader)
        sim.schedule_callback(0.025, lambda: chain.fail_position(2))
        sim.run(until=0.12)
        assert ensemble.leader is not None
        assert ensemble.gate.fenced_commands > 0
        assert len(ensemble.leaders_with_valid_lease()) <= 1
        assert any(event.recovered for event in ensemble.history)

    def test_no_epoch_won_twice_across_churn(self):
        sim, chain, ensemble = _setup(seed=5)

        def churn(round_no):
            leader = ensemble.leader
            if leader is not None:
                leader.crash()
                sim.schedule_callback(12e-3, leader.restart)
            if round_no < 3:
                sim.schedule_callback(20e-3, lambda: churn(round_no + 1))

        sim.schedule_callback(0.015, lambda: churn(0))
        sim.run(until=0.12)
        epochs = [epoch for epoch, _ in ensemble.election_log]
        assert len(epochs) == len(set(epochs))
        assert len(ensemble.leaders_with_valid_lease()) <= 1
