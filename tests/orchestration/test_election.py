"""Lease-based leader election: safety and liveness (PROTOCOL.md §9)."""

from repro.orchestration import CloudNetwork, ElectionConfig, ElectionMember
from repro.sim import RandomStreams, Simulator

CFG = ElectionConfig(lease_s=6e-3, renew_every_s=2e-3, candidacy_base_s=2e-3)


def _members(sim, n=3, seed=0, config=CFG):
    net = CloudNetwork(sim, rtt_jitter_frac=0.0, seed=seed)
    streams = RandomStreams(seed)
    members = []
    for i in range(n):
        net.add_server(f"orch{i}", n_cores=1)
        members.append(ElectionMember(sim, net, i, f"orch{i}", config,
                                      rng=streams.stream(f"m{i}")))
    for member in members:
        member.set_peers(members)
    for member in members:
        member.start()
    return net, members


def _leaders(members):
    return [m for m in members if m.is_leader and not m.crashed
            and not m.paused]


def _valid_leases(members):
    return [m for m in members if m.lease_valid and not m.crashed]


class TestVoteHandlers:
    def test_grant_is_durable_and_single_per_epoch(self):
        sim = Simulator()
        _, members = _members(sim, n=3)
        voter = members[0]
        assert voter.handle_vote(5, candidate=1) == ("grant", 5)
        # Same epoch, different candidate: the durable grant refuses.
        assert voter.handle_vote(5, candidate=2)[0] == "reject"
        # Older epoch: refused even by a fresh candidate.
        assert voter.handle_vote(4, candidate=2)[0] == "reject"

    def test_live_lease_blocks_other_candidates(self):
        sim = Simulator()
        _, members = _members(sim, n=3)
        voter = members[0]
        voter.handle_vote(1, candidate=1)
        assert voter.handle_vote(2, candidate=2)[0] == "reject"
        # The original leader may advance its own epoch.
        assert voter.handle_vote(2, candidate=1)[0] == "grant"

    def test_renew_rejects_stale_epoch(self):
        sim = Simulator()
        _, members = _members(sim, n=3)
        voter = members[0]
        voter.handle_vote(3, candidate=1)
        assert voter.handle_renew(2, leader_id=0) == ("reject", 3)
        assert voter.handle_renew(3, leader_id=1) == ("ack", 3)


class TestElection:
    def test_exactly_one_leader_emerges(self):
        sim = Simulator()
        _, members = _members(sim)
        sim.run(until=0.03)
        assert len(_leaders(members)) == 1
        assert len(_valid_leases(members)) == 1
        assert _leaders(members)[0].epoch >= 1

    def test_at_most_one_valid_lease_at_all_times(self):
        sim = Simulator()
        _, members = _members(sim)
        samples = []

        def sample():
            samples.append(len(_valid_leases(members)))
            if sim.now < 0.058:
                sim.schedule_callback(0.5e-3, sample)

        sim.schedule_callback(0.5e-3, sample)
        crashed = {}

        def crash_leader():
            leaders = _leaders(members)
            if leaders:
                crashed["m"] = leaders[0]
                leaders[0].crash()
                sim.schedule_callback(10e-3, leaders[0].restart)

        sim.schedule_callback(0.02, crash_leader)
        sim.run(until=0.06)
        assert samples and max(samples) <= 1

    def test_leader_crash_elects_successor_with_higher_epoch(self):
        sim = Simulator()
        _, members = _members(sim)
        state = {}

        def crash_leader():
            leader = _leaders(members)[0]
            state["old"] = leader
            state["epoch"] = leader.epoch
            leader.crash()

        sim.schedule_callback(0.02, crash_leader)
        sim.run(until=0.06)
        successor = _leaders(members)[0]
        assert successor is not state["old"]
        assert successor.epoch > state["epoch"]

    def test_partitioned_leader_loses_lease(self):
        sim = Simulator()
        net, members = _members(sim)
        state = {}

        def cut_leader():
            leader = _leaders(members)[0]
            state["old"] = leader
            others = [m.server_name for m in members if m is not leader]
            state["token"] = net.partition([leader.server_name], others)

        sim.schedule_callback(0.02, cut_leader)
        sim.schedule_callback(0.05, lambda: net.heal(state["token"]))
        sim.run(until=0.08)
        leaders = _leaders(members)
        assert len(leaders) == 1
        assert leaders[0] is not state["old"] or leaders[0].epoch > 1
        assert len(_valid_leases(members)) <= 1

    def test_short_pause_resumes_leadership_same_epoch(self):
        sim = Simulator()
        _, members = _members(sim)
        state = {}

        def pause_leader():
            leader = _leaders(members)[0]
            state["old"] = leader
            state["epoch"] = leader.epoch
            leader.pause(1.5e-3)  # well inside the lease

        sim.schedule_callback(0.02, pause_leader)
        sim.run(until=0.05)
        leader = _leaders(members)[0]
        assert leader is state["old"]
        assert leader.epoch == state["epoch"]

    def test_long_pause_deposes_stale_leader(self):
        sim = Simulator()
        _, members = _members(sim)
        state = {}

        def pause_leader():
            leader = _leaders(members)[0]
            state["old"] = leader
            leader.pause(0.025)  # far past the lease

        sim.schedule_callback(0.02, pause_leader)
        sim.run(until=0.08)
        leaders = _leaders(members)
        assert len(leaders) == 1
        assert leaders[0] is not state["old"]
        assert not state["old"].is_leader
