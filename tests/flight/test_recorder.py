"""FlightRecorder properties: bounded ring, drop-oldest, determinism.

The recorder is the one observability surface allowed on hot paths, so
its contract is pinned by property tests: the ring never exceeds its
capacity, overflow sheds strictly the *oldest* events (refs stay
monotonic and the retained window is always a suffix), recording is a
pure function of the call sequence (same calls -> byte-identical
dumps), and the NULL singleton never observes anything.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.flight import (
    DUMP_VERSION,
    FLIGHT_COMPONENTS,
    FlightRecorder,
    NULL_FLIGHT,
)

# A random but replayable call sequence: (component idx, kind, pid-ish).
_calls = st.lists(
    st.tuples(st.integers(0, len(FLIGHT_COMPONENTS) - 1),
              st.sampled_from(["a", "b", "c"]),
              st.integers(0, 5)),
    max_size=200)


def _replay(recorder, calls):
    for i, (component, kind, pid) in enumerate(calls):
        recorder.record(FLIGHT_COMPONENTS[component], kind, t=i * 1e-6,
                        pid=pid, chain=f"pid:{pid}")


class TestRingBounds:
    @settings(max_examples=50)
    @given(calls=_calls, capacity=st.integers(1, 32))
    def test_ring_never_exceeds_capacity(self, calls, capacity):
        recorder = FlightRecorder(capacity=capacity)
        _replay(recorder, calls)
        assert len(recorder) <= capacity
        assert len(recorder) == min(len(calls), capacity)
        assert recorder.dropped == max(0, len(calls) - capacity)

    @settings(max_examples=50)
    @given(calls=_calls, capacity=st.integers(1, 32))
    def test_overflow_drops_oldest_first(self, calls, capacity):
        recorder = FlightRecorder(capacity=capacity)
        _replay(recorder, calls)
        refs = [event.ref for event in recorder.events]
        # Refs are assigned 0..n-1 in call order; a drop-oldest ring
        # must retain exactly the trailing window, in order.
        assert refs == list(range(max(0, len(calls) - capacity), len(calls)))

    def test_capacity_must_be_positive(self):
        try:
            FlightRecorder(capacity=0)
        except ValueError:
            pass
        else:
            raise AssertionError("capacity=0 accepted")


class TestDeterminism:
    @settings(max_examples=30)
    @given(calls=_calls)
    def test_same_calls_same_dump(self, calls):
        first = FlightRecorder(capacity=16)
        second = FlightRecorder(capacity=16)
        _replay(first, calls)
        _replay(second, calls)
        assert json.dumps(first.dump()) == json.dumps(second.dump())

    def test_chain_cursor_links_consecutive_events(self):
        recorder = FlightRecorder()
        a = recorder.record("orch", "suspected", t=0.0, chain="ctrl")
        b = recorder.record("recovery", "initializing", t=1e-3, chain="ctrl")
        lone = recorder.record("stm", "commit", t=1e-3, pid=7, chain="pid:7")
        c = recorder.record("recovery", "committed", t=2e-3, chain="ctrl")
        events = {event.ref: event for event in recorder.events}
        assert events[a].parent_ref is None
        assert events[b].parent_ref == a
        assert events[lone].parent_ref is None
        assert events[c].parent_ref == b

    def test_explicit_parent_beats_chain_cursor(self):
        recorder = FlightRecorder()
        a = recorder.record("orch", "suspected", t=0.0, chain="ctrl")
        recorder.record("election", "elected", t=1e-3, chain="ctrl")
        c = recorder.record("recovery", "initializing", t=2e-3,
                            chain="ctrl", parent=a)
        events = {event.ref: event for event in recorder.events}
        assert events[c].parent_ref == a
        # The chain cursor still advanced to c.
        assert recorder.chain_cursor("ctrl") == c


class TestTripAndDump:
    def test_trip_autodumps_once(self, tmp_path):
        path = tmp_path / "flight.json"
        recorder = FlightRecorder(autodump_path=str(path))
        recorder.set_context(seed=3)
        recorder.record("orch", "suspected", t=1e-3, chain="ctrl")
        assert recorder.trip("invariant:release-safety", t=1e-3) == str(path)
        first = path.read_text()
        recorder.record("orch", "confirmed", t=2e-3, chain="ctrl")
        # Later trips must not clobber the first (most contextual) dump.
        assert recorder.trip("invariant:release-safety", t=2e-3) is None
        assert path.read_text() == first
        dump = json.loads(first)
        assert dump["version"] == DUMP_VERSION
        assert dump["reason"] == "invariant:release-safety"
        assert dump["context"] == {"seed": 3}
        assert [e["kind"] for e in dump["events"]] == ["suspected", "trip"]

    def test_dump_omits_none_fields(self):
        recorder = FlightRecorder()
        recorder.record("stm", "commit", t=0.0, pid=1,
                        depvec={3: 4}, chain="pid:1")
        (event,) = recorder.as_dicts()
        assert event["depvec"] == {"3": 4}
        assert "epoch" not in event and "parent_ref" not in event


class TestNullRecorder:
    def test_null_is_inert(self):
        assert not NULL_FLIGHT.enabled
        assert NULL_FLIGHT.record("stm", "commit", t=0.0) == -1
        assert len(NULL_FLIGHT) == 0
        assert NULL_FLIGHT.trip("anything") is None
        assert NULL_FLIGHT.as_dicts() == []
        assert NULL_FLIGHT.dump()["events"] == []

    def test_null_refuses_to_dump_files(self, tmp_path):
        try:
            NULL_FLIGHT.dump_json(str(tmp_path / "x.json"))
        except RuntimeError:
            pass
        else:
            raise AssertionError("null recorder wrote a dump")
