"""SLO watchdog: spec grammar, windowed evaluation, breach plumbing."""

import pytest

from repro.flight import (
    FlightRecorder,
    SLOObjective,
    SLOWatchdog,
    parse_slo_spec,
    run_probes,
)
from repro.sim import Simulator
from repro.telemetry import Telemetry


class TestSpecGrammar:
    def test_parse_round_trips(self):
        objectives = parse_slo_spec(
            "p99_latency_us<=250, goodput_pps>=5e5,retransmit_rate<=0.01")
        assert [str(o) for o in objectives] == [
            "p99_latency_us<=250", "goodput_pps>=500000",
            "retransmit_rate<=0.01"]

    @pytest.mark.parametrize("bad", ["", "latency", "x<=abc", "<=5",
                                     "a==3"])
    def test_rejects_malformed_specs(self, bad):
        with pytest.raises(ValueError):
            parse_slo_spec(bad)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError, match="operator"):
            SLOObjective("x", "<", 1.0)

    def test_met_by(self):
        assert SLOObjective("lat", "<=", 100.0).met_by(100.0)
        assert not SLOObjective("lat", "<=", 100.0).met_by(100.1)
        assert SLOObjective("tput", ">=", 10.0).met_by(10.0)
        assert not SLOObjective("tput", ">=", 10.0).met_by(9.9)


class TestWatchdog:
    def _watchdog(self, values, telemetry=None):
        """A watchdog over a scripted probe: pops one value per tick."""
        sim = Simulator()
        feed = list(values)
        probes = {"lat": lambda: feed.pop(0) if feed else None}
        watchdog = SLOWatchdog(
            sim, [SLOObjective("lat", "<=", 100.0)], probes,
            telemetry=telemetry, interval_s=1e-3)
        return sim, watchdog

    def test_breaches_are_recorded_with_worst_value(self):
        sim, watchdog = self._watchdog([50.0, 150.0, 120.0, 80.0])
        watchdog.start()
        sim.run(until=10e-3)
        assert len(watchdog.breaches) == 2
        assert watchdog.worst["lat"] == 150.0
        assert watchdog.last["lat"] == 80.0
        assert not watchdog.ok
        first = watchdog.breaches[0]
        assert first.observed == 150.0
        assert "SLO breach" in str(first)

    def test_none_probe_values_are_skipped(self):
        sim, watchdog = self._watchdog([])
        watchdog.start()
        sim.run(until=5e-3)
        assert watchdog.evaluations >= 4
        assert watchdog.breaches == []
        assert watchdog.ok

    def test_breach_lands_in_flight_and_metrics(self):
        flight = FlightRecorder()
        telemetry = Telemetry(flight=flight)
        sim, watchdog = self._watchdog([500.0], telemetry=telemetry)
        watchdog.start()
        sim.run(until=2e-3)
        kinds = [(e.component, e.kind) for e in flight.events]
        assert ("slo", "breach") in kinds
        rows = {name: value for name, _, value, *_ in
                telemetry.registry.rows()}
        assert rows["slo/breaches"] == 1

    def test_unknown_indicator_rejected_up_front(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="no probe"):
            SLOWatchdog(sim, [SLOObjective("nope", "<=", 1.0)], {})

    def test_stop_halts_ticks(self):
        sim, watchdog = self._watchdog([50.0] * 100)
        watchdog.start()
        sim.run(until=3e-3)
        seen = watchdog.evaluations
        watchdog.stop()
        sim.run(until=10e-3)
        assert watchdog.evaluations == seen


class TestRunProbes:
    def test_goodput_is_windowed_by_differencing(self):
        class FakeSim:
            now = 0.0

        class FakeThroughput:
            count = 0

        class FakeLatency:
            def __len__(self):
                return 0

        class FakeEgress:
            sim = FakeSim()
            throughput = FakeThroughput()
            latency = FakeLatency()

        egress = FakeEgress()
        probes = run_probes(egress)
        assert probes["goodput_pps"]() is None  # no window yet
        egress.sim.now = 1e-3
        egress.throughput.count = 10
        assert probes["goodput_pps"]() == pytest.approx(10 / 1e-3)
        egress.sim.now = 2e-3
        egress.throughput.count = 15
        assert probes["goodput_pps"]() == pytest.approx(5 / 1e-3)
        assert probes["p99_latency_us"]() is None

    def test_detection_and_retransmit_probes_gate_on_sources(self):
        class FakeEgress:
            pass

        probes = run_probes(FakeEgress())
        assert set(probes) == {"p99_latency_us", "goodput_pps"}

        class FakeChain:
            def channel_stats(self):
                return {"retransmissions": 3, "sent": 100}

        class FakeOrch:
            history = []

        probes = run_probes(FakeEgress(), chain=FakeChain(),
                            orchestrator=FakeOrch())
        assert {"detection_s", "recovery_s", "retransmit_rate"} <= set(probes)
        assert probes["detection_s"]() is None
        assert probes["retransmit_rate"]() == pytest.approx(0.03)
