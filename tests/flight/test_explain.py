"""Golden tests for the post-mortem explain engine (PROTOCOL.md §10).

One fixed-seed crash-during-recovery run under a replicated control
plane is the acceptance scenario: the flight dump must let
``explain --recovery`` reconstruct the full causal chain -- suspicion,
corroboration, the election that installed the leader, its journal
write-aheads, the state fetches, and the fenced re-steer -- and every
phase-boundary event must match the RecoveryTimeline bit-for-bit.
"""

import itertools
import json

import pytest

from repro.chaos import FaultInjector, FaultPlan, ShadowOracle
from repro.chaos.soak import CTRLPLANE_ELECTION, SOAK_COSTS
from repro.core import FTCChain
from repro.flight import (
    FlightRecorder,
    crosscheck_recovery,
    explain_epoch,
    explain_packet,
    explain_recovery,
    load_dump,
    walk_back,
)
from repro.middlebox import ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.orchestration import OrchestratorEnsemble
from repro.sim import Simulator
from repro.telemetry import Telemetry


def _crash_during_recovery_dump(seed=11, capacity=65536):
    """A fixed-seed run: p1 crashes, and while its recovery is in the
    fetching phase p3 crashes too (the §5.2 worst case).  Ch-5 with
    f=1 keeps the two failures in disjoint replication groups, so both
    recoveries must commit."""
    # Packet ids come from a process-global counter; pin it so two
    # harness runs in one process produce byte-identical dumps (across
    # processes the seed alone suffices).
    from repro.net import packet as packet_module
    packet_module._packet_ids = itertools.count(1)
    sim = Simulator()
    oracle = ShadowOracle()
    flight = FlightRecorder(capacity=capacity)
    flight.set_context(seed=seed, chain_length=5, f=1)
    telemetry = Telemetry(flight=flight)
    chain = FTCChain(sim, ch_n(5, n_threads=2), f=1, deliver=oracle,
                     costs=SOAK_COSTS, n_threads=2, seed=seed,
                     telemetry=telemetry)
    chain.start()
    ensemble = OrchestratorEnsemble(sim, chain, n=3,
                                    election=CTRLPLANE_ELECTION,
                                    heartbeat_interval_s=1e-3,
                                    corroborate_suspects=True)
    ensemble.start()
    plan = (FaultPlan()
            .crash(position=1, at_s=15e-3)
            .crash_during_recovery(position=3, phase="fetching"))
    injector = FaultInjector(chain, ensemble, plan, seed=seed,
                             ensemble=ensemble)
    injector.start()
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=2e4,
                                 flows=balanced_flows(8, 2))
    sim.run(until=60e-3)
    generator.stop()
    sim.run(until=0.12)
    ensemble.stop()
    assert len(injector.injected) == 2, injector.injected
    assert any(event.recovered for event in ensemble.history)
    return flight.dump(reason="demand", telemetry=telemetry)


@pytest.fixture(scope="module")
def dump():
    return _crash_during_recovery_dump()


class TestExplainRecovery:
    def test_reconstructs_full_causal_chain(self, dump):
        text = explain_recovery(dump, 1)
        assert "recovery of p1: committed" in text
        # The §10 acceptance chain: suspect -> corroborate ->
        # elect/journal -> fetch -> re-steer -> committed, in order.
        order = ["orch/suspected", "orch/corroborated", "orch/confirmed",
                 "recovery/initializing", "journal/spawn",
                 "recovery/fetching", "recovery/fetched",
                 "recovery/rerouting", "journal/re-steer",
                 "fencing/applied", "recovery/committed"]
        positions = [text.index(marker) for marker in order]
        assert positions == sorted(positions), text
        # The chain is rooted in the leadership that ran it.
        assert "election/elected" in text or "journal/declare-failed" in text

    def test_phase_boundaries_match_timeline_exactly(self, dump):
        text = explain_recovery(dump, 1)
        assert "timeline cross-check: OK" in text, text
        assert "MISMATCH" not in text
        # And the second, crash-during-recovery position too.
        text2 = explain_recovery(dump, 3)
        assert "timeline cross-check: OK" in text2, text2

    def test_crosscheck_rejects_doctored_timestamps(self, dump):
        doctored = json.loads(json.dumps(dump))
        for event in doctored["events"]:
            if event["kind"] == "committed" and event["component"] == "recovery":
                event["t"] += 1e-9
        chain = [e for e in doctored["events"]
                 if e["component"] == "recovery"]
        problems = crosscheck_recovery(doctored, chain)
        assert problems, "1ns skew must break the exact-match cross-check"
        assert "MISMATCH" in explain_recovery(doctored, 1)

    def test_unknown_position_reports_cleanly(self, dump):
        assert "no committed or abandoned recovery" in \
            explain_recovery(dump, 99)


class TestExplainPacketAndEpoch:
    def test_packet_journey_is_linear_and_complete(self, dump):
        pids = sorted({e["pid"] for e in dump["events"]
                       if e.get("pid") is not None
                       and e["component"] == "buffer"
                       and e["kind"] == "release"})
        assert pids, "no released packets in the dump"
        text = explain_packet(dump, pids[0])
        assert "stm/commit" in text
        assert "piggyback/append" in text
        assert "buffer/release" in text

    def test_epoch_story_names_its_election(self, dump):
        epochs = sorted({e["epoch"] for e in dump["events"]
                         if e.get("epoch") is not None})
        assert epochs
        text = explain_epoch(dump, epochs[0])
        assert "won at" in text
        assert "election/campaign" in text

    def test_unknown_epoch_reports_cleanly(self, dump):
        assert "no flight events" in explain_epoch(dump, 999)


class TestDumpProperties:
    def test_same_seed_dumps_are_byte_identical(self, dump):
        again = _crash_during_recovery_dump()
        assert json.dumps(dump, sort_keys=True) == \
            json.dumps(again, sort_keys=True)
        assert explain_recovery(dump, 1) == explain_recovery(again, 1)

    def test_truncated_ring_reports_shed_history(self):
        small = _crash_during_recovery_dump(capacity=64)
        assert small["dropped"] > 0
        text = explain_recovery(small, 1)
        # Either the full chain survived in the tail window or the walk
        # must say exactly where it was cut -- never silently shortened.
        assert ("causal chain truncated" in text
                or "no committed or abandoned recovery" in text
                or "timeline cross-check" in text)

    def test_walk_back_terminates_on_cycles(self, dump):
        refs = [e["ref"] for e in dump["events"]]
        chain, truncated = walk_back(dump, refs[-1])
        assert len(chain) <= len(refs)

    def test_load_dump_rejects_non_dumps(self, tmp_path):
        bogus = tmp_path / "not-a-dump.json"
        bogus.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a flight dump"):
            load_dump(str(bogus))
