"""Tests for the NF, FTMB(+Snapshot), and remote-store baselines."""

import pytest

from repro.baselines import FTMBChain, NFChain, RemoteStoreChain
from repro.core.costs import CostModel
from repro.metrics import EgressRecorder
from repro.middlebox import Firewall, Monitor, ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.sim import Simulator

COSTS = CostModel(cycle_jitter_frac=0.0)


def run_chain(cls, middleboxes, count=300, rate=1e6, run_for=0.05,
              n_threads=2, **kwargs):
    sim = Simulator()
    egress = EgressRecorder(sim, keep_packets=True)
    chain = cls(sim, middleboxes, deliver=egress, costs=COSTS,
                n_threads=n_threads, **kwargs)
    chain.start()
    TrafficGenerator(sim, chain.ingress, rate_pps=rate,
                     flows=balanced_flows(8, n_threads), count=count)
    sim.run(until=run_for)
    return sim, chain, egress


def saturate(cls, middleboxes, n_threads=8, rate=12e6, **kwargs):
    sim = Simulator()
    egress = EgressRecorder(sim)
    chain = cls(sim, middleboxes, deliver=egress, costs=COSTS,
                n_threads=n_threads, **kwargs)
    chain.start()
    TrafficGenerator(sim, chain.ingress, rate_pps=rate,
                     flows=balanced_flows(64, n_threads))
    sim.run(until=0.001)
    egress.throughput.start_window()
    sim.run(until=0.0025)
    return egress.throughput.rate_mpps()


class TestNFChain:
    def test_delivers_all_packets(self):
        _, chain, egress = run_chain(NFChain, ch_n(3, n_threads=2))
        assert chain.total_released() == 300
        assert egress.count == 300

    def test_state_updated_but_not_replicated(self):
        _, chain, _ = run_chain(NFChain, ch_n(2, n_threads=2))
        monitor = chain.middleboxes[0]
        assert monitor.total_count(chain.store_of(0)) == 300
        # No replication machinery at all.
        assert chain.runtimes[0].state.retained == []

    def test_latency_is_bare_traversal(self):
        _, chain, egress = run_chain(NFChain, ch_n(3, n_threads=2))
        # 2 inter-server hops at 6.5 us plus processing; no commit wait.
        assert egress.latency.mean_us() < 20

    def test_empty_chain_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            NFChain(sim, [])


class TestFTMBChain:
    def test_delivers_all_packets(self):
        _, chain, egress = run_chain(FTMBChain, ch_n(2, n_threads=2))
        assert chain.total_released() == 300

    def test_one_pal_per_stateful_packet(self):
        _, chain, _ = run_chain(FTMBChain, ch_n(2, n_threads=2))
        # Monitor touches state on every packet at both middleboxes.
        assert chain.pals_sent == 600

    def test_stateless_middlebox_no_pals(self):
        _, chain, _ = run_chain(FTMBChain, [Firewall(name="fw")])
        assert chain.pals_sent == 0
        assert chain.total_released() == 300

    def test_pal_ceiling_emerges_at_half_nic_rate(self):
        """§7.3: one PAL message per packet caps FTMB at ~NIC/2."""
        mpps = saturate(FTMBChain, [Monitor(name="m", sharing_level=1,
                                            n_threads=8)])
        assert mpps == pytest.approx(COSTS.nic_pps / 2 / 1e6, rel=0.03)

    def test_latency_above_nf(self):
        _, _, nf_egress = run_chain(NFChain, ch_n(2, n_threads=2))
        _, _, ftmb_egress = run_chain(FTMBChain, ch_n(2, n_threads=2))
        assert ftmb_egress.latency.mean_us() > nf_egress.latency.mean_us()

    def test_snapshots_stall_traffic(self):
        """§7.4: FTMB+Snapshot periodically pauses each master."""
        sim = Simulator()
        egress = EgressRecorder(sim)
        costs = COSTS.with_overrides(snapshot_period_s=5e-3,
                                     snapshot_stall_s=1e-3)
        chain = FTMBChain(sim, ch_n(2, n_threads=2), deliver=egress,
                          costs=costs, n_threads=2, snapshots=True)
        chain.start()
        TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                         flows=balanced_flows(8, 2))
        sim.run(until=0.05)
        # Latency spikes: max latency >= the stall length.
        assert egress.latency.percentile_us(99.9) >= 500
        # Without snapshots, no such spikes.
        sim2 = Simulator()
        egress2 = EgressRecorder(sim2)
        chain2 = FTMBChain(sim2, ch_n(2, n_threads=2), deliver=egress2,
                           costs=costs, n_threads=2, snapshots=False)
        chain2.start()
        TrafficGenerator(sim2, chain2.ingress, rate_pps=1e6,
                         flows=balanced_flows(8, 2))
        sim2.run(until=0.05)
        assert egress2.latency.percentile_us(99.9) < 500

    def test_snapshot_throughput_drop_grows_with_chain_length(self):
        """§7.4's headline: ~40% drop from 1 to 5 middleboxes."""
        costs = COSTS.with_overrides(snapshot_period_s=2e-3,
                                     snapshot_stall_s=0.3e-3,
                                     nic_queue_depth=256)

        def tput(n):
            sim = Simulator()
            egress = EgressRecorder(sim)
            chain = FTMBChain(sim, ch_n(n, n_threads=2), deliver=egress,
                              costs=costs, n_threads=2, snapshots=True,
                              seed=3)
            chain.start()
            # Saturating load: stalls subtract service time directly.
            TrafficGenerator(sim, chain.ingress, rate_pps=8e6,
                             flows=balanced_flows(16, 2))
            sim.run(until=0.004)
            egress.throughput.start_window()
            sim.run(until=0.014)
            return egress.throughput.rate_mpps()

        assert tput(4) < 0.9 * tput(1)


class TestRemoteStoreChain:
    def test_delivers_all_packets(self):
        _, chain, egress = run_chain(RemoteStoreChain, ch_n(2, n_threads=2),
                                     rate=2e4, count=100, run_for=0.1)
        assert chain.total_released() == 100

    def test_round_trip_per_state_access(self):
        _, chain, _ = run_chain(RemoteStoreChain, ch_n(1, n_threads=2),
                                rate=2e4, count=100, run_for=0.1)
        # Monitor: one read + one write key per packet = 2 ops.
        assert chain.store_round_trips == 200

    def test_far_slower_than_nf(self):
        """§2.2: external state stores cost a round trip per access."""
        _, _, nf = run_chain(NFChain, ch_n(1, n_threads=2),
                             rate=2e4, count=100, run_for=0.1)
        _, _, rs = run_chain(RemoteStoreChain, ch_n(1, n_threads=2),
                             rate=2e4, count=100, run_for=0.1)
        assert rs.latency.mean_us() > 2 * nf.latency.mean_us()
