"""Smoke tests: the example scripts run end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")


def test_quickstart_runs(capsys):
    _run("quickstart.py")
    out = capsys.readouterr().out
    assert "recovered in" in out
    assert ">= released: True" in out


def test_custom_middlebox_runs(capsys):
    _run("custom_middlebox.py")
    out = capsys.readouterr().out
    assert "scanner flagged = True" in out


def test_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    for script in scripts:
        text = (EXAMPLES / script).read_text()
        assert text.lstrip().startswith('"""'), f"{script} lacks a docstring"
        assert "Run:" in text, f"{script} lacks run instructions"
