"""Structured context on invariant violations (satellite of §10).

A violation message must be self-describing: seed, schedule, virtual
time, and chain configuration ride along so a bare line in a CI log is
enough to reproduce the failing run -- and when a flight recorder is
on, the violation trips it and the auto-dump lands on disk.
"""

import json

from repro.chaos import InvariantAuditor, InvariantViolation
from repro.chaos.soak import SOAK_COSTS
from repro.core import FTCChain
from repro.flight import FlightRecorder
from repro.middlebox import ch_n
from repro.sim import Simulator
from repro.telemetry import Telemetry


def _chain(telemetry=None):
    sim = Simulator()
    chain = FTCChain(sim, ch_n(2, n_threads=2), f=1,
                     deliver=lambda packet: None, costs=SOAK_COSTS,
                     n_threads=2, seed=0, telemetry=telemetry)
    chain.start()
    return sim, chain


class TestViolationContext:
    def test_str_carries_structured_context(self):
        violation = InvariantViolation(
            invariant="release-safety", detail="2 duplicate releases",
            at_s=1.5e-3, context={"seed": 70001, "schedule": 3,
                                  "chain_length": 4, "f": 2})
        text = str(violation)
        assert "release-safety: 2 duplicate releases" in text
        assert "seed=70001" in text
        assert "schedule=3" in text
        assert "chain_length=4" in text
        assert "f=2" in text
        assert violation.as_dict()["context"]["seed"] == 70001

    def test_context_free_violation_renders_bare(self):
        violation = InvariantViolation(
            invariant="egress-loss", detail="released 9 != sent 10",
            at_s=2e-3)
        assert str(violation) == "[2.000ms] egress-loss: released 9 != sent 10"

    def test_flag_enriches_with_chain_config(self):
        sim, chain = _chain()
        auditor = InvariantAuditor(chain, context={"seed": 42})
        auditor._flag("log-propagation", "synthetic")
        (violation,) = auditor.violations
        assert violation.context["seed"] == 42
        assert violation.context["chain_length"] == 2
        assert violation.context["f"] == 1
        assert violation.at_s == sim.now

    def test_flag_trips_the_flight_recorder(self, tmp_path):
        path = tmp_path / "flight.json"
        flight = FlightRecorder(autodump_path=str(path))
        telemetry = Telemetry(flight=flight)
        sim, chain = _chain(telemetry=telemetry)
        auditor = InvariantAuditor(chain, context={"seed": 42})
        auditor._flag("release-safety", "synthetic")
        assert flight.trips == ["invariant:release-safety"]
        dump = json.loads(path.read_text())
        assert dump["reason"] == "invariant:release-safety"
        kinds = [(e["component"], e["kind"]) for e in dump["events"]]
        assert ("chaos", "violation") in kinds
        violation_event = next(e for e in dump["events"]
                               if e["kind"] == "violation")
        assert "seed=42" in violation_event["detail"]

    def test_flag_without_flight_stays_silent(self):
        sim, chain = _chain()
        auditor = InvariantAuditor(chain)
        auditor._flag("log-propagation", "synthetic")
        assert len(auditor.violations) == 1  # and no crash on NULL_FLIGHT
