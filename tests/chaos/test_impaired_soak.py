"""Data-plane adversity soak + determinism regression (PROTOCOL.md §8).

The acceptance contract for the reliability layer: at the headline
impairment point (drop=0.05, dup=0.02, reorder=0.02, corrupt=0.01,
f=1) a soak schedule must finish with zero invariant violations, zero
egress loss, per-flow-ordered exactly-once egress, and no spurious
failover -- and the whole run must be a pure function of its seed.
"""

import pytest

from repro.chaos import (
    FaultPlan,
    FaultSpec,
    IMPAIRED_DELIVERY,
    SoakConfig,
    run_impaired_schedule,
    run_soak,
)

RATES = dict(drop_rate=0.05, dup_rate=0.02, reorder_rate=0.02,
             corrupt_rate=0.01)


class TestFaultSpecValidation:
    def test_impair_data_kind_accepted(self):
        spec = FaultSpec(kind=IMPAIRED_DELIVERY, at_s=1e-3, **RATES)
        assert "impair data" in spec.describe()
        assert "reorder=0.02" in spec.describe()

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="reorder_rate"):
            FaultSpec(kind=IMPAIRED_DELIVERY, reorder_rate=1.5)
        with pytest.raises(ValueError, match="corrupt_rate"):
            FaultSpec(kind=IMPAIRED_DELIVERY, corrupt_rate=-0.1)

    def test_plan_builder(self):
        plan = FaultPlan().impair_data(at_s=2e-3, duration_s=5e-3, **RATES)
        assert plan.faults[0].kind == IMPAIRED_DELIVERY
        assert plan.faults[0].duration_s == 5e-3


@pytest.mark.soak_impaired
class TestImpairedSoak:
    def test_acceptance_rates_zero_violations(self):
        """Headline point: lossy links, exactly-once egress, no failover."""
        result = run_impaired_schedule(seed=3, chain_length=2, f=1,
                                       duration_s=30e-3, **RATES)
        assert result.violations == []
        assert result.sent > 0
        assert result.released == result.sent  # zero egress loss
        assert result.retransmissions > 0  # the layer actually worked
        assert result.failures_detected == 0  # no spurious failover
        assert not result.degraded

    def test_longer_chain_higher_f(self):
        result = run_impaired_schedule(seed=11, chain_length=3, f=2,
                                       duration_s=30e-3, **RATES)
        assert result.violations == []
        assert result.released == result.sent

    def test_determinism_same_seed_same_run(self):
        """Same seed + spec => bit-identical egress order and counters.

        Packet ids come from a process-global counter, so the two runs'
        pids differ by a constant offset; the *relative* sequence must
        match exactly.
        """
        first = run_impaired_schedule(seed=5, chain_length=2, f=1,
                                      duration_s=20e-3, **RATES)
        second = run_impaired_schedule(seed=5, chain_length=2, f=1,
                                       duration_s=20e-3, **RATES)
        assert first.egress_pids and second.egress_pids
        base_a, base_b = first.egress_pids[0], second.egress_pids[0]
        assert ([p - base_a for p in first.egress_pids] ==
                [p - base_b for p in second.egress_pids])
        assert first.retransmissions == second.retransmissions
        assert first.sent == second.sent
        assert first.faults == second.faults

    def test_soak_config_routes_to_impaired_schedules(self):
        config = SoakConfig(seed=1, schedules=2, chain_lengths=(2,),
                            f_values=(1,), duration_s=15e-3,
                            impair_data=(0.05, 0.02, 0.02, 0.01))
        result = run_soak(config)
        assert result.ok, result.summary()
        assert all(s.retransmissions > 0 for s in result.schedules)
        assert all(s.released == s.sent for s in result.schedules)
