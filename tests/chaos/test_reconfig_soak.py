"""Reconfiguration soak: scripted live operations under impairment.

The ``run_reconfig_schedule`` driver fires a classifier swap, a
rescale, a migration, an insert, and a remove against a chain under
offered load with a mid-run data-impairment window, then audits the
invariants (zero loss / zero reorder in the crash-free modes, auditor
and oracle cleanliness in all modes).  Marked ``soak_reconfig`` so CI
can run the long modes on their own schedule.
"""

import pytest

from repro.chaos import run_reconfig_schedule

pytestmark = pytest.mark.soak_reconfig


def _assert_clean(result):
    assert result.violations == [], "\n".join(
        f"{v.invariant}: {v.detail}" for v in result.violations)


@pytest.mark.parametrize("seed", [1, 2, 7])
def test_clean_schedule_zero_loss(seed):
    result = run_reconfig_schedule(seed=seed)
    _assert_clean(result)
    assert result.reconfigs_committed == 5
    assert result.reconfigs_aborted == 0
    assert result.released == result.sent  # zero loss, crash-free


def test_crash_during_reconfig_invariants_hold():
    # Crashes lose in-flight packets by design; the audit is
    # invariants-only (no duplicates, no reorders, ops terminal).
    result = run_reconfig_schedule(seed=1, crashes=True)
    _assert_clean(result)
    assert result.reconfigs_committed + result.reconfigs_aborted == 5


def test_leader_failover_mid_switch():
    # A replicated control plane with elections forced mid-schedule:
    # the successor must resume or formally abort every open op.
    result = run_reconfig_schedule(seed=7, orchestrators=3)
    _assert_clean(result)
    assert result.elections >= 1
    assert result.reconfigs_committed + result.reconfigs_aborted == 5
    assert result.released == result.sent


def test_determinism_same_seed_same_run():
    a = run_reconfig_schedule(seed=5)
    b = run_reconfig_schedule(seed=5)
    _assert_clean(a)
    _assert_clean(b)
    # Packet ids come from a process-global counter, so same-seed runs
    # are compared on relative id sequences (see test_impaired_soak).
    rel_a = [p - a.egress_pids[0] for p in a.egress_pids]
    rel_b = [p - b.egress_pids[0] for p in b.egress_pids]
    assert rel_a == rel_b
    assert a.sent == b.sent
    assert a.released == b.released
    assert (a.reconfigs_committed, a.reconfigs_aborted) == \
        (b.reconfigs_committed, b.reconfigs_aborted)
