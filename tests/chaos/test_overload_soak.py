"""Flash-crowd overload soak + determinism regression (PROTOCOL.md §12).

The acceptance contract for the overload layer: a seeded flash crowd
at ~4.8x sustainable capacity -- optionally with a concurrent
middlebox crash and a replicated control plane journaling brownout --
must finish with zero invariant violations: no in-chain drops, every
shed accounted at the ingress gate, queues within bounds, goodput at
or above the floor, brownout entered *and* exited as journaled.  And
the whole run must be a pure function of its seed.
"""

import pytest

from repro.chaos import (
    OVERLOAD_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    OverloadSpec,
    SoakConfig,
    run_overload_schedule,
    run_soak,
)


class TestOverloadSpec:
    def test_defaults_exceed_four_x(self):
        spec = OverloadSpec()
        assert spec.peak_factor >= 4.0
        assert spec.budget_frac > 1.0   # flash genuinely overloads

    def test_parse_round_trip(self):
        spec = OverloadSpec.parse(
            "sustain=1e4, base=0.5, budget=1.5, over=10, start=0.2, "
            "dur=0.3, floor=0.3, p99=500, crash=1, orch=3")
        assert spec.sustainable_pps == 1e4
        assert spec.peak_factor == pytest.approx(5.0)
        assert spec.crash and spec.orchestrators == 3
        assert "peak=5x" in spec.describe()
        assert "crash=mid-flash" in spec.describe()

    @pytest.mark.parametrize("text,match", [
        ("base", "key=value"),
        ("warp=9", "unknown overload key"),
        ("over=loud", "bad value"),
        ("base=2.0", "base_frac"),
        ("start=0.9,dur=0.5", "flash window"),
    ])
    def test_parse_errors(self, text, match):
        with pytest.raises(ValueError, match=match):
            OverloadSpec.parse(text)

    def test_overload_fault_kinds_registered(self):
        assert {"flash-crowd", "slow-middlebox", "queue-pressure"} <= set(
            OVERLOAD_FAULT_KINDS)
        spec = FaultSpec(kind="flash-crowd", at_s=1e-3, duration_s=2e-3,
                         factor=6.0)
        assert "x6" in spec.describe()
        with pytest.raises(ValueError, match="duration_s"):
            FaultSpec(kind="slow-middlebox", at_s=1e-3)
        with pytest.raises(ValueError, match="factor"):
            FaultSpec(kind="queue-pressure", at_s=1e-3, duration_s=2e-3,
                      factor=0.5)
        plan = FaultPlan().queue_pressure(at_s=1e-3, duration_s=2e-3)
        assert plan.faults[0].kind == "queue-pressure"


@pytest.mark.soak_overload
class TestOverloadSoak:
    def test_flash_crowd_zero_violations(self):
        """Headline point: 4.8x flash crowd, zero in-chain drops,
        brownout engages and exits, goodput above floor."""
        result = run_overload_schedule(seed=42)
        assert result.violations == []
        assert result.shed > 0                    # it genuinely overloaded
        assert result.brownout_transitions >= 2   # entered and exited
        assert result.offered == result.admitted + result.shed
        assert result.released == result.admitted
        assert result.goodput_pps > 0

    def test_flash_crowd_with_crash(self):
        """Overload + middlebox crash mid-flash: failover under
        pressure still loses nothing inside the chain."""
        spec = OverloadSpec(crash=True)
        result = run_overload_schedule(seed=7, spec=spec)
        assert result.violations == []
        assert result.failures_detected >= 1
        assert result.recoveries >= 1

    def test_replicated_control_plane_journals_brownout(self):
        spec = OverloadSpec(orchestrators=3)
        result = run_overload_schedule(seed=11, spec=spec)
        assert result.violations == []
        assert result.brownout_transitions >= 2

    def test_same_seed_bit_identical(self):
        """Determinism regression: one seed, two runs, same ledger."""
        a = run_overload_schedule(seed=5)
        b = run_overload_schedule(seed=5)
        assert (a.offered, a.admitted, a.shed, a.released,
                a.brownout_transitions, a.goodput_pps) == \
               (b.offered, b.admitted, b.shed, b.released,
                b.brownout_transitions, b.goodput_pps)

    def test_run_soak_dispatches_overload(self):
        config = SoakConfig(seed=9, schedules=1, duration_s=120e-3,
                            chain_lengths=(3,), f_values=(1,),
                            overload=OverloadSpec())
        soak = run_soak(config)
        assert soak.ok, soak.summary()
        assert soak.schedules[0].shed > 0
        assert "overload" in soak.summary()
