"""Chaos subsystem tests: plans, the monkey, the auditor, short soaks."""

import pytest

from repro.chaos import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InvariantAuditor,
    ShadowOracle,
    SoakConfig,
    run_schedule,
    run_soak,
)
from repro.core import FTCChain
from repro.core.costs import CostModel
from repro.middlebox import ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.sim import Simulator

COSTS = CostModel(cycle_jitter_frac=0.0)


def build_chain(sim, n=3, f=1, seed=0, oracle=None):
    deliver = oracle if oracle is not None else (lambda p: None)
    chain = FTCChain(sim, ch_n(n, n_threads=2), f=f, deliver=deliver,
                     costs=COSTS, n_threads=2, seed=seed)
    chain.start()
    return chain


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(kind="meteor-strike")
        with pytest.raises(ValueError):
            FaultSpec(kind="crash")  # needs a position
        with pytest.raises(ValueError):
            FaultSpec(kind="crash-during-recovery", position=1)  # needs phase

    def test_builder_and_describe(self):
        plan = (FaultPlan().crash(1, at_s=2e-3)
                .impair_control(at_s=1e-3, drop_rate=0.5, duration_s=1e-3)
                .crash_during_recovery(2, "fetching"))
        assert len(plan.faults) == 3
        lines = plan.describe()
        assert any("crash p1" in line for line in lines)
        assert any("impair" in line for line in lines)
        assert any("fetching" in line for line in lines)

    def test_scripted_crashes_fire_at_time(self):
        sim = Simulator()
        chain = build_chain(sim)
        plan = FaultPlan().crash(1, at_s=2e-3).crash(2, at_s=2e-3)
        injector = FaultInjector(chain, None, plan)
        injector.start()
        sim.run(until=5e-3)
        assert chain.server_at(1).failed
        assert chain.server_at(2).failed
        assert [when for when, _ in injector.injected] == [2e-3, 2e-3]

    def test_scripted_impairment_applies_and_expires(self):
        sim = Simulator()
        chain = build_chain(sim)
        plan = FaultPlan().impair_control(at_s=1e-3, drop_rate=1.0,
                                          duration_s=2e-3)
        FaultInjector(chain, None, plan).start()
        sim.run(until=2e-3)
        assert chain.net._impairment is not None
        assert chain.net._impairment.active(sim.now)
        sim.run(until=4e-3)
        assert not chain.net._impairment.active(sim.now)


class TestAuditor:
    def _run_clean(self, sim, chain, oracle, until=0.02):
        gen = TrafficGenerator(sim, chain.ingress, rate_pps=2e5,
                               flows=balanced_flows(8, 2))
        sim.run(until=until)
        gen.stop()
        sim.run(until=until + 5e-3)
        return InvariantAuditor(chain, oracle=oracle)

    def test_clean_chain_zero_violations(self):
        sim = Simulator()
        oracle = ShadowOracle()
        chain = build_chain(sim, oracle=oracle)
        auditor = self._run_clean(sim, chain, oracle)
        assert oracle.released > 0
        assert auditor.audit(quiescent=True) == []
        assert auditor.violations == []

    def test_detects_log_propagation_violation(self):
        sim = Simulator()
        oracle = ShadowOracle()
        chain = build_chain(sim, oracle=oracle)
        auditor = self._run_clean(sim, chain, oracle)
        # Corrupt a successor's MAX vector past its predecessor's.
        index = chain.mbox_index("monitor1")
        tail = chain.group_positions(index)[-1]
        state = chain.replicas[tail].states["monitor1"]
        partition = next(iter(state.max), 0)
        state.max[partition] = state.max.get(partition, 0) + 5
        found = auditor.audit()
        assert any(v.invariant == "log-propagation" for v in found)

    def test_detects_release_safety_violation(self):
        sim = Simulator()
        oracle = ShadowOracle()
        chain = build_chain(sim, oracle=oracle)
        auditor = self._run_clean(sim, chain, oracle)
        # Claim more releases than any store accounts for.
        oracle.released += 10_000
        found = auditor.audit()
        assert any(v.invariant == "release-safety" for v in found)

    def test_detects_pruning_violation(self):
        sim = Simulator()
        oracle = ShadowOracle()
        chain = build_chain(sim, oracle=oracle)
        auditor = self._run_clean(sim, chain, oracle)
        state = chain.replicas[0].states["monitor1"]
        state.commit_floor[0] = state.max.get(0, 0) + 100
        found = auditor.audit()
        assert any(v.invariant == "pruning-bound" for v in found)

    def test_detects_divergent_stores_at_quiescence(self):
        sim = Simulator()
        oracle = ShadowOracle()
        chain = build_chain(sim, oracle=oracle)
        auditor = self._run_clean(sim, chain, oracle)
        index = chain.mbox_index("monitor2")
        tail = chain.group_positions(index)[-1]
        chain.store_of("monitor2", tail).apply(("count", 0), 999_999)
        found = auditor.audit(quiescent=True)
        assert any(v.invariant == "recovery-consistency" for v in found)

    def test_degraded_chain_is_not_audited(self):
        sim = Simulator()
        oracle = ShadowOracle()
        chain = build_chain(sim, oracle=oracle)
        auditor = self._run_clean(sim, chain, oracle)
        chain.degraded = True
        oracle.released += 10_000  # would violate, but loss is declared
        assert auditor.audit() == []


class TestMonkeyAndSoak:
    def test_schedule_is_seed_deterministic(self):
        a = run_schedule(seed=42, chain_length=3, f=1, max_faults=2,
                         duration_s=40e-3)
        b = run_schedule(seed=42, chain_length=3, f=1, max_faults=2,
                         duration_s=40e-3)
        assert a.faults == b.faults
        assert a.released == b.released
        assert a.failures_detected == b.failures_detected

    def test_different_seeds_differ(self):
        a = run_schedule(seed=1, chain_length=4, f=1, max_faults=3,
                         duration_s=40e-3)
        b = run_schedule(seed=2, chain_length=4, f=1, max_faults=3,
                         duration_s=40e-3)
        assert a.faults != b.faults

    def test_monkey_respects_f_bound(self):
        """With the safety gate on, no schedule ever degrades the chain:
        every injected crash stays within every group's f budget."""
        for seed in range(5):
            result = run_schedule(seed=seed, chain_length=3, f=1,
                                  max_faults=4, duration_s=50e-3)
            assert not result.degraded
            assert result.violations == []

    def test_short_soak_zero_violations(self):
        config = SoakConfig(seed=7, schedules=6, faults_per_schedule=2,
                            chain_lengths=(2, 3), f_values=(1, 2),
                            duration_s=30e-3)
        result = run_soak(config)
        assert len(result.schedules) == 6
        assert result.ok, result.summary()
        assert result.faults_injected > 0
        assert "0 invariant violations" in result.summary()
