"""Control-plane chaos soak + determinism regression (PROTOCOL.md §9).

The acceptance contract for the replicated control plane: seeded
schedules mixing chain crashes with orchestrator crashes, partitions,
and leader freezes must finish with zero invariant violations (the
auditor proves election safety on top of the §4/§5 data-plane
invariants), stale commands must actually get fenced, and every run
must be a pure function of its seed.  The scripted scenarios pin the
two worst moments to lose a leader: mid-recovery (journal resume) and
past its lease (stale resume, fenced).
"""

import pytest

from repro.chaos import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InvariantAuditor,
    ORCH_FAULT_KINDS,
    ShadowOracle,
    run_ctrlplane_schedule,
)
from repro.chaos.soak import CTRLPLANE_ELECTION, SOAK_COSTS
from repro.core import FTCChain
from repro.middlebox import ch_n
from repro.orchestration import OrchestratorEnsemble
from repro.sim import Simulator


def _harness(seed=7, n=3):
    sim = Simulator()
    oracle = ShadowOracle()
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=oracle,
                     costs=SOAK_COSTS, n_threads=2, seed=seed)
    chain.start()
    ensemble = OrchestratorEnsemble(sim, chain, n=n,
                                    election=CTRLPLANE_ELECTION,
                                    heartbeat_interval_s=1e-3)
    ensemble.start()
    auditor = InvariantAuditor(chain, oracle=oracle, orchestrator=ensemble)
    return sim, chain, ensemble, auditor


class TestOrchFaultSpecs:
    def test_orch_kinds_registered(self):
        assert set(ORCH_FAULT_KINDS) == {
            "orch-crash", "orch-partition", "stale-leader-resume"}

    def test_duration_required_for_windowed_kinds(self):
        with pytest.raises(ValueError, match="duration_s"):
            FaultSpec(kind="orch-partition", at_s=1e-3)
        with pytest.raises(ValueError, match="duration_s"):
            FaultSpec(kind="stale-leader-resume", at_s=1e-3)

    def test_plan_builders(self):
        plan = (FaultPlan()
                .orch_crash(at_s=1e-3, member=0, restart_after_s=5e-3)
                .orch_partition(at_s=2e-3, duration_s=4e-3)
                .stale_leader_resume(at_s=3e-3, duration_s=6e-3))
        assert [f.kind for f in plan.faults] == list(ORCH_FAULT_KINDS)

    def test_injector_requires_ensemble_for_orch_kinds(self):
        sim, chain, _, _ = _harness()
        plan = FaultPlan().orch_crash(at_s=1e-3)
        with pytest.raises(ValueError, match="ensemble"):
            FaultInjector(chain, None, plan).start()


class TestScriptedScenarios:
    def test_leader_crash_mid_recovery_journal_resume(self):
        """Chain fails; the leader dies in the fetching phase; the
        successor resumes from the journal and finishes the recovery."""
        sim, chain, ensemble, auditor = _harness(seed=11)
        state = {}

        def hook(phase, positions):
            if phase == "fetching" and "crashed" not in state:
                leader = ensemble.leader
                if leader is not None:
                    state["crashed"] = True
                    leader.crash()
                    sim.schedule_callback(25e-3, leader.restart)

        ensemble.recovery_hooks.append(hook)
        sim.schedule_callback(15e-3, lambda: chain.fail_position(1))
        sim.run(until=0.12)
        auditor.audit(quiescent=True)
        assert state.get("crashed")
        assert auditor.violations == []
        assert not chain.server_at(1).failed
        assert any(event.recovered for event in ensemble.history)

    def test_stale_leader_resume_plan_gets_fenced(self):
        """A scripted leader freeze past its lease: the successor takes
        over and the resumed stale leader's epoch is fenced."""
        sim, chain, ensemble, auditor = _harness(seed=3)
        plan = FaultPlan().stale_leader_resume(at_s=20e-3, duration_s=30e-3)
        injector = FaultInjector(chain, ensemble, plan, ensemble=ensemble)
        injector.start()
        sim.schedule_callback(25e-3, lambda: chain.fail_position(2))
        sim.run(until=0.12)
        auditor.audit(quiescent=True)
        assert len(injector.injected) == 1
        assert auditor.violations == []
        assert ensemble.gate.fenced_commands > 0
        assert any(event.recovered for event in ensemble.history)
        assert len(ensemble.leaders_with_valid_lease()) <= 1


@pytest.mark.soak_ctrlplane
class TestCtrlplaneSoak:
    def test_randomized_schedules_zero_violations(self):
        """Acceptance: seeded soak with orchestrator faults completes
        with zero violations, and fencing fires somewhere in the sweep."""
        fenced = 0
        for seed in range(4):
            result = run_ctrlplane_schedule(seed=seed, duration_s=80e-3)
            assert result.violations == [], (seed, result.violations)
            assert result.elections >= 1
            fenced += result.fenced_commands
        assert fenced > 0, "no stale command was ever fenced"

    def test_same_seed_is_bit_identical(self):
        def fingerprint(result):
            return (result.faults, result.elections, result.fenced_commands,
                    result.failures_detected, result.recoveries,
                    result.released, result.degraded,
                    [str(v) for v in result.violations])

        first = fingerprint(run_ctrlplane_schedule(seed=5, duration_s=60e-3))
        second = fingerprint(run_ctrlplane_schedule(seed=5, duration_s=60e-3))
        assert first == second

    def test_ctrlplane_experiment_trial_is_deterministic(self):
        """The failover-table experiment is a pure function of its
        (scenario, seed) inputs -- every column reproduces exactly."""
        from repro.experiments.ctrlplane import _one_trial

        first = _one_trial("leader-crash (mid-recovery)", seed=0)
        second = _one_trial("leader-crash (mid-recovery)", seed=0)
        assert first == second

    def test_default_soak_path_has_no_ensemble(self):
        """--orchestrators 1 (the default) must not allocate any
        ensemble machinery: no gate, no extra servers, plain history."""
        from repro.chaos import run_schedule
        from repro.orchestration import Orchestrator

        result = run_schedule(seed=0, chain_length=3, f=1, max_faults=2,
                              duration_s=30e-3)
        assert result.elections == 0
        assert result.fenced_commands == 0
        sim = Simulator()
        oracle = ShadowOracle()
        chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=oracle,
                         costs=SOAK_COSTS, n_threads=2, seed=0)
        assert chain.gate is None
        orch = Orchestrator(sim, chain)
        assert orch.epoch is None and orch.command_guard is None
        assert not any("ensemble" in name or "-orch" in name
                       for name in chain.net.servers)
