"""Tests for the stateful firewall, policer, and IDS middleboxes."""

import pytest

from repro.middlebox import (
    DROP,
    PASS,
    PortCountIDS,
    StatefulFirewall,
    TokenBucketPolicer,
)
from repro.net import FlowKey, Packet, ip
from repro.stm import StateStore, TransactionContext


def _ctx(store=None, now=0.0, thread_id=0):
    return TransactionContext(store or StateStore(), now=now,
                              thread_id=thread_id)


def _pkt(src="10.0.0.5", dst="8.8.8.8", sport=5555, dport=80):
    return Packet(flow=FlowKey(ip(src), ip(dst), sport, dport))


def _apply(mbox, pkt, store, now=0.0):
    ctx = _ctx(store, now=now)
    verdict = mbox.process(pkt, ctx)
    store.apply_many(ctx.writes)
    return verdict


class TestStatefulFirewall:
    def test_outbound_establishes_connection(self):
        fw = StatefulFirewall()
        store = StateStore()
        assert _apply(fw, _pkt(), store) is PASS
        assert len(store) == 1

    def test_return_traffic_admitted(self):
        fw = StatefulFirewall()
        store = StateStore()
        outbound = _pkt()
        _apply(fw, outbound, store)
        reply = Packet(flow=outbound.flow.reversed())
        assert _apply(fw, reply, store) is PASS

    def test_unsolicited_inbound_dropped(self):
        fw = StatefulFirewall()
        inbound = Packet(flow=FlowKey(ip("8.8.8.8"), ip("10.0.0.5"), 80, 5555))
        assert _apply(fw, inbound, StateStore()) is DROP

    def test_idle_timeout_evicts(self):
        fw = StatefulFirewall(idle_timeout_s=1.0)
        store = StateStore()
        outbound = _pkt()
        _apply(fw, outbound, store, now=0.0)
        reply = Packet(flow=outbound.flow.reversed())
        # Way past the idle timeout: dropped AND entry evicted.
        assert _apply(fw, reply, store, now=5.0) is DROP
        assert len(store) == 0

    def test_activity_refreshes_timeout(self):
        fw = StatefulFirewall(idle_timeout_s=1.0)
        store = StateStore()
        outbound = _pkt()
        _apply(fw, outbound, store, now=0.0)
        reply = Packet(flow=outbound.flow.reversed())
        assert _apply(fw, reply, store, now=0.9) is PASS
        assert _apply(fw, Packet(flow=outbound.flow.reversed()), store,
                      now=1.8) is PASS  # refreshed at 0.9

    def test_packet_counter_increments(self):
        fw = StatefulFirewall()
        store = StateStore()
        pkt = _pkt()
        for _ in range(3):
            _apply(fw, Packet(flow=pkt.flow), store)
        assert store.get(("conn", pkt.flow))["packets"] == 3


class TestTokenBucketPolicer:
    def test_burst_then_drop(self):
        policer = TokenBucketPolicer(rate_pps=10, burst=3)
        store = StateStore()
        pkt = _pkt()
        verdicts = [_apply(policer, Packet(flow=pkt.flow), store, now=0.0)
                    for _ in range(5)]
        assert verdicts[:3] == [PASS, PASS, PASS]
        assert verdicts[3] is DROP and verdicts[4] is DROP

    def test_refill_over_time(self):
        policer = TokenBucketPolicer(rate_pps=10, burst=1)
        store = StateStore()
        pkt = _pkt()
        assert _apply(policer, Packet(flow=pkt.flow), store, now=0.0) is PASS
        assert _apply(policer, Packet(flow=pkt.flow), store, now=0.01) is DROP
        # 0.2 s at 10 pps refills 2 tokens (capped at burst=1).
        assert _apply(policer, Packet(flow=pkt.flow), store, now=0.2) is PASS

    def test_per_flow_isolation(self):
        policer = TokenBucketPolicer(rate_pps=10, burst=1)
        store = StateStore()
        assert _apply(policer, _pkt(sport=1), store) is PASS
        assert _apply(policer, _pkt(sport=1), store) is DROP
        assert _apply(policer, _pkt(sport=2), store) is PASS  # own bucket

    def test_aggregate_mode_shares_bucket(self):
        policer = TokenBucketPolicer(rate_pps=10, burst=1, per_flow=False)
        store = StateStore()
        assert _apply(policer, _pkt(sport=1), store) is PASS
        assert _apply(policer, _pkt(sport=2), store) is DROP

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucketPolicer(rate_pps=0)
        with pytest.raises(ValueError):
            TokenBucketPolicer(burst=0)


class TestPortCountIDS:
    def test_counts_watched_ports_only(self):
        ids = PortCountIDS(watched_ports=(22,))
        store = StateStore()
        _apply(ids, _pkt(dport=22), store)
        _apply(ids, _pkt(dport=80), store)
        assert store.get(("port-count", 22)) == 1
        assert ("port-count", 80) not in store

    def test_alert_raised_at_threshold(self):
        ids = PortCountIDS(alert_threshold=3, watched_ports=(22,))
        store = StateStore()
        for _ in range(3):
            _apply(ids, _pkt(dport=22), store)
        assert ids.alerts(store) == [22]

    def test_drop_on_alert(self):
        ids = PortCountIDS(alert_threshold=2, drop_on_alert=True,
                           watched_ports=(23,))
        store = StateStore()
        assert _apply(ids, _pkt(dport=23), store) is PASS
        assert _apply(ids, _pkt(dport=23), store) is DROP  # threshold hit
        assert _apply(ids, _pkt(dport=23), store) is DROP

    def test_shared_counter_across_threads(self):
        ids = PortCountIDS(watched_ports=(22,))
        store = StateStore()
        for thread in range(4):
            ctx = _ctx(store, thread_id=thread)
            ids.process(_pkt(dport=22, sport=thread), ctx)
            store.apply_many(ctx.writes)
        assert store.get(("port-count", 22)) == 4
