"""Tests for Table 1 chain factories and the middlebox registry."""

import pytest

from repro.middlebox import (
    Firewall,
    Gen,
    Monitor,
    SimpleNAT,
    available,
    ch_gen,
    ch_n,
    ch_rec,
    create,
    register,
)
from repro.middlebox.base import Middlebox


class TestChains:
    def test_ch_n_builds_monitors(self):
        chain = ch_n(5)
        assert len(chain) == 5
        assert all(isinstance(m, Monitor) for m in chain)
        assert [m.name for m in chain] == [f"monitor{i}" for i in range(1, 6)]

    def test_ch_n_sharing_level_propagates(self):
        chain = ch_n(2, sharing_level=8)
        assert all(m.sharing_level == 8 for m in chain)

    def test_ch_n_rejects_empty(self):
        with pytest.raises(ValueError):
            ch_n(0)

    def test_ch_gen_two_gens(self):
        chain = ch_gen(state_size=128)
        assert [type(m) for m in chain] == [Gen, Gen]
        assert all(m.state_size == 128 for m in chain)

    def test_ch_rec_composition(self):
        chain = ch_rec()
        assert [type(m) for m in chain] == [Firewall, Monitor, SimpleNAT]

    def test_names_unique_within_chain(self):
        for chain in (ch_n(5), ch_gen(), ch_rec()):
            names = [m.name for m in chain]
            assert len(names) == len(set(names))


class TestRegistry:
    def test_create_known_kinds(self):
        for kind in available():
            box = create(kind)
            assert isinstance(box, Middlebox)

    def test_create_with_kwargs(self):
        monitor = create("monitor", sharing_level=2, n_threads=8)
        assert monitor.sharing_level == 2

    def test_unknown_kind_lists_available(self):
        with pytest.raises(ValueError, match="monitor"):
            create("nonexistent")

    def test_register_custom(self):
        class Custom(Middlebox):
            def process(self, packet, ctx):
                from repro.middlebox import PASS
                return PASS

        register("custom-test", Custom)
        try:
            assert isinstance(create("custom-test", name="c"), Custom)
            with pytest.raises(ValueError):
                register("custom-test", Custom)
        finally:
            from repro.middlebox import registry
            registry._FACTORIES.pop("custom-test")
