"""Tests for the Table 1 middleboxes against a plain transaction context."""

import pytest

from repro.middlebox import (
    DROP,
    Firewall,
    Gen,
    LoadBalancer,
    MazuNAT,
    Monitor,
    PASS,
    Rule,
    SimpleNAT,
)
from repro.net import FlowKey, Packet, format_ip, ip
from repro.stm import StateStore, TransactionContext


def _ctx(store=None, thread_id=0):
    return TransactionContext(store or StateStore(), thread_id=thread_id)


def _pkt(src="10.0.0.5", dst="8.8.8.8", sport=5555, dport=80, size=256):
    return Packet(flow=FlowKey(ip(src), ip(dst), sport, dport), size=size)


class TestMazuNAT:
    def test_outbound_translation_allocates_mapping(self):
        nat = MazuNAT()
        store = StateStore()
        ctx = _ctx(store)
        out = nat.process(_pkt(), ctx)
        assert isinstance(out, Packet)
        assert format_ip(out.flow.src_ip) == "203.0.113.1"
        assert out.flow.src_port == 10000
        assert ctx.writes  # mapping + cursor recorded

    def test_same_flow_reuses_mapping(self):
        nat = MazuNAT()
        store = StateStore()
        first_ctx = _ctx(store)
        first = nat.process(_pkt(), first_ctx)
        store.apply_many(first_ctx.writes)

        second_ctx = _ctx(store)
        second = nat.process(_pkt(), second_ctx)
        assert second.flow.src_port == first.flow.src_port
        assert not second_ctx.writes  # read-only on later packets

    def test_distinct_flows_distinct_ports(self):
        nat = MazuNAT()
        store = StateStore()
        ports = set()
        for sport in (1000, 1001, 1002):
            ctx = _ctx(store)
            out = nat.process(_pkt(sport=sport), ctx)
            store.apply_many(ctx.writes)
            ports.add(out.flow.src_port)
        assert len(ports) == 3

    def test_connection_persistence_round_trip(self):
        """Return traffic must translate back to the internal flow."""
        nat = MazuNAT()
        store = StateStore()
        ctx = _ctx(store)
        outbound = nat.process(_pkt(), ctx)
        store.apply_many(ctx.writes)

        reply = Packet(flow=outbound.flow.reversed())
        back = nat.process(reply, _ctx(store))
        assert isinstance(back, Packet)
        assert back.flow == _pkt().flow.reversed()

    def test_unsolicited_inbound_dropped(self):
        nat = MazuNAT()
        pkt = Packet(flow=FlowKey(ip("8.8.8.8"), ip("203.0.113.1"), 80, 40000))
        assert nat.process(pkt, _ctx()) is DROP

    def test_port_pool_exhaustion_drops(self):
        nat = MazuNAT(first_port=10000, last_port=10001)
        store = StateStore()
        for sport, expect_drop in ((1, False), (2, False), (3, True)):
            ctx = _ctx(store)
            verdict = nat.process(_pkt(sport=sport), ctx)
            store.apply_many(ctx.writes)
            assert (verdict is DROP) == expect_drop

    def test_translation_preserves_pid_and_meta(self):
        nat = MazuNAT()
        pkt = _pkt()
        pkt.meta["t0"] = 1.25
        out = nat.process(pkt, _ctx())
        assert out.pid == pkt.pid
        assert out.meta["t0"] == 1.25

    def test_deterministic_reexecution(self):
        """Running the body twice on the same store yields identical writes."""
        nat = MazuNAT()
        store = StateStore()
        first, second = _ctx(store), _ctx(store)
        nat.process(_pkt(), first)
        nat.process(_pkt(), second)
        assert first.writes == second.writes


class TestSimpleNAT:
    def test_translates_and_records(self):
        nat = SimpleNAT()
        store = StateStore()
        ctx = _ctx(store)
        out = nat.process(_pkt(), ctx)
        assert out.flow.src_port == 20000
        assert format_ip(out.flow.src_ip) == "203.0.113.2"

    def test_sequential_allocation(self):
        nat = SimpleNAT()
        store = StateStore()
        ports = []
        for sport in range(3):
            ctx = _ctx(store)
            ports.append(nat.process(_pkt(sport=sport), ctx).flow.src_port)
            store.apply_many(ctx.writes)
        assert ports == [20000, 20001, 20002]


class TestMonitor:
    def test_counts_per_thread_group(self):
        monitor = Monitor(sharing_level=1, n_threads=8)
        store = StateStore()
        for thread in range(8):
            ctx = _ctx(store, thread_id=thread)
            assert monitor.process(_pkt(), ctx) is PASS
            store.apply_many(ctx.writes)
        assert monitor.total_count(store) == 8
        assert store.get(("count", 3)) == 1

    def test_sharing_level_groups_threads(self):
        monitor = Monitor(sharing_level=4, n_threads=8)
        assert monitor.group_of(0) == monitor.group_of(3) == 0
        assert monitor.group_of(4) == monitor.group_of(7) == 1

    def test_sharing_level_8_single_variable(self):
        monitor = Monitor(sharing_level=8, n_threads=8)
        store = StateStore()
        for thread in range(8):
            ctx = _ctx(store, thread_id=thread)
            monitor.process(_pkt(), ctx)
            store.apply_many(ctx.writes)
        assert store.get(("count", 0)) == 8
        assert monitor.total_count(store) == 8

    def test_invalid_sharing_levels_rejected(self):
        with pytest.raises(ValueError):
            Monitor(sharing_level=0)
        with pytest.raises(ValueError):
            Monitor(sharing_level=16, n_threads=8)
        with pytest.raises(ValueError):
            Monitor(sharing_level=3, n_threads=8)

    def test_byte_counting_mode(self):
        monitor = Monitor(sharing_level=1, count_bytes=True)
        store = StateStore()
        ctx = _ctx(store)
        monitor.process(_pkt(size=500), ctx)
        store.apply_many(ctx.writes)
        assert store.get(("bytes", 0)) == 500


class TestGen:
    def test_writes_exact_state_size(self):
        gen = Gen(state_size=128)
        ctx = _ctx()
        gen.process(_pkt(), ctx)
        (value,) = ctx.writes.values()
        assert len(value) == 128

    def test_write_every_packet(self):
        gen = Gen(state_size=16)
        store = StateStore()
        for _ in range(5):
            ctx = _ctx(store)
            gen.process(_pkt(), ctx)
            assert ctx.writes
            store.apply_many(ctx.writes)

    def test_deterministic_per_packet(self):
        gen = Gen(state_size=8)
        pkt = _pkt()
        a, b = _ctx(), _ctx()
        gen.process(pkt, a)
        gen.process(pkt, b)
        assert a.writes == b.writes

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            Gen(state_size=0)


class TestFirewall:
    def test_stateless_flag_and_no_state_access(self):
        fw = Firewall()
        ctx = _ctx()
        assert fw.stateless
        fw.process(_pkt(), ctx)
        assert not ctx.writes and not ctx.reads

    def test_first_match_wins(self):
        fw = Firewall(rules=[
            Rule(action="deny", dst_port=22),
            Rule(action="allow", dst_port=22),
        ])
        assert fw.process(_pkt(dport=22), _ctx()) is DROP

    def test_default_allow_and_deny(self):
        assert Firewall().process(_pkt(), _ctx()) is PASS
        assert Firewall(default_action="deny").process(_pkt(), _ctx()) is DROP

    def test_wildcard_fields(self):
        rule = Rule(action="deny", src_ip=ip("10.0.0.5"))
        fw = Firewall(rules=[rule])
        assert fw.process(_pkt(src="10.0.0.5"), _ctx()) is DROP
        assert fw.process(_pkt(src="10.0.0.6"), _ctx()) is PASS

    def test_drop_counter(self):
        fw = Firewall(rules=[Rule(action="deny", dst_port=23)])
        fw.process(_pkt(dport=23), _ctx())
        fw.process(_pkt(dport=80), _ctx())
        assert fw.packets_dropped == 1
        assert fw.packets_processed == 2

    def test_invalid_default_action(self):
        with pytest.raises(ValueError):
            Firewall(default_action="reject")


class TestLoadBalancer:
    def test_flow_stickiness(self):
        lb = LoadBalancer(backends=["192.168.1.1", "192.168.1.2"])
        store = StateStore()
        first_ctx = _ctx(store)
        first = lb.process(_pkt(), first_ctx)
        store.apply_many(first_ctx.writes)
        second = lb.process(_pkt(), _ctx(store))
        assert first.flow.dst_ip == second.flow.dst_ip

    def test_round_robin_across_flows(self):
        lb = LoadBalancer(backends=["192.168.1.1", "192.168.1.2"])
        store = StateStore()
        dests = []
        for sport in range(4):
            ctx = _ctx(store)
            dests.append(lb.process(_pkt(sport=sport), ctx).flow.dst_ip)
            store.apply_many(ctx.writes)
        assert dests == [ip("192.168.1.1"), ip("192.168.1.2")] * 2

    def test_connection_counts(self):
        lb = LoadBalancer(backends=["192.168.1.1"])
        store = StateStore()
        for sport in range(3):
            ctx = _ctx(store)
            lb.process(_pkt(sport=sport), ctx)
            store.apply_many(ctx.writes)
        assert store.get(("conns", ip("192.168.1.1"))) == 3

    def test_empty_backends_rejected(self):
        with pytest.raises(ValueError):
            LoadBalancer(backends=[])
