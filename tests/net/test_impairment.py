"""Tests for data-plane impairment: spec parsing, impaired links, and
the legacy LossyLink accounting."""

import random

import pytest

from repro.net import DataImpairment, FlowKey, Link, LossyLink, Packet
from repro.net.impairment import Corrupted
from repro.sim import Simulator


def _pkt(size=256, sport=1000):
    return Packet(flow=FlowKey(1, 2, sport, 80), size=size)


class TestDataImpairmentSpec:
    def test_parse_full_spec(self):
        spec = DataImpairment.parse(
            "drop=0.05,dup=0.02,reorder=0.02,corrupt=0.01")
        assert spec.drop_rate == 0.05
        assert spec.dup_rate == 0.02
        assert spec.reorder_rate == 0.02
        assert spec.corrupt_rate == 0.01

    def test_parse_partial_any_order_with_spaces(self):
        spec = DataImpairment.parse(" corrupt=0.1 , drop=0.2 ")
        assert spec.corrupt_rate == 0.1
        assert spec.drop_rate == 0.2
        assert spec.dup_rate == 0.0
        assert spec.reorder_rate == 0.0

    def test_parse_unknown_key(self):
        with pytest.raises(ValueError, match="unknown impairment key"):
            DataImpairment.parse("jitter=0.1")

    def test_parse_missing_rate(self):
        with pytest.raises(ValueError, match="needs =RATE"):
            DataImpairment.parse("drop")

    def test_parse_non_numeric(self):
        with pytest.raises(ValueError, match="must be a number"):
            DataImpairment.parse("drop=lots")

    def test_parse_out_of_range(self):
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            DataImpairment.parse("drop=1.5")
        with pytest.raises(ValueError, match=r"must be in \[0, 1\]"):
            DataImpairment.parse("dup=-0.1")

    def test_parse_empty(self):
        with pytest.raises(ValueError, match="empty impairment spec"):
            DataImpairment.parse("  ,  ")

    def test_constructor_validates_rates(self):
        with pytest.raises(ValueError):
            DataImpairment(drop_rate=1.01)
        with pytest.raises(ValueError):
            DataImpairment(reorder_rate=-0.5)

    def test_active_window(self):
        spec = DataImpairment(drop_rate=1.0, expires_at=5.0)
        assert spec.active(0.0)
        assert spec.active(4.999)
        assert not spec.active(5.0)
        assert DataImpairment(drop_rate=1.0).active(1e9)

    def test_describe(self):
        spec = DataImpairment.parse("drop=0.05,dup=0.02")
        assert spec.describe() == "drop=0.05 dup=0.02"


class TestImpairedLink:
    def test_drop_all(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        link.set_impairment(DataImpairment(drop_rate=1.0), random.Random(1))
        for _ in range(5):
            link.send(_pkt())
        sim.run()
        assert arrivals == []
        assert link.impair_dropped == 5
        assert link.tx_packets == 5  # dropped packets still count offered

    def test_duplicate_all(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        link.set_impairment(DataImpairment(dup_rate=1.0), random.Random(1))
        pkt = _pkt(size=100)
        link.send(pkt)
        sim.run()
        assert arrivals == [pkt, pkt]
        assert link.impair_duplicated == 1
        assert link.tx_packets == 2  # both copies burn wire accounting
        assert link.tx_bytes == 2 * pkt.wire_size

    def test_corrupt_all_delivers_wrapper(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        link.set_impairment(DataImpairment(corrupt_rate=1.0),
                            random.Random(1))
        pkt = _pkt()
        link.send(pkt)
        sim.run()
        assert len(arrivals) == 1
        assert isinstance(arrivals[0], Corrupted)
        assert arrivals[0].corrupted_wire
        assert arrivals[0].inner is pkt
        assert arrivals[0].wire_size == pkt.wire_size
        assert link.impair_corrupted == 1

    def test_reorder_delays_delivery(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, lambda p: arrivals.append((sim.now, p)),
                    delay_s=1e-6, bandwidth_bps=1e15)
        link.set_impairment(
            DataImpairment(reorder_rate=1.0, reorder_delay_s=50e-6),
            random.Random(1))
        link.send(_pkt())
        sim.run()
        assert link.impair_reordered == 1
        # Held back by reorder_delay_s * (1 + U[0,1)) beyond the base delay.
        assert arrivals[0][0] >= 1e-6 + 50e-6

    def test_expired_impairment_is_transparent(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        link.set_impairment(DataImpairment(drop_rate=1.0, expires_at=1e-6),
                            random.Random(1))
        sim.run(until=2e-6)
        link.send(_pkt())
        sim.run()
        assert len(arrivals) == 1
        assert link.impair_dropped == 0

    def test_clear_impairment(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        link.set_impairment(DataImpairment(drop_rate=1.0), random.Random(1))
        link.clear_impairment()
        link.send(_pkt())
        sim.run()
        assert len(arrivals) == 1

    def test_deterministic_given_seed(self):
        def run(seed):
            sim = Simulator()
            arrivals = []
            link = Link(sim, lambda p: arrivals.append(sim.now))
            link.set_impairment(
                DataImpairment(drop_rate=0.3, dup_rate=0.2,
                               reorder_rate=0.2, corrupt_rate=0.1),
                random.Random(seed))
            for _ in range(50):
                link.send(_pkt())
            sim.run()
            return (arrivals, link.impair_dropped, link.impair_duplicated,
                    link.impair_reordered, link.impair_corrupted)

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestLossyLinkAccounting:
    def test_drop_every_counts_packets_and_bytes(self):
        sim = Simulator()
        arrivals = []
        link = LossyLink(sim, arrivals.append, drop_every=2)
        for _ in range(4):
            link.send(_pkt(size=100))
        sim.run()
        assert link.dropped == 2
        assert len(arrivals) == 2
        # Offered accounting covers dropped packets too, on both fields.
        assert link.tx_packets == 4
        assert link.tx_bytes == 4 * _pkt(size=100).wire_size

    def test_drop_fn_counts_packets_and_bytes(self):
        sim = Simulator()
        arrivals = []
        link = LossyLink(sim, arrivals.append,
                         drop_fn=lambda p: p.flow.src_port == 1000)
        dropped_pkt = _pkt(size=100, sport=1000)
        kept_pkt = _pkt(size=300, sport=2000)
        link.send(dropped_pkt)
        link.send(kept_pkt)
        sim.run()
        assert link.dropped == 1
        assert arrivals == [kept_pkt]
        assert link.tx_packets == 2
        assert link.tx_bytes == dropped_pkt.wire_size + kept_pkt.wire_size
