"""Control-plane retry policy tests (timeouts, backoff, impairment)."""

import random

import pytest

from repro.net import Network, RetryPolicy, reliable_call
from repro.sim import Simulator


def make_net(sim):
    net = Network(sim, hop_delay_s=10e-6, bandwidth_bps=10e9)
    net.add_server("a")
    net.add_server("b")
    return net


def run_call(sim, net, handler=lambda: 42, policy=None, until=1.0, **kw):
    policy = policy or RetryPolicy()
    box = []

    def caller():
        result = yield from reliable_call(net, "a", "b", handler,
                                          policy=policy, **kw)
        box.append((result, sim.now))

    sim.process(caller())
    sim.run(until=until)
    assert box, "reliable_call never returned"
    return box[0]


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(backoff_base_s=1e-3, backoff_factor=2.0,
                             backoff_max_s=4e-3, jitter_frac=0.0)
        assert policy.backoff_s(1) == pytest.approx(1e-3)
        assert policy.backoff_s(2) == pytest.approx(2e-3)
        assert policy.backoff_s(3) == pytest.approx(4e-3)
        assert policy.backoff_s(4) == pytest.approx(4e-3)  # capped

    def test_backoff_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_s=1e-3, jitter_frac=0.2)
        rng = random.Random(7)
        draws = [policy.backoff_s(1, rng) for _ in range(100)]
        assert all(0.8e-3 <= d <= 1.2e-3 for d in draws)
        assert len(set(draws)) > 1

    def test_deadline_is_rtt_aware(self):
        """A WAN RTT must stretch the deadline past the LAN floor."""
        policy = RetryPolicy(timeout_s=2e-3, rtt_multiplier=3.0)
        assert policy.deadline_s(0.0, 0.0) == pytest.approx(2e-3)
        assert policy.deadline_s(49.5e-3, 0.0) == pytest.approx(148.5e-3)


class TestReliableCall:
    def test_clean_network_single_attempt(self):
        sim = Simulator()
        net = make_net(sim)
        result, _ = run_call(sim, net)
        assert result.ok and result.value == 42
        assert result.attempts == 1 and result.retries == 0

    def test_dead_peer_bounded_time(self):
        sim = Simulator()
        net = make_net(sim)
        net.servers["b"].fail()
        policy = RetryPolicy(timeout_s=1e-3, max_attempts=3,
                             backoff_base_s=0.5e-3, jitter_frac=0.0)
        result, elapsed = run_call(sim, net, policy=policy)
        assert not result.ok
        assert result.attempts == 3
        # 3 deadlines + 2 backoffs (1 + 2 ms), nothing hangs.
        assert elapsed == pytest.approx(3 * 1e-3 + 0.5e-3 + 1e-3, rel=0.05)

    def test_retries_through_drop_rate(self):
        """Acceptance: a 30% control-message drop rate never hangs a
        caller -- every call completes, retries absorb the losses."""
        sim = Simulator()
        net = make_net(sim)
        net.impair(drop_rate=0.3, seed=3)
        policy = RetryPolicy(timeout_s=0.5e-3, max_attempts=8,
                             backoff_base_s=0.1e-3, jitter_frac=0.0)
        results = []

        def caller(i):
            result = yield from reliable_call(net, "a", "b", lambda: i,
                                              policy=policy)
            results.append(result)

        for i in range(60):
            sim.process(caller(i))
        sim.run(until=1.0)
        assert len(results) == 60
        assert all(r.ok for r in results)
        assert net.control_drops > 0
        assert sum(r.retries for r in results) > 0

    def test_duplicated_responses_are_safe(self):
        sim = Simulator()
        net = make_net(sim)
        net.impair(dup_rate=1.0, seed=1)
        result, _ = run_call(sim, net)
        assert result.ok and result.value == 42
        assert net.control_dups > 0

    def test_impairment_expires(self):
        sim = Simulator()
        net = make_net(sim)
        net.impair(drop_rate=1.0, duration_s=5e-3, seed=2)
        policy = RetryPolicy(timeout_s=1e-3, max_attempts=20,
                             backoff_base_s=0.5e-3, jitter_frac=0.0)
        result, elapsed = run_call(sim, net, policy=policy)
        # Total blackout for 5 ms, then the first clean attempt wins.
        assert result.ok
        assert elapsed > 5e-3
        assert result.retries > 0

    def test_extra_delay_still_succeeds(self):
        sim = Simulator()
        net = make_net(sim)
        net.impair(extra_delay_s=0.3e-3, delay_jitter_s=0.1e-3, seed=4)
        result, _ = run_call(sim, net)
        assert result.ok
