"""Tests for packets, flows, and addressing helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.net import FlowKey, Packet, format_ip, ip


class TestAddressing:
    def test_ip_parses_dotted_quad(self):
        assert ip("10.0.0.1") == (10 << 24) | 1
        assert ip("255.255.255.255") == 0xFFFFFFFF
        assert ip("0.0.0.0") == 0

    def test_ip_rejects_malformed(self):
        for bad in ("10.0.0", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                ip(bad)

    def test_format_ip_round_trip(self):
        for dotted in ("10.0.0.1", "192.168.17.254", "0.0.0.0"):
            assert format_ip(ip(dotted)) == dotted

    def test_format_ip_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ip(-1)
        with pytest.raises(ValueError):
            format_ip(1 << 32)

    @given(st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_format_parse_inverse(self, value):
        assert ip(format_ip(value)) == value


class TestFlowKey:
    def _flow(self):
        return FlowKey(ip("10.0.0.1"), ip("10.0.0.2"), 1234, 80)

    def test_reversed_swaps_endpoints(self):
        flow = self._flow()
        rev = flow.reversed()
        assert rev.src_ip == flow.dst_ip
        assert rev.dst_port == flow.src_port
        assert rev.reversed() == flow

    def test_rss_hash_symmetric(self):
        flow = self._flow()
        assert flow.rss_hash() == flow.reversed().rss_hash()

    def test_rss_hash_stable_and_nonnegative(self):
        flow = self._flow()
        assert flow.rss_hash() == flow.rss_hash()
        assert flow.rss_hash() >= 0

    def test_flows_hashable_and_comparable(self):
        flow = self._flow()
        same = FlowKey(ip("10.0.0.1"), ip("10.0.0.2"), 1234, 80)
        assert flow == same
        assert len({flow, same}) == 1

    def test_str_is_readable(self):
        assert "10.0.0.1:1234" in str(self._flow())


class _Blob:
    def __init__(self, size):
        self._size = size

    def byte_size(self):
        return self._size


class TestPacket:
    def test_packet_ids_unique(self):
        flow = FlowKey(1, 2, 3, 4)
        first, second = Packet(flow=flow), Packet(flow=flow)
        assert first.pid != second.pid

    def test_wire_size_includes_attachments(self):
        pkt = Packet(flow=FlowKey(1, 2, 3, 4), size=256)
        assert pkt.wire_size == 256
        pkt.attach("piggyback", _Blob(64))
        assert pkt.wire_size == 320

    def test_detach_removes_and_returns(self):
        pkt = Packet(flow=FlowKey(1, 2, 3, 4))
        blob = _Blob(10)
        pkt.attach("x", blob)
        assert pkt.detach("x") is blob
        assert pkt.detach("x") is None
        assert pkt.wire_size == pkt.size

    def test_attachment_lookup(self):
        pkt = Packet(flow=FlowKey(1, 2, 3, 4))
        assert pkt.attachment("missing") is None
        pkt.attach("k", _Blob(1))
        assert pkt.attachment("k") is not None

    def test_kind_flags(self):
        data = Packet(flow=FlowKey(1, 2, 3, 4))
        prop = Packet(flow=FlowKey(1, 2, 3, 4), kind="propagating")
        assert data.is_data and not prop.is_data

    def test_clone_headers_copies_flow_not_attachments(self):
        pkt = Packet(flow=FlowKey(1, 2, 3, 4), size=100)
        pkt.attach("x", _Blob(5))
        clone = pkt.clone_headers()
        assert clone.flow == pkt.flow
        assert clone.size == pkt.size
        assert clone.attachments == {}
        assert clone.pid != pkt.pid
