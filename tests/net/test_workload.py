"""Workload layer tests (PROTOCOL.md §12.1): heavy-tailed flows,
diurnal cycles, flash crowds, seeded determinism."""

import math

from hypothesis import given, settings, strategies as st

import pytest

from repro.net import FlashCrowd, WorkloadGenerator, WorkloadSpec
from repro.sim import RandomStreams, Simulator


class TestSpecValidation:
    def test_defaults_valid(self):
        spec = WorkloadSpec()
        assert spec.rate_at(0.0) == spec.base_pps

    @pytest.mark.parametrize("kwargs,match", [
        (dict(base_pps=0), "base_pps"),
        (dict(diurnal_amplitude=1.5), "diurnal_amplitude"),
        (dict(diurnal_period_s=0), "diurnal_period_s"),
        (dict(pareto_alpha=0), "pareto_alpha"),
        (dict(n_flows=0), "n_flows"),
        (dict(n_classes=0), "n_classes"),
        (dict(packet_size=32), "packet_size"),
        (dict(arrivals="fractal"), "arrival"),
    ])
    def test_rejects_bad_fields(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            WorkloadSpec(**kwargs)

    def test_flash_validation(self):
        with pytest.raises(ValueError, match="duration_s"):
            FlashCrowd(at_s=0.0, duration_s=0.0, multiplier=4.0)
        with pytest.raises(ValueError, match="multiplier"):
            FlashCrowd(at_s=0.0, duration_s=1.0, multiplier=0.0)


class TestSpecParse:
    def test_round_trip(self):
        spec = WorkloadSpec.parse(
            "base=2e4, flash=0.01:0.02:4+0.05:0.01:2, "
            "diurnal=0.3:0.05, alpha=1.1, flows=16, classes=2, "
            "size=128, arrivals=deterministic")
        assert spec.base_pps == 2e4
        assert len(spec.flashes) == 2
        assert spec.flashes[1].multiplier == 2.0
        assert spec.diurnal_amplitude == 0.3
        assert spec.n_flows == 16
        assert spec.packet_size == 128
        assert "flash=4x" in spec.describe()

    @pytest.mark.parametrize("text,match", [
        ("base", "key=value"),
        ("turbo=9", "unknown workload key"),
        ("base=fast", "bad value"),
        ("flash=0.01:4", "at:dur:mult"),
        ("diurnal=0.3", "amplitude:period"),
    ])
    def test_parse_errors(self, text, match):
        with pytest.raises(ValueError, match=match):
            WorkloadSpec.parse(text)


class TestRateComposition:
    def test_flash_multiplies_base(self):
        spec = WorkloadSpec(base_pps=1e4, flashes=(
            FlashCrowd(at_s=0.01, duration_s=0.02, multiplier=4.0),))
        assert spec.rate_at(0.005) == 1e4
        assert spec.rate_at(0.02) == 4e4
        assert spec.rate_at(0.03) == 1e4      # window is half-open
        assert spec.peak_rate() == 4e4

    def test_diurnal_cycle(self):
        spec = WorkloadSpec(base_pps=1e4, diurnal_amplitude=0.5,
                            diurnal_period_s=1.0)
        assert spec.rate_at(0.25) == pytest.approx(1.5e4)
        assert spec.rate_at(0.75) == pytest.approx(0.5e4)
        assert spec.peak_rate() == pytest.approx(1.5e4)

    def test_overlapping_flashes_stack(self):
        spec = WorkloadSpec(base_pps=1e3, flashes=(
            FlashCrowd(0.0, 1.0, 2.0), FlashCrowd(0.5, 1.0, 3.0)))
        assert spec.rate_at(0.75) == pytest.approx(6e3)
        assert spec.peak_rate() == pytest.approx(6e3)

    @given(st.floats(min_value=0.0, max_value=10.0))
    @settings(max_examples=100, deadline=None)
    def test_rate_bounded_by_peak(self, t):
        spec = WorkloadSpec(base_pps=1e4, diurnal_amplitude=0.4,
                            flashes=(FlashCrowd(1.0, 2.0, 8.0),))
        rate = spec.rate_at(t)
        assert 0 < rate <= spec.peak_rate() + 1e-9
        assert math.isfinite(rate)


def _drive(seed, duration_s=20e-3, **spec_kw):
    sim = Simulator()
    out = []
    spec = WorkloadSpec(base_pps=5e3, n_flows=16, n_classes=3, **spec_kw)
    gen = WorkloadGenerator(sim, out.append, spec, n_queues=2,
                            streams=RandomStreams(seed))
    sim.run(until=duration_s)
    gen.stop()
    return gen, out


class TestWorkloadGenerator:
    def test_same_seed_same_stream(self):
        _, a = _drive(seed=7)
        _, b = _drive(seed=7)
        assert [(p.flow, p.meta["prio"]) for p in a] == \
               [(p.flow, p.meta["prio"]) for p in b]

    def test_different_seed_differs(self):
        _, a = _drive(seed=7)
        _, b = _drive(seed=8)
        assert [p.flow for p in a] != [p.flow for p in b]

    def test_priority_stamped_consistently(self):
        gen, out = _drive(seed=1)
        index_of = {flow: i for i, flow in enumerate(gen.flows)}
        for packet in out:
            assert packet.meta["prio"] == index_of[packet.flow] % 3
        assert gen.sent == len(out)
        assert gen.sent_by_class == [
            sum(1 for p in out if p.meta["prio"] == c) for c in range(3)]

    def test_heavy_tail_elephants_dominate(self):
        gen, out = _drive(seed=3, duration_s=50e-3, pareto_alpha=1.3)
        index_of = {flow: i for i, flow in enumerate(gen.flows)}
        head = sum(1 for p in out if index_of[p.flow] < 4)
        # With alpha=1.3 over 16 flows the top-4 carry ~66% of weight.
        assert head / len(out) > 0.5

    def test_flash_window_raises_rate(self):
        flash = FlashCrowd(at_s=5e-3, duration_s=5e-3, multiplier=8.0)
        gen, out = _drive(seed=2, duration_s=15e-3, flashes=(flash,),
                          arrivals="deterministic")
        inside = sum(1 for p in out if 5e-3 <= p.created_at < 10e-3)
        outside = sum(1 for p in out if p.created_at < 5e-3)
        assert inside > 4 * max(1, outside)

    def test_boost_knob_scales_rate(self):
        sim = Simulator()
        out = []
        spec = WorkloadSpec(base_pps=5e3, arrivals="deterministic")
        gen = WorkloadGenerator(sim, out.append, spec,
                                streams=RandomStreams(0))
        sim.run(until=10e-3)
        before = len(out)
        gen.boost = 4.0   # what the chaos flash-crowd fault dials up
        sim.run(until=20e-3)
        assert len(out) - before > 3 * before
