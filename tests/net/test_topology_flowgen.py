"""Tests for servers, the network fabric, and traffic generation."""

import pytest

from repro.net import (
    FlowKey,
    Network,
    Packet,
    TrafficGenerator,
    balanced_flows,
)
from repro.net.topology import DEFAULT_CPU_HZ
from repro.sim import RandomStreams, Simulator


def _two_server_net(sim):
    net = Network(sim)
    net.add_server("a")
    net.add_server("b")
    net.connect_all()
    return net


class TestServer:
    def test_cycles_conversion(self):
        sim = Simulator()
        net = Network(sim)
        server = net.add_server("s", cpu_hz=2e9)
        assert server.cycles(2e9) == 1.0
        assert server.cycles(355) == pytest.approx(177.5e-9)

    def test_default_clock_matches_paper(self):
        assert DEFAULT_CPU_HZ == 2.0e9

    def test_fail_and_restore(self):
        sim = Simulator()
        net = Network(sim)
        server = net.add_server("s")
        server.fail()
        assert server.failed
        server.restore()
        assert not server.failed


class TestNetwork:
    def test_duplicate_server_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_server("a")
        with pytest.raises(ValueError):
            net.add_server("a")

    def test_send_delivers_to_nic(self):
        sim = Simulator()
        net = _two_server_net(sim)
        net.send("a", "b", Packet(flow=FlowKey(1, 2, 3, 4)))
        sim.run()
        assert net.servers["b"].nic.rx_packets == 1

    def test_send_without_link_rejected(self):
        sim = Simulator()
        net = Network(sim)
        net.add_server("a")
        net.add_server("b")
        with pytest.raises(KeyError):
            net.send("a", "b", Packet(flow=FlowKey(1, 2, 3, 4)))

    def test_failed_destination_drops(self):
        sim = Simulator()
        net = _two_server_net(sim)
        net.servers["b"].fail()
        net.send("a", "b", Packet(flow=FlowKey(1, 2, 3, 4)))
        sim.run()
        assert net.servers["b"].nic.rx_packets == 0
        assert net.dropped_to_failed == 1

    def test_failed_source_drops(self):
        sim = Simulator()
        net = _two_server_net(sim)
        net.servers["a"].fail()
        net.send("a", "b", Packet(flow=FlowKey(1, 2, 3, 4)))
        sim.run()
        assert net.dropped_to_failed == 1

    def test_deliver_external(self):
        sim = Simulator()
        net = _two_server_net(sim)
        net.deliver_external("a", Packet(flow=FlowKey(1, 2, 3, 4)))
        sim.run()
        assert net.servers["a"].nic.rx_packets == 1

    def test_control_call_round_trip(self):
        sim = Simulator()
        net = _two_server_net(sim)
        results = []

        def caller(sim):
            value = yield net.control_call("a", "b", lambda: "pong")
            results.append((sim.now, value))

        sim.process(caller(sim))
        sim.run()
        assert results and results[0][1] == "pong"
        assert results[0][0] >= net.control_rtt("a", "b")

    def test_control_call_to_failed_server_never_returns(self):
        sim = Simulator()
        net = _two_server_net(sim)
        net.servers["b"].fail()
        event = net.control_call("a", "b", lambda: "pong")
        sim.run()
        assert not event.triggered


class TestBalancedFlows:
    def test_even_spread(self):
        flows = balanced_flows(32, 8)
        counts = [0] * 8
        for flow in flows:
            counts[flow.rss_hash() % 8] += 1
        assert counts == [4] * 8

    def test_flows_distinct(self):
        flows = balanced_flows(64, 4)
        assert len(set(flows)) == 64

    def test_needs_positive_count(self):
        with pytest.raises(ValueError):
            balanced_flows(0, 4)


class TestTrafficGenerator:
    def test_deterministic_rate(self):
        sim = Simulator()
        received = []
        TrafficGenerator(sim, received.append, rate_pps=1000,
                         flows=balanced_flows(4, 1), count=10)
        sim.run()
        assert len(received) == 10
        assert received[-1].created_at == pytest.approx(0.010)

    def test_round_robin_over_flows(self):
        sim = Simulator()
        received = []
        flows = balanced_flows(3, 1)
        TrafficGenerator(sim, received.append, rate_pps=1e6,
                         flows=flows, count=6)
        sim.run()
        assert [p.flow for p in received] == flows + flows

    def test_poisson_arrivals_reproducible(self):
        def run(seed):
            sim = Simulator()
            stamps = []
            TrafficGenerator(sim, lambda p: stamps.append(p.created_at),
                             rate_pps=1e5, flows=balanced_flows(2, 1),
                             count=20, arrivals="poisson",
                             streams=RandomStreams(seed))
            sim.run()
            return stamps

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_poisson_mean_rate_close(self):
        sim = Simulator()
        count = 2000
        TrafficGenerator(sim, lambda p: None, rate_pps=1e6,
                         flows=balanced_flows(2, 1), count=count,
                         arrivals="poisson", streams=RandomStreams(1))
        sim.run()
        # Elapsed time should be close to count/rate.
        assert sim.now == pytest.approx(count / 1e6, rel=0.15)

    def test_stop_halts_emission(self):
        sim = Simulator()
        received = []
        gen = TrafficGenerator(sim, received.append, rate_pps=1000,
                               flows=balanced_flows(2, 1))
        sim.schedule_callback(0.0055, gen.stop)
        sim.run()
        assert len(received) == 5

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            TrafficGenerator(sim, lambda p: None, rate_pps=0,
                             flows=balanced_flows(1, 1))
        with pytest.raises(ValueError):
            TrafficGenerator(sim, lambda p: None, rate_pps=1,
                             flows=balanced_flows(1, 1), arrivals="bursty")

    def test_packet_size_applied(self):
        sim = Simulator()
        received = []
        TrafficGenerator(sim, received.append, rate_pps=1000,
                         flows=balanced_flows(1, 1), packet_size=512, count=3)
        sim.run()
        assert all(p.size == 512 for p in received)
