"""Tests for links and the multi-queue NIC model."""

from repro.net import FlowKey, Link, LossyLink, NIC, Packet
from repro.net.nic import DEFAULT_QUEUE_DEPTH
from repro.sim import Simulator


def _pkt(size=256, sport=1000):
    return Packet(flow=FlowKey(1, 2, sport, 80), size=size)


class TestLink:
    def test_delivers_after_delay_and_serialization(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, lambda p: arrivals.append((sim.now, p)),
                    delay_s=10e-6, bandwidth_bps=40e9)
        pkt = _pkt(size=500)
        link.send(pkt)
        sim.run()
        expected = 10e-6 + 500 * 8 / 40e9
        assert len(arrivals) == 1
        assert abs(arrivals[0][0] - expected) < 1e-12

    def test_fifo_no_overtaking(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, lambda p: arrivals.append(p.pid), delay_s=1e-6)
        small, big = _pkt(size=64), _pkt(size=9000)
        link.send(big)
        link.send(small)
        sim.run()
        assert arrivals == [big.pid, small.pid]

    def test_serialization_queues_back_to_back(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, lambda p: arrivals.append(sim.now),
                    delay_s=0.0, bandwidth_bps=8e6)  # 1 byte/us
        for _ in range(3):
            link.send(_pkt(size=100))
        sim.run()
        deltas = [arrivals[i + 1] - arrivals[i] for i in range(2)]
        assert all(abs(d - 100e-6) < 1e-9 for d in deltas)

    def test_counters(self):
        sim = Simulator()
        link = Link(sim, lambda p: None)
        link.send(_pkt(size=100))
        link.send(_pkt(size=200))
        assert link.tx_packets == 2
        assert link.tx_bytes == 300

    def test_lossy_link_drop_every(self):
        sim = Simulator()
        arrivals = []
        link = LossyLink(sim, lambda p: arrivals.append(p), drop_every=3)
        for _ in range(9):
            link.send(_pkt())
        sim.run()
        assert len(arrivals) == 6
        assert link.dropped == 3

    def test_lossy_link_drop_fn(self):
        sim = Simulator()
        arrivals = []
        link = LossyLink(sim, lambda p: arrivals.append(p),
                         drop_fn=lambda p: p.size > 1000)
        link.send(_pkt(size=1500))
        link.send(_pkt(size=100))
        sim.run()
        assert len(arrivals) == 1 and arrivals[0].size == 100
        assert link.dropped == 1


class TestNIC:
    def test_rss_spreads_flows(self):
        sim = Simulator()
        nic = NIC(sim, n_queues=4)
        seen_queues = set()
        for sport in range(100):
            seen_queues.add(nic.queue_for(_pkt(sport=sport)))
        assert seen_queues == {0, 1, 2, 3}

    def test_same_flow_same_queue(self):
        sim = Simulator()
        nic = NIC(sim, n_queues=8)
        first = nic.queue_for(_pkt(sport=42))
        for _ in range(10):
            assert nic.queue_for(_pkt(sport=42)) == first

    def test_engine_rate_cap(self):
        sim = Simulator()
        nic = NIC(sim, n_queues=1, pps_capacity=1e6)
        for _ in range(100):
            nic.receive(_pkt())
        sim.run()
        # 100 packets at 1 Mpps = 100 us for the last enqueue.
        assert abs(sim.now - 100e-6) < 1e-9
        assert nic.rx_packets == 100

    def test_queue_overflow_drops(self):
        sim = Simulator()
        nic = NIC(sim, n_queues=1, pps_capacity=1e9, queue_depth=10)
        for _ in range(25):
            nic.receive(_pkt())
        sim.run()
        assert nic.rx_packets == 10
        assert nic.rx_dropped == 15

    def test_consumption_frees_queue_space(self):
        sim = Simulator()
        nic = NIC(sim, n_queues=1, pps_capacity=1e9, queue_depth=10)
        consumed = []

        def consumer(sim):
            while True:
                pkt = yield nic.queues[0].get()
                consumed.append(pkt)
                yield sim.timeout(1e-9)

        sim.process(consumer(sim))
        for _ in range(25):
            nic.receive(_pkt())
        sim.run(until=1.0)
        assert len(consumed) + nic.depth(0) + nic.rx_dropped == 25
        assert nic.rx_dropped < 15  # consumer freed space

    def test_deliver_direct_bypasses_rss(self):
        sim = Simulator()
        nic = NIC(sim, n_queues=4)
        pkt = _pkt()
        target = (nic.queue_for(pkt) + 1) % 4  # deliberately not RSS's pick
        nic.deliver_direct(pkt, target)
        sim.run()
        assert nic.depth(target) == 1

    def test_depth_total(self):
        sim = Simulator()
        nic = NIC(sim, n_queues=2, pps_capacity=1e9)
        for sport in range(10):
            nic.receive(_pkt(sport=sport))
        sim.run()
        assert nic.depth() == 10

    def test_default_queue_depth_is_ring_sized(self):
        assert DEFAULT_QUEUE_DEPTH == 4096
