"""Tests for the flow-churn traffic generator."""

import pytest

from repro.net import FlowChurnGenerator
from repro.sim import RandomStreams, Simulator


class TestFlowChurn:
    def _run(self, seed=0, until=0.05, **kwargs):
        sim = Simulator()
        packets = []
        gen = FlowChurnGenerator(sim, packets.append,
                                 flow_arrival_rate=2000,
                                 flow_lifetime_s=5e-3,
                                 per_flow_pps=20_000,
                                 streams=RandomStreams(seed), **kwargs)
        sim.run(until=until)
        gen.stop()
        return gen, packets

    def test_flows_arrive_and_depart(self):
        gen, packets = self._run()
        assert gen.flows_started > 50
        assert gen.flows_finished > 0
        assert len(packets) == gen.packets_sent > 0

    def test_many_distinct_flows(self):
        _, packets = self._run()
        flows = {p.flow for p in packets}
        assert len(flows) > 50

    def test_flow_packets_contiguous_in_time(self):
        """Each flow's packets span roughly its lifetime, not the run."""
        gen, packets = self._run()
        by_flow = {}
        for p in packets:
            by_flow.setdefault(p.flow, []).append(p.created_at)
        spans = [max(ts) - min(ts) for ts in by_flow.values() if len(ts) > 1]
        assert spans
        # Mean span near the mean lifetime, far below the 50 ms run.
        assert sum(spans) / len(spans) < 0.02

    def test_offered_load_estimate(self):
        gen, packets = self._run(until=0.1)
        measured = len(packets) / 0.1
        assert measured == pytest.approx(gen.offered_pps, rel=0.35)

    def test_reproducible_by_seed(self):
        _, first = self._run(seed=3)
        _, second = self._run(seed=3)
        assert [p.flow for p in first] == [p.flow for p in second]
        _, third = self._run(seed=4)
        assert [p.flow for p in first] != [p.flow for p in third]

    def test_stop_halts_everything(self):
        sim = Simulator()
        packets = []
        gen = FlowChurnGenerator(sim, packets.append)
        sim.run(until=0.01)
        gen.stop()
        count = len(packets)
        sim.run(until=0.05)
        assert len(packets) <= count + gen.active_flows + 1

    def test_invalid_parameters(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FlowChurnGenerator(sim, lambda p: None, flow_arrival_rate=0)
