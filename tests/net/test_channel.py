"""Tests for the per-hop reliable channel (sequencing + retransmission)."""

import random

from repro.net import DataImpairment, FlowKey, Link, Packet, ReliableChannel
from repro.net.channel import Frame
from repro.sim import Simulator


def _pkt(size=256, sport=1000):
    return Packet(flow=FlowKey(1, 2, sport, 80), size=size)


class FlakyLink(Link):
    """Drops chosen transmissions by index (0-based, first copy only)."""

    def __init__(self, sim, sink, drop_nth=(), **kwargs):
        super().__init__(sim, sink, **kwargs)
        self._drop_nth = set(drop_nth)
        self._nth = 0

    def send(self, frame):
        n = self._nth
        self._nth += 1
        if n in self._drop_nth:
            self.tx_packets += 1
            self.tx_bytes += frame.wire_size
            return
        super().send(frame)


def _channel(sim, link, **kwargs):
    channel = ReliableChannel(sim, name="test-ch", **kwargs)
    channel.bind(link)
    return channel


class TestReliableChannel:
    def test_in_order_delivery_clean_link(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        channel = _channel(sim, link)
        packets = [_pkt() for _ in range(5)]
        for packet in packets:
            channel.send(packet)
        sim.run()
        assert arrivals == packets
        assert channel.delivered == 5
        assert channel.retransmissions == 0
        assert channel.inflight == 0

    def test_frame_carries_hop_header(self):
        pkt = _pkt(size=100)
        frame = Frame(0, 0, pkt, header_bytes=8)
        assert frame.wire_size == pkt.wire_size + 8

    def test_loss_repaired_by_nack_exactly_once_in_order(self):
        sim = Simulator()
        arrivals = []
        link = FlakyLink(sim, arrivals.append, drop_nth=(0,))
        channel = _channel(sim, link)
        packets = [_pkt() for _ in range(3)]
        for packet in packets:
            channel.send(packet)
        sim.run()
        assert arrivals == packets  # original order, nothing twice
        assert channel.retransmissions == 1
        assert channel.nacks_sent >= 1
        assert channel.inflight == 0

    def test_trailing_loss_repaired_by_timeout(self):
        sim = Simulator()
        arrivals = []
        link = FlakyLink(sim, arrivals.append, drop_nth=(0,))
        channel = _channel(sim, link)
        packet = _pkt()
        channel.send(packet)  # no later frame exposes the gap: RTO only
        sim.run()
        assert arrivals == [packet]
        assert channel.retransmissions >= 1
        assert channel.nacks_sent == 0
        assert channel.inflight == 0

    def test_duplicates_dropped(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        link.set_impairment(DataImpairment(dup_rate=1.0), random.Random(3))
        channel = _channel(sim, link)
        packets = [_pkt() for _ in range(4)]
        for packet in packets:
            channel.send(packet)
        sim.run()
        assert arrivals == packets
        assert channel.dup_dropped >= 4

    def test_reordering_restored(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        link.set_impairment(
            DataImpairment(reorder_rate=0.5, reorder_delay_s=100e-6),
            random.Random(5))
        channel = _channel(sim, link)
        packets = [_pkt() for _ in range(20)]
        for packet in packets:
            channel.send(packet)
        sim.run()
        assert arrivals == packets  # wire scrambled, egress in order
        assert link.impair_reordered > 0

    def test_corruption_recovered_like_loss(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        # Corrupt everything briefly; retransmissions sail through clean.
        link.set_impairment(
            DataImpairment(corrupt_rate=1.0, expires_at=1e-6),
            random.Random(5))
        channel = _channel(sim, link)
        packets = [_pkt() for _ in range(3)]
        for packet in packets:
            channel.send(packet)
        sim.run()
        assert arrivals == packets
        assert channel.corrupt_dropped == 3
        assert channel.retransmissions >= 3

    def test_window_backpressure(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        channel = _channel(sim, link, window=2)
        packets = [_pkt() for _ in range(5)]
        for packet in packets:
            channel.send(packet)
        assert channel.inflight == 2
        assert len(channel.txq) == 3
        assert channel.window_stalls == 3
        sim.run()  # ACKs open the window; queue drains in order
        assert arrivals == packets

    def test_epoch_fences_stale_frames(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        channel = _channel(sim, link)
        channel.send(_pkt())
        channel.reset()  # endpoint failed with the frame still in flight
        channel.bind(link)
        fresh = _pkt()
        channel.send(fresh)
        sim.run()
        assert arrivals == [fresh]
        assert channel.stale_dropped == 1
        assert channel.epoch == 1

    def test_unframed_traffic_passes_through(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        _channel(sim, link)
        raw = _pkt()
        link.send(raw)  # bypasses the channel sender entirely
        sim.run()
        assert arrivals == [raw]

    def test_bind_is_idempotent(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, arrivals.append)
        channel = _channel(sim, link)
        channel.bind(link)  # re-bind must not chain _on_wire onto itself
        channel.send(_pkt())
        sim.run()
        assert len(arrivals) == 1

    def test_stats_keys(self):
        sim = Simulator()
        link = Link(sim, lambda p: None)
        channel = _channel(sim, link)
        stats = channel.stats()
        for key in ("sent", "delivered", "retransmissions", "nacks_sent",
                    "dup_dropped", "corrupt_dropped", "stale_dropped",
                    "window_stalls", "inflight", "queued"):
            assert key in stats
