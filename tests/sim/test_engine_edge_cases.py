"""Edge-case tests for the simulation engine (failure plumbing etc.)."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, SimulationError, Simulator


class TestFailurePlumbing:
    def test_defused_failure_does_not_crash_run(self):
        sim = Simulator()
        event = sim.event()
        event.fail(ValueError("handled elsewhere"))
        event.defuse()
        sim.run()  # no raise

    def test_condition_failure_propagates_to_waiter(self):
        sim = Simulator()
        caught = []

        def proc(sim):
            bad = sim.event()
            good = sim.timeout(10)
            condition = AllOf(sim, [bad, good])
            bad.fail(RuntimeError("member died"))
            try:
                yield condition
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(proc(sim))
        sim.run()
        assert caught == ["member died"]

    def test_any_of_failure_first(self):
        sim = Simulator()
        caught = []

        def proc(sim):
            bad = sim.event()
            condition = AnyOf(sim, [bad, sim.timeout(10)])
            bad.fail(KeyError("boom"))
            try:
                yield condition
            except KeyError:
                caught.append(True)

        sim.process(proc(sim))
        sim.run()
        assert caught == [True]

    def test_exception_inside_process_fails_its_event(self):
        sim = Simulator()
        outcomes = []

        def child(sim):
            yield sim.timeout(1)
            raise ValueError("child broke")

        def parent(sim):
            try:
                yield sim.process(child(sim))
            except ValueError as exc:
                outcomes.append(str(exc))

        sim.process(parent(sim))
        sim.run()
        assert outcomes == ["child broke"]


class TestEventSemantics:
    def test_event_value_before_trigger_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().value

    def test_fail_requires_exception(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_succeed_with_delay(self):
        sim = Simulator()
        seen = []
        event = sim.event()
        event.succeed("late", delay=5.0)

        def proc(sim):
            value = yield event
            seen.append((sim.now, value))

        sim.process(proc(sim))
        sim.run()
        assert seen == [(5.0, "late")]

    def test_interrupt_cause_accessible(self):
        sim = Simulator()
        causes = []

        def victim(sim):
            try:
                yield sim.timeout(100)
            except Interrupt as intr:
                causes.append(intr.cause)

        proc = sim.process(victim(sim))
        sim.schedule_callback(1.0, lambda: proc.interrupt({"reason": "test"}))
        sim.run()
        assert causes == [{"reason": "test"}]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run():
            sim = Simulator()
            trace = []

            def worker(sim, tag, delay):
                for _ in range(5):
                    yield sim.timeout(delay)
                    trace.append((sim.now, tag))

            for tag, delay in (("a", 0.3), ("b", 0.7), ("c", 0.31)):
                sim.process(worker(sim, tag, delay))
            sim.run()
            return trace

        assert run() == run()

    def test_two_simulators_are_independent(self):
        first, second = Simulator(), Simulator()
        first.timeout(5)
        second.timeout(1)
        first.run()
        second.run()
        assert first.now == 5 and second.now == 1

    def test_cross_simulator_condition_rejected(self):
        first, second = Simulator(), Simulator()
        with pytest.raises(SimulationError):
            AllOf(first, [second.timeout(1)])
