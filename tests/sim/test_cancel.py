"""Event cancellation semantics (the AnyOf-loser withdrawal primitive)."""

from repro.sim import AnyOf, Simulator


class TestCancel:
    def test_cancelled_callback_never_runs(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_callback(1.0, lambda: fired.append(True))
        event.cancel()
        sim.run(until=2.0)
        assert fired == []

    def test_cancelled_timeout_does_not_trigger(self):
        sim = Simulator()
        timeout = sim.timeout(1.0)
        timeout.cancel()
        sim.run(until=2.0)
        assert not timeout.processed

    def test_late_succeed_is_silent(self):
        sim = Simulator()
        event = sim.event()
        event.cancel()
        event.succeed(42)  # must not raise or trigger
        event.fail(RuntimeError("late"))  # must not raise either
        sim.run(until=1.0)
        assert not event.triggered

    def test_cancel_after_processed_is_noop(self):
        sim = Simulator()
        timeout = sim.timeout(0.5)
        sim.run(until=1.0)
        assert timeout.processed
        timeout.cancel()  # no-op
        assert timeout.processed

    def test_anyof_loser_cancellation_pattern(self):
        """The race idiom: cancel whichever of (call, deadline) loses."""
        sim = Simulator()
        outcome = []

        def racer():
            fast = sim.timeout(0.1, value="fast")
            slow = sim.timeout(5.0, value="slow")
            yield AnyOf(sim, [fast, slow])
            if fast.processed:
                slow.cancel()
                outcome.append("fast")
            else:
                fast.cancel()
                outcome.append("slow")

        sim.process(racer())
        sim.run(until=10.0)
        assert outcome == ["fast"]

    def test_cancelled_event_does_not_advance_clock(self):
        sim = Simulator()
        seen = []
        far = sim.schedule_callback(100.0, lambda: None)
        far.cancel()
        sim.schedule_callback(1.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.0]
        assert sim.now <= 100.0
