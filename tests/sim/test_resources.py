"""Unit tests for Store, Resource, and RateLimiter."""

import pytest

from repro.sim import CancelledError, RateLimiter, Resource, SimulationError, Simulator, Store


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer(sim):
            yield store.put("a")
            yield store.put("b")

        def consumer(sim):
            got.append((yield store.get()))
            got.append((yield store.get()))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim):
            got.append(((yield store.get()), sim.now))

        def producer(sim):
            yield sim.timeout(3)
            yield store.put("x")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert got == [("x", 3.0)]

    def test_put_blocks_when_full(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        log = []

        def producer(sim):
            yield store.put("a")
            log.append(("a-in", sim.now))
            yield store.put("b")
            log.append(("b-in", sim.now))

        def consumer(sim):
            yield sim.timeout(5)
            yield store.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert log == [("a-in", 0.0), ("b-in", 5.0)]

    def test_fifo_ordering_of_getters(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer(sim, tag):
            item = yield store.get()
            got.append((tag, item))

        sim.process(consumer(sim, "first"))
        sim.process(consumer(sim, "second"))

        def producer(sim):
            yield sim.timeout(1)
            yield store.put(1)
            yield store.put(2)

        sim.process(producer(sim))
        sim.run()
        assert got == [("first", 1), ("second", 2)]

    def test_try_put_respects_capacity(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)
        assert len(store) == 2

    def test_try_get_empty_returns_none(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() is None

    def test_try_get_returns_item(self):
        sim = Simulator()
        store = Store(sim)
        store.try_put("z")
        assert store.try_get() == "z"

    def test_cancel_pending_get(self):
        sim = Simulator()
        store = Store(sim)
        outcomes = []

        def consumer(sim):
            request = store.get()
            try:
                yield request
            except CancelledError:
                outcomes.append("cancelled")

        def canceller(sim, request_holder):
            yield sim.timeout(1)
            request_holder[0].cancel()

        # Start the consumer, grab its pending request from the queue.
        sim.process(consumer(sim))
        sim.run(until=0.5)
        pending = [store._getters[0]]
        sim.process(canceller(sim, pending))
        sim.run()
        assert outcomes == ["cancelled"]
        # A later put should not be consumed by the cancelled getter.
        store.try_put("live")
        assert store.try_get() == "live"

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)


class TestResource:
    def test_capacity_limits_concurrency(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        active_log = []

        def worker(sim, tag):
            req = res.request()
            yield req
            active_log.append((tag, "start", sim.now, res.count))
            yield sim.timeout(10)
            res.release(req)

        for tag in range(4):
            sim.process(worker(sim, tag))
        sim.run()
        starts = [entry[2] for entry in active_log]
        assert starts == [0, 0, 10, 10]
        assert all(entry[3] <= 2 for entry in active_log)

    def test_release_unowned_rejected(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        fake = res.request()
        sim.run()
        res.release(fake)
        with pytest.raises(SimulationError):
            res.release(fake)

    def test_cancel_waiting_request(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        held = res.request()
        sim.run()
        assert held.triggered

        waiting = res.request()
        waiting.cancel()
        outcomes = []

        def proc(sim):
            try:
                yield waiting
            except CancelledError:
                outcomes.append("cancelled")

        sim.process(proc(sim))
        sim.run()
        assert outcomes == ["cancelled"]
        # Releasing must not grant to the cancelled waiter.
        res.release(held)
        assert res.count == 0


class TestRateLimiter:
    def test_spacing_at_rate(self):
        sim = Simulator()
        limiter = RateLimiter(sim, rate=10.0)  # 0.1 s per item
        finish_times = []

        def sender(sim):
            for _ in range(3):
                yield limiter.admit()
                finish_times.append(round(sim.now, 9))

        sim.process(sender(sim))
        sim.run()
        assert finish_times == [0.1, 0.2, 0.3]

    def test_idle_period_resets_next_free(self):
        sim = Simulator()
        limiter = RateLimiter(sim, rate=10.0)
        finish_times = []

        def sender(sim):
            yield limiter.admit()
            finish_times.append(sim.now)
            yield sim.timeout(10)
            yield limiter.admit()
            finish_times.append(sim.now)

        sim.process(sender(sim))
        sim.run()
        assert finish_times == [0.1, 10.2]

    def test_cost_fn_adds_service_time(self):
        sim = Simulator()
        limiter = RateLimiter(sim, rate=10.0, cost_fn=lambda item: item)
        finish = []

        def sender(sim):
            yield limiter.admit(0.4)  # 0.1 + 0.4
            finish.append(sim.now)

        sim.process(sender(sim))
        sim.run()
        assert finish == [0.5]

    def test_backlog_reflects_queued_work(self):
        sim = Simulator()
        limiter = RateLimiter(sim, rate=1.0)
        limiter.admission_delay()
        limiter.admission_delay()
        assert limiter.backlog == 2.0

    def test_invalid_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            RateLimiter(sim, rate=0)

    def test_admitted_counter(self):
        sim = Simulator()
        limiter = RateLimiter(sim, rate=100.0)
        for _ in range(5):
            limiter.admission_delay()
        assert limiter.admitted == 5
