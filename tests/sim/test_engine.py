"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    times = []

    def proc(sim):
        yield sim.timeout(1.5)
        times.append(sim.now)
        yield sim.timeout(2.5)
        times.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert times == [1.5, 4.0]


def test_timeout_value_passthrough():
    sim = Simulator()
    seen = []

    def proc(sim):
        value = yield sim.timeout(1.0, value="hello")
        seen.append(value)

    sim.process(proc(sim))
    sim.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.timeout(-1)


def test_events_fire_in_time_order():
    sim = Simulator()
    order = []

    def proc(sim, delay, tag):
        yield sim.timeout(delay)
        order.append(tag)

    sim.process(proc(sim, 3, "c"))
    sim.process(proc(sim, 1, "a"))
    sim.process(proc(sim, 2, "b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fifo_by_schedule_order():
    sim = Simulator()
    order = []

    def proc(sim, tag):
        yield sim.timeout(1)
        order.append(tag)

    for tag in "abcd":
        sim.process(proc(sim, tag))
    sim.run()
    assert order == list("abcd")


def test_process_return_value_visible_to_parent():
    sim = Simulator()
    results = []

    def child(sim):
        yield sim.timeout(2)
        return 42

    def parent(sim):
        value = yield sim.process(child(sim))
        results.append((sim.now, value))

    sim.process(parent(sim))
    sim.run()
    assert results == [(2.0, 42)]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    seen = []

    def waiter(sim, event):
        value = yield event
        seen.append((sim.now, value))

    def firer(sim, event):
        yield sim.timeout(5)
        event.succeed("boom")

    event = sim.event()
    sim.process(waiter(sim, event))
    sim.process(firer(sim, event))
    sim.run()
    assert seen == [(5.0, "boom")]


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    caught = []

    def waiter(sim, event):
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    event = sim.event()
    sim.process(waiter(sim, event))
    event.fail(ValueError("nope"))
    sim.run()
    assert caught == ["nope"]


def test_unhandled_failure_propagates_out_of_run():
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(1)
        raise RuntimeError("boom")

    sim.process(proc(sim))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run()


def test_run_until_time_stops_exactly():
    sim = Simulator()
    ticks = []

    def proc(sim):
        while True:
            yield sim.timeout(1)
            ticks.append(sim.now)

    sim.process(proc(sim))
    sim.run(until=5.5)
    assert ticks == [1, 2, 3, 4, 5]
    assert sim.now == 5.5


def test_run_until_event_returns_value():
    sim = Simulator()

    def child(sim):
        yield sim.timeout(3)
        return "done"

    assert sim.run(until=sim.process(child(sim))) == "done"
    assert sim.now == 3.0


def test_run_until_past_time_rejected():
    sim = Simulator()
    sim.run(until=10)
    with pytest.raises(SimulationError):
        sim.run(until=5)


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def victim(sim):
        try:
            yield sim.timeout(100)
        except Interrupt as intr:
            log.append((sim.now, intr.cause))

    def attacker(sim, proc):
        yield sim.timeout(2)
        proc.interrupt(cause="failure")

    proc = sim.process(victim(sim))
    sim.process(attacker(sim, proc))
    sim.run()
    assert log == [(2.0, "failure")]


def test_interrupt_terminated_process_rejected():
    sim = Simulator()

    def victim(sim):
        yield sim.timeout(1)

    proc = sim.process(victim(sim))
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_interrupted_process_can_continue_waiting():
    sim = Simulator()
    log = []

    def victim(sim):
        deadline = sim.timeout(10)
        try:
            yield deadline
        except Interrupt:
            log.append(("interrupted", sim.now))
        yield sim.timeout(1)
        log.append(("resumed", sim.now))

    proc = sim.process(victim(sim))

    def attacker(sim):
        yield sim.timeout(4)
        proc.interrupt()

    sim.process(attacker(sim))
    sim.run()
    assert log == [("interrupted", 4.0), ("resumed", 5.0)]


def test_yield_non_event_rejected():
    sim = Simulator()

    def proc(sim):
        yield 42

    sim.process(proc(sim))
    with pytest.raises(SimulationError):
        sim.run()


def test_any_of_triggers_on_first():
    sim = Simulator()
    results = []

    def proc(sim):
        first = sim.timeout(1, value="fast")
        second = sim.timeout(5, value="slow")
        outcome = yield AnyOf(sim, [first, second])
        results.append((sim.now, list(outcome.values())))

    sim.process(proc(sim))
    sim.run()
    assert results == [(1.0, ["fast"])]


def test_all_of_waits_for_all():
    sim = Simulator()
    results = []

    def proc(sim):
        events = [sim.timeout(t, value=t) for t in (3, 1, 2)]
        outcome = yield AllOf(sim, events)
        results.append((sim.now, sorted(outcome.values())))

    sim.process(proc(sim))
    sim.run()
    assert results == [(3.0, [1, 2, 3])]


def test_all_of_empty_succeeds_immediately():
    sim = Simulator()
    done = []

    def proc(sim):
        yield AllOf(sim, [])
        done.append(sim.now)

    sim.process(proc(sim))
    sim.run()
    assert done == [0.0]


def test_schedule_callback_runs_at_time():
    sim = Simulator()
    hits = []
    sim.schedule_callback(2.5, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [2.5]


def test_peek_reports_next_event_time():
    sim = Simulator()
    sim.timeout(7)
    assert sim.peek() == 7.0


def test_peek_empty_queue_is_inf():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_step_without_events_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.step()


def test_nested_process_spawning():
    sim = Simulator()
    order = []

    def grandchild(sim):
        yield sim.timeout(1)
        order.append("grandchild")

    def child(sim):
        yield sim.process(grandchild(sim))
        order.append("child")

    def parent(sim):
        yield sim.process(child(sim))
        order.append("parent")

    sim.process(parent(sim))
    sim.run()
    assert order == ["grandchild", "child", "parent"]


def test_many_processes_scale():
    sim = Simulator()
    counter = []

    def proc(sim, start):
        yield sim.timeout(start)
        counter.append(start)

    for i in range(1000):
        sim.process(proc(sim, i))
    sim.run()
    assert len(counter) == 1000
    assert counter == sorted(counter)


def test_process_waiting_on_already_processed_event():
    sim = Simulator()
    log = []
    event = sim.event()
    event.succeed("early")
    sim.run()  # processes the event with no listeners

    def late(sim):
        value = yield event
        log.append(value)

    sim.process(late(sim))
    sim.run()
    assert log == ["early"]
