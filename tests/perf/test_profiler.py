"""StageProfiler: recording, reporting, exports, and the null path."""

import json

from repro.perf import (
    NULL_PROFILER,
    NullProfiler,
    STAGES,
    STAGE_TREE,
    StageProfiler,
    collapsed_lines,
    exclusive_seconds,
    speedscope_doc,
)
from repro.telemetry import MetricRegistry


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step=1e-3):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


class TestRecording:
    def test_add_accumulates_calls_and_seconds(self):
        prof = StageProfiler(clock=FakeClock(step=1e-3))
        for _ in range(3):
            t0 = prof.t0()
            prof.add("stm/commit", t0)
        assert prof.calls["stm/commit"] == 3
        # Each t0()/add() pair brackets exactly one clock step.
        assert abs(prof.wall_s("stm/commit") - 3e-3) < 1e-12

    def test_add_with_batch_count(self):
        prof = StageProfiler(clock=FakeClock())
        t0 = prof.t0()
        prof.add("depvec/merge", t0, n=7)
        assert prof.calls["depvec/merge"] == 7

    def test_count_adds_no_wall_time(self):
        prof = StageProfiler(clock=FakeClock())
        prof.count("channel/ack", n=2)
        assert prof.calls["channel/ack"] == 2
        assert prof.wall_s("channel/ack") == 0.0

    def test_merge_folds_aggregates(self):
        a = StageProfiler(clock=FakeClock())
        b = StageProfiler(clock=FakeClock())
        for prof in (a, b):
            t0 = prof.t0()
            prof.add("buffer/hold", t0)
        a.merge(b)
        assert a.calls["buffer/hold"] == 2
        assert abs(a.wall_s("buffer/hold") - 2e-3) < 1e-12


class TestReport:
    def _sample(self):
        prof = StageProfiler(clock=FakeClock(step=1e-3))
        for stage in ("stm/commit", "engine/dispatch", "buffer/hold"):
            t0 = prof.t0()
            prof.add(stage, t0)
        prof.count("custom/stage")
        return prof

    def test_taxonomy_order_then_extras(self):
        report = self._sample().report()
        keys = list(report)
        assert keys[:3] == ["engine/dispatch", "stm/commit", "buffer/hold"]
        assert keys[3] == "custom/stage"

    def test_per_packet_fields_only_with_packets(self):
        prof = self._sample()
        bare = prof.report()
        assert "us_per_packet" not in bare["stm/commit"]
        amortized = prof.report(packets=100)
        entry = amortized["stm/commit"]
        assert entry["us_per_packet"] == entry["wall_s"] * 1e6 / 100
        assert entry["calls_per_packet"] == 0.01

    def test_publish_mirrors_into_registry(self):
        prof = self._sample()
        registry = MetricRegistry()
        prof.publish(registry, packets=10)
        snap = registry.snapshot()
        assert snap["perf/stm/commit/calls"] == 1
        assert snap["perf/stm/commit/wall_us"] > 0
        assert "perf/stm/commit/us_per_packet" in snap


class TestNullProfiler:
    def test_singleton_is_disabled(self):
        assert isinstance(NULL_PROFILER, NullProfiler)
        assert NULL_PROFILER.enabled is False
        assert StageProfiler.enabled is True

    def test_all_hooks_are_noops(self):
        t0 = NULL_PROFILER.t0()
        NULL_PROFILER.add("stm/commit", t0)
        NULL_PROFILER.count("stm/commit")
        NULL_PROFILER.publish(MetricRegistry(), packets=5)
        assert NULL_PROFILER.report() == {}
        assert NULL_PROFILER.wall_s("stm/commit") == 0.0

    def test_no_instance_state(self):
        assert NullProfiler.__slots__ == ()


class TestStageTree:
    def test_every_stage_has_a_tree_entry(self):
        assert set(STAGE_TREE) == set(STAGES)

    def test_single_root(self):
        roots = [s for s, p in STAGE_TREE.items() if p is None]
        assert roots == ["engine/dispatch"]

    def test_parents_are_stages(self):
        for parent in STAGE_TREE.values():
            assert parent is None or parent in STAGES


class TestExports:
    def _stages(self):
        # dispatch 10ms total; commit 3ms and hold 4ms inside it;
        # release 1ms inside hold.
        return {
            "engine/dispatch": {"calls": 10, "wall_s": 10e-3},
            "stm/commit": {"calls": 5, "wall_s": 3e-3},
            "buffer/hold": {"calls": 4, "wall_s": 4e-3},
            "buffer/release": {"calls": 4, "wall_s": 1e-3},
        }

    def test_exclusive_subtracts_children(self):
        self_time = exclusive_seconds(self._stages())
        assert abs(self_time["engine/dispatch"] - 3e-3) < 1e-12
        assert abs(self_time["buffer/hold"] - 3e-3) < 1e-12
        assert abs(self_time["stm/commit"] - 3e-3) < 1e-12
        assert abs(self_time["buffer/release"] - 1e-3) < 1e-12

    def test_exclusive_clamps_at_zero(self):
        stages = {"engine/dispatch": {"calls": 1, "wall_s": 1e-3},
                  "stm/commit": {"calls": 1, "wall_s": 2e-3}}
        assert exclusive_seconds(stages)["engine/dispatch"] == 0.0

    def test_collapsed_lines_are_rooted_integer_micros(self):
        lines = collapsed_lines(self._stages())
        by_stack = dict(line.rsplit(" ", 1) for line in lines)
        assert by_stack["engine/dispatch"] == "3000"
        assert by_stack["engine/dispatch;buffer/hold;buffer/release"] == \
            "1000"

    def test_speedscope_doc_shape(self):
        doc = speedscope_doc(self._stages(), name="unit")
        assert doc["$schema"].startswith("https://www.speedscope.app")
        profile = doc["profiles"][0]
        assert profile["type"] == "sampled"
        assert len(profile["samples"]) == len(profile["weights"]) == 4
        assert profile["endValue"] == round(sum(profile["weights"]), 3)
        # Every frame index must resolve.
        n_frames = len(doc["shared"]["frames"])
        assert all(0 <= i < n_frames
                   for stack in profile["samples"] for i in stack)
        json.dumps(doc)  # must be serializable
