"""CounterSampler: Chrome counter tracks that validate cleanly."""

import pytest

from repro.core import FTCChain
from repro.core.admission import AdmissionControl, BackpressureBus
from repro.metrics import EgressRecorder
from repro.middlebox import ch_n
from repro.net import TrafficGenerator, balanced_flows
from repro.perf.counters import COUNTER_TID, CounterSampler
from repro.sim import Simulator
from repro.telemetry import Telemetry
from repro.telemetry.trace import validate_chrome_trace


def _run(with_admission=False):
    sim = Simulator()
    telemetry = Telemetry(sample_every=1)
    egress = EgressRecorder(sim)
    admission = None
    if with_admission:
        admission = AdmissionControl(sim, rate_pps=4e5,
                                     bus=BackpressureBus(),
                                     telemetry=telemetry)
    chain = FTCChain(sim, ch_n(2, n_threads=2), f=1, deliver=egress,
                     n_threads=2, seed=0, admission=admission,
                     telemetry=telemetry)
    chain.start()
    sampler = CounterSampler(sim, telemetry.tracer, chain,
                             interval_s=0.5e-3)
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=2e5,
                                 flows=balanced_flows(8, 2))
    sim.run(until=5e-3)
    generator.stop()
    sampler.stop()
    sim.run(until=8e-3)
    return sampler, telemetry.tracer.export()


class TestCounterSampler:
    def test_emits_validating_counter_events(self):
        sampler, doc = _run()
        assert sampler.samples > 0
        assert validate_chrome_trace(doc) == []
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert len(counters) == sampler.samples
        event = counters[0]
        assert event["tid"] == COUNTER_TID
        assert set(event["args"]) == {"nic_queued", "buffer_held"}
        assert all(isinstance(v, (int, float))
                   for v in event["args"].values())

    def test_buffer_occupancy_moves_under_load(self):
        # NIC queues drain within a virtual instant, so the held-buffer
        # series is the one that shows structure at sampling cadence.
        _, doc = _run()
        held = [e["args"]["buffer_held"]
                for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert max(held) > 0

    def test_backpressure_track_when_admission_wired(self):
        _, doc = _run(with_admission=True)
        names = {e["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "C"}
        assert names == {"queue-depth", "backpressure"}
        bus_values = [e["args"]["bus_utilization"]
                      for e in doc["traceEvents"]
                      if e.get("ph") == "C" and e["name"] == "backpressure"]
        assert all(0.0 <= v <= 1.0 for v in bus_values)

    def test_thread_name_metadata(self):
        _, doc = _run()
        meta = [e for e in doc["traceEvents"]
                if e.get("ph") == "M" and e.get("tid") == COUNTER_TID]
        assert any(e["args"]["name"] == "perf counters" for e in meta)

    def test_stop_halts_sampling(self):
        sim = Simulator()
        telemetry = Telemetry(sample_every=1)
        egress = EgressRecorder(sim)
        chain = FTCChain(sim, ch_n(2, n_threads=2), f=1, deliver=egress,
                         n_threads=2, seed=0, telemetry=telemetry)
        chain.start()
        sampler = CounterSampler(sim, telemetry.tracer, chain,
                                 interval_s=1e-3)
        sim.run(until=2.5e-3)
        seen = sampler.samples
        sampler.stop()
        sim.run(until=10e-3)
        assert sampler.samples <= seen + 1

    def test_rejects_bad_interval(self):
        sim = Simulator()
        telemetry = Telemetry()
        with pytest.raises(ValueError):
            CounterSampler(sim, telemetry.tracer, chain=None, interval_s=0)


class TestValidatorCounterRules:
    def test_counter_event_needs_numeric_args(self):
        bad = {"traceEvents": [
            {"name": "c", "cat": "perf", "ph": "C", "ts": 0.0,
             "pid": 0, "tid": 1, "args": {"x": "not-a-number"}}]}
        assert validate_chrome_trace(bad) != []

    def test_counter_event_needs_nonempty_args(self):
        bad = {"traceEvents": [
            {"name": "c", "cat": "perf", "ph": "C", "ts": 0.0,
             "pid": 0, "tid": 1, "args": {}}]}
        assert validate_chrome_trace(bad) != []

    def test_good_counter_event_passes(self):
        good = {"traceEvents": [
            {"name": "c", "cat": "perf", "ph": "C", "ts": 0.0,
             "pid": 0, "tid": 1, "args": {"depth": 3}}]}
        assert validate_chrome_trace(good) == []
