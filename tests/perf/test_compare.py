"""Regression-gate math: tolerance edges, missing scenarios, rendering."""

import json

from repro.perf import (
    DEFAULT_TOLERANCE,
    compare_dirs,
    compare_reports,
    headline_pps,
    load_reports,
    render_markdown,
)


def _report(scenario, pps, stages=None):
    return {"schema_version": 2, "scenario": scenario,
            "results": {"sim_pps_per_wall_s": pps},
            "stages": stages or {}}


class TestHeadline:
    def test_reads_dict_results(self):
        assert headline_pps(_report("baseline", 1234)) == 1234.0

    def test_list_results_are_not_gated(self):
        # v2 BENCH_throughput.json keeps v1's mode list under results.
        assert headline_pps({"results": [{"sim_pps_per_wall_s": 9}]}) == 0.0

    def test_absent_results(self):
        assert headline_pps({}) == 0.0


class TestCompareReports:
    def test_within_tolerance_is_ok(self):
        row = compare_reports("s", _report("s", 1000), _report("s", 900),
                              tolerance=0.15)
        assert row["status"] == "ok"
        assert row["ratio"] == 0.9

    def test_exactly_at_tolerance_edge_is_ok(self):
        # ratio == 1 - tolerance is NOT < the threshold: no failure.
        row = compare_reports("s", _report("s", 1000), _report("s", 850),
                              tolerance=0.15)
        assert row["status"] == "ok"

    def test_twenty_percent_regression_fails(self):
        row = compare_reports("s", _report("s", 1000), _report("s", 800),
                              tolerance=0.15)
        assert row["status"] == "regression"
        assert any("tolerance" in n for n in row["notes"])

    def test_improvement_beyond_tolerance(self):
        row = compare_reports("s", _report("s", 1000), _report("s", 1300),
                              tolerance=0.15)
        assert row["status"] == "improved"

    def test_zero_baseline_is_warning_not_failure(self):
        row = compare_reports("s", _report("s", 0), _report("s", 500))
        assert row["status"] == "warning"
        assert row["ratio"] is None

    def test_missing_current_is_failure_status(self):
        row = compare_reports("s", _report("s", 1000), None)
        assert row["status"] == "missing"

    def test_new_scenario_is_informational(self):
        row = compare_reports("s", None, _report("s", 1000))
        assert row["status"] == "new"

    def test_stage_deltas_annotate_but_do_not_gate(self):
        base = _report("s", 1000,
                       stages={"stm/commit": {"us_per_packet": 10.0}})
        cur = _report("s", 1000,
                      stages={"stm/commit": {"us_per_packet": 20.0}})
        row = compare_reports("s", base, cur, tolerance=0.15)
        assert row["status"] == "ok"
        assert any("stm/commit" in n for n in row["notes"])

    def test_small_stage_deltas_stay_quiet(self):
        base = _report("s", 1000,
                       stages={"stm/commit": {"us_per_packet": 10.0}})
        cur = _report("s", 1000,
                      stages={"stm/commit": {"us_per_packet": 11.0}})
        row = compare_reports("s", base, cur, tolerance=0.15)
        assert row["notes"] == []


class TestCompareDirs:
    def _write(self, directory, reports):
        directory.mkdir(parents=True, exist_ok=True)
        for report in reports:
            path = directory / f"BENCH_{report['scenario']}.json"
            path.write_text(json.dumps(report))

    def test_injected_regression_fails_the_gate(self, tmp_path):
        self._write(tmp_path / "base", [_report("a", 1000),
                                        _report("b", 2000)])
        self._write(tmp_path / "cur", [_report("a", 1000),
                                       _report("b", 1500)])  # -25%
        outcome = compare_dirs(str(tmp_path / "base"),
                               str(tmp_path / "cur"),
                               tolerance=DEFAULT_TOLERANCE)
        assert outcome["failed"] is True
        by = {r["scenario"]: r["status"] for r in outcome["rows"]}
        assert by == {"a": "ok", "b": "regression"}

    def test_missing_scenario_fails_the_gate(self, tmp_path):
        self._write(tmp_path / "base", [_report("a", 1000),
                                        _report("b", 2000)])
        self._write(tmp_path / "cur", [_report("a", 1000)])
        outcome = compare_dirs(str(tmp_path / "base"),
                               str(tmp_path / "cur"))
        assert outcome["failed"] is True

    def test_identical_dirs_pass(self, tmp_path):
        self._write(tmp_path / "base", [_report("a", 1000)])
        self._write(tmp_path / "cur", [_report("a", 1000)])
        assert compare_dirs(str(tmp_path / "base"),
                            str(tmp_path / "cur"))["failed"] is False

    def test_nonexistent_dir_loads_empty(self, tmp_path):
        assert load_reports(str(tmp_path / "nope")) == {}

    def test_filename_fallback_for_scenario_key(self, tmp_path):
        directory = tmp_path / "d"
        directory.mkdir()
        (directory / "BENCH_legacy.json").write_text(
            json.dumps({"results": {"sim_pps_per_wall_s": 5}}))
        assert "legacy" in load_reports(str(directory))


class TestRenderMarkdown:
    def test_table_and_verdict(self, tmp_path):
        outcome = {"tolerance": 0.15, "failed": True, "rows": [
            compare_reports("a", _report("a", 1000), _report("a", 700))]}
        text = render_markdown(outcome)
        assert "### Perf regression gate" in text
        assert "| a |" in text
        assert "-30.0%" in text
        assert "gate **FAILED**" in text

    def test_pass_verdict(self):
        outcome = {"tolerance": 0.15, "failed": False, "rows": []}
        assert render_markdown(outcome).endswith("gate passed")
