"""Bench suite: schema, determinism, and the zero-perturbation pledge."""

import json

import pytest

from repro.perf import StageProfiler
from repro.perf.bench import (
    SCHEMA_VERSION,
    bench_scenario,
    env_metadata,
    write_report,
)
from repro.perf.scenarios import SCENARIOS, run_scenario, scenario_names


class TestScenarioRegistry:
    def test_six_scenarios(self):
        assert scenario_names() == [
            "baseline", "reliable-links", "lossy", "ctrlplane-failover",
            "reconfig-under-traffic", "overload"]

    def test_cli_choices_stay_in_sync(self):
        from repro.perf.cli import SCENARIO_CHOICES
        assert tuple(scenario_names()) == SCENARIO_CHOICES

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("nope")


class TestDeterminism:
    def test_same_seed_same_results_and_call_counts(self):
        profilers = [StageProfiler(), StageProfiler()]
        results = [run_scenario("baseline", seed=3, quick=True, profiler=p)
                   for p in profilers]
        assert results[0] == results[1]
        assert profilers[0].calls == profilers[1].calls

    def test_profiler_does_not_perturb_virtual_time(self):
        plain = run_scenario("baseline", seed=1, quick=True, profiler=None)
        profiled = run_scenario("baseline", seed=1, quick=True,
                                profiler=StageProfiler())
        assert plain == profiled


class TestBenchScenario:
    @pytest.fixture(scope="class")
    def report(self):
        return bench_scenario("baseline", seed=0, quick=True)

    def test_schema_fields(self, report):
        assert report["schema_version"] == SCHEMA_VERSION
        assert report["scenario"] == "baseline"
        for key in ("python", "platform", "git_sha", "seed", "quick"):
            assert key in report["env"]
        results = report["results"]
        assert results["released"] > 0
        assert results["sim_pps_per_wall_s"] > 0
        assert results["wall_s"] > 0

    def test_stage_breakdown_present(self, report):
        stages = report["stages"]
        assert "engine/dispatch" in stages
        assert "stm/commit" in stages
        entry = stages["stm/commit"]
        assert entry["calls"] > 0
        assert "us_per_packet" in entry
        assert "calls_per_packet" in entry

    def test_report_is_json_serializable(self, report):
        json.dumps(report)

    def test_write_report_filename(self, report, tmp_path):
        path = write_report(report, str(tmp_path))
        assert path.endswith("BENCH_baseline.json")
        assert json.load(open(path))["scenario"] == "baseline"


class TestEnvMetadata:
    def test_carries_seed_and_quick(self):
        env = env_metadata(seed=7, quick=True)
        assert env["seed"] == 7 and env["quick"] is True
        assert env["implementation"] == "CPython"


class TestScenarioShapes:
    """Cheap structural checks on the non-baseline scenarios (quick)."""

    def test_overload_sheds(self):
        result = run_scenario("overload", seed=0, quick=True)
        assert result["admitted"] + result["shed"] == result["offered"]
        assert result["shed"] > 0

    def test_lossy_retransmits_and_recovers(self):
        result = run_scenario("lossy", seed=0, quick=True)
        assert result["released"] == result["offered"]
        assert result["retransmissions"] > 0

    def test_reconfig_commits(self):
        result = run_scenario("reconfig-under-traffic", seed=0, quick=True)
        assert result["reconfig_committed"] is True
        assert result["released"] == result["offered"]

    def test_ctrlplane_recovers(self):
        result = run_scenario("ctrlplane-failover", seed=0, quick=True)
        assert result["recoveries"] >= 1
