"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_middleboxes_and_systems(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("mazunat", "monitor", "ids", "policer",
                         "ftc", "ftmb", "fig9"):
            assert expected in out


class TestRun:
    def test_run_ftc_chain(self, capsys):
        code = main(["run", "--chain", "monitor,monitor", "--system", "ftc",
                     "--rate", "5e5", "--duration", "0.004",
                     "--threads", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FTC chain" in out
        assert "throughput" in out
        assert "monitor0 -> monitor1" in out

    def test_run_nf_chain(self, capsys):
        assert main(["run", "--chain", "firewall", "--system", "nf",
                     "--rate", "5e5", "--duration", "0.003",
                     "--threads", "2"]) == 0
        assert "NF chain" in capsys.readouterr().out

    def test_run_with_failure_injection(self, capsys):
        code = main(["run", "--chain", "monitor,monitor", "--system", "ftc",
                     "--rate", "5e5", "--duration", "0.008",
                     "--threads", "2", "--fail-at", "0.002",
                     "--fail-position", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered position 1" in out

    def test_fail_at_requires_ftc(self, capsys):
        code = main(["run", "--chain", "monitor", "--system", "nf",
                     "--rate", "5e5", "--duration", "0.002",
                     "--threads", "2", "--fail-at", "0.001"])
        assert code == 2

    def test_unknown_middlebox_kind(self):
        with pytest.raises(ValueError):
            main(["run", "--chain", "nonexistent", "--system", "ftc",
                  "--duration", "0.001"])


class TestChaos:
    def test_short_soak_exits_zero(self, capsys):
        code = main(["chaos", "--seed", "3", "--schedules", "2",
                     "--faults", "2", "--lengths", "2,3",
                     "--f-values", "1", "--duration", "0.03", "-v"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos soak: 2 schedules" in out
        assert "0 invariant violations" in out
        assert "schedule   0" in out  # verbose per-schedule lines


class TestExperiment:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_runs_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Packet processing" in out


class TestPerf:
    def test_bench_single_scenario(self, capsys, tmp_path):
        code = main(["perf", "bench", "--scenario", "baseline", "--quick",
                     "--out-dir", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "sim pps/wall s" in out
        report = json.loads((tmp_path / "BENCH_baseline.json").read_text())
        assert report["schema_version"] == 2
        assert report["stages"]

    def test_compare_gate_exit_codes(self, capsys, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        for d in (base, cur):
            d.mkdir()
        report = {"scenario": "s", "results": {"sim_pps_per_wall_s": 1000}}
        (base / "BENCH_s.json").write_text(json.dumps(report))
        (cur / "BENCH_s.json").write_text(json.dumps(report))
        assert main(["perf", "compare", "--baseline-dir", str(base),
                     "--current-dir", str(cur)]) == 0
        assert "gate passed" in capsys.readouterr().out
        # Inject a 20% regression: must exit nonzero.
        report["results"]["sim_pps_per_wall_s"] = 800
        (cur / "BENCH_s.json").write_text(json.dumps(report))
        assert main(["perf", "compare", "--baseline-dir", str(base),
                     "--current-dir", str(cur)]) == 1
        assert "gate **FAILED**" in capsys.readouterr().out

    def test_compare_writes_markdown(self, capsys, tmp_path):
        summary = tmp_path / "summary.md"
        (tmp_path / "base").mkdir()
        (tmp_path / "cur").mkdir()
        assert main(["perf", "compare", "--baseline-dir",
                     str(tmp_path / "base"), "--current-dir",
                     str(tmp_path / "cur"), "--markdown",
                     str(summary)]) == 0
        assert "Perf regression gate" in summary.read_text()

    def test_flame_from_bench_report(self, capsys, tmp_path):
        report = {"scenario": "s", "results": {"sim_pps_per_wall_s": 1},
                  "stages": {"engine/dispatch":
                             {"calls": 2, "wall_s": 1e-3}}}
        path = tmp_path / "BENCH_s.json"
        path.write_text(json.dumps(report))
        assert main(["perf", "flame", str(path)]) == 0
        assert "engine/dispatch 1000" in capsys.readouterr().out
        assert main(["perf", "flame", str(path), "--format", "speedscope",
                     "--out", str(tmp_path / "f.json")]) == 0
        doc = json.loads((tmp_path / "f.json").read_text())
        assert doc["$schema"].startswith("https://www.speedscope.app")

    def test_flame_rejects_stageless_report(self, capsys, tmp_path):
        path = tmp_path / "BENCH_s.json"
        path.write_text(json.dumps({"scenario": "s"}))
        assert main(["perf", "flame", str(path)]) == 1

    def test_profile_writes_artifacts(self, capsys, tmp_path):
        prefix = str(tmp_path / "prof")
        code = main(["perf", "profile", "baseline", "--quick",
                     "--out-prefix", prefix])
        assert code == 0
        out = capsys.readouterr().out
        assert "counter samples" in out
        assert "engine/dispatch" in out
        trace = json.loads((tmp_path / "prof.trace.json").read_text())
        from repro.telemetry.trace import validate_chrome_trace
        assert validate_chrome_trace(trace) == []
        assert (tmp_path / "prof.collapsed").read_text().strip()
        json.loads((tmp_path / "prof.speedscope.json").read_text())
