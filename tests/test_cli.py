"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_middleboxes_and_systems(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("mazunat", "monitor", "ids", "policer",
                         "ftc", "ftmb", "fig9"):
            assert expected in out


class TestRun:
    def test_run_ftc_chain(self, capsys):
        code = main(["run", "--chain", "monitor,monitor", "--system", "ftc",
                     "--rate", "5e5", "--duration", "0.004",
                     "--threads", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "FTC chain" in out
        assert "throughput" in out
        assert "monitor0 -> monitor1" in out

    def test_run_nf_chain(self, capsys):
        assert main(["run", "--chain", "firewall", "--system", "nf",
                     "--rate", "5e5", "--duration", "0.003",
                     "--threads", "2"]) == 0
        assert "NF chain" in capsys.readouterr().out

    def test_run_with_failure_injection(self, capsys):
        code = main(["run", "--chain", "monitor,monitor", "--system", "ftc",
                     "--rate", "5e5", "--duration", "0.008",
                     "--threads", "2", "--fail-at", "0.002",
                     "--fail-position", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered position 1" in out

    def test_fail_at_requires_ftc(self, capsys):
        code = main(["run", "--chain", "monitor", "--system", "nf",
                     "--rate", "5e5", "--duration", "0.002",
                     "--threads", "2", "--fail-at", "0.001"])
        assert code == 2

    def test_unknown_middlebox_kind(self):
        with pytest.raises(ValueError):
            main(["run", "--chain", "nonexistent", "--system", "ftc",
                  "--duration", "0.001"])


class TestChaos:
    def test_short_soak_exits_zero(self, capsys):
        code = main(["chaos", "--seed", "3", "--schedules", "2",
                     "--faults", "2", "--lengths", "2,3",
                     "--f-values", "1", "--duration", "0.03", "-v"])
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos soak: 2 schedules" in out
        assert "0 invariant violations" in out
        assert "schedule   0" in out  # verbose per-schedule lines


class TestExperiment:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_runs_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "Packet processing" in out
