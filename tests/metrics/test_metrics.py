"""Tests for meters, statistics, and report formatting."""

import pytest
from hypothesis import given, strategies as st

from repro.metrics import (
    EgressRecorder,
    LatencySampler,
    ThroughputMeter,
    cdf_points,
    confidence_interval95,
    format_series,
    format_table,
    mean,
    percentile,
    stdev,
)
from repro.net import FlowKey, Packet
from repro.sim import Simulator


def _pkt(created_at=0.0, size=256):
    return Packet(flow=FlowKey(1, 2, 3, 4), size=size, created_at=created_at)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_constant_is_zero(self):
        assert stdev([5, 5, 5]) == 0

    def test_stdev_single_sample(self):
        assert stdev([7]) == 0.0

    def test_percentile_bounds(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100
        assert percentile(data, 50) == 50

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 50) == 5

    def test_percentile_range_check(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50))
    def test_percentile_within_data_range(self, data):
        for q in (0, 25, 50, 75, 100):
            assert min(data) <= percentile(data, q) <= max(data)

    def test_cdf_points_monotone(self):
        points = cdf_points([3, 1, 2, 5, 4], n_points=5)
        values = [v for v, _ in points]
        fracs = [f for _, f in points]
        assert values == sorted(values)
        assert fracs[-1] == 1.0
        assert all(0 < f <= 1 for f in fracs)

    def test_cdf_subsampling(self):
        points = cdf_points(list(range(1000)), n_points=10)
        assert len(points) == 10

    def test_confidence_interval(self):
        center, half = confidence_interval95([10.0] * 20)
        assert center == 10.0 and half == 0.0
        center, half = confidence_interval95([1.0, 2.0, 3.0, 4.0])
        assert half > 0


class TestThroughputMeter:
    def test_rate_over_window(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)

        def feed(sim):
            for _ in range(100):
                yield sim.timeout(1e-6)
                meter.record(_pkt())

        sim.process(feed(sim))
        sim.run()
        assert meter.rate_pps() == pytest.approx(1e6, rel=0.05)

    def test_start_window_discards_warmup(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)

        def feed(sim):
            for i in range(100):
                yield sim.timeout(1e-6)
                meter.record(_pkt())
                if i == 49:
                    meter.start_window()

        sim.process(feed(sim))
        sim.run()
        assert meter.count == 50

    def test_gbps(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)

        def feed(sim):
            yield sim.timeout(1e-3)
            for _ in range(1000):
                meter.record(_pkt(size=1250))
            yield sim.timeout(1e-3)
            meter.mark()

        meter.start_window()
        sim.process(feed(sim))
        sim.run()
        # 1000 * 1250 B over 2 ms = 5 Gbps... computed over elapsed.
        assert meter.rate_gbps() == pytest.approx(
            1000 * 1250 * 8 / meter.elapsed / 1e9)

    def test_interval_rates(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)

        def feed(sim):
            meter.mark()
            for _ in range(10):
                meter.record(_pkt())
            yield sim.timeout(1e-3)
            meter.mark()
            for _ in range(30):
                meter.record(_pkt())
            yield sim.timeout(1e-3)
            meter.mark()

        sim.process(feed(sim))
        sim.run()
        rates = meter.interval_rates_pps()
        assert len(rates) == 2
        assert rates[0] == pytest.approx(10e3)
        assert rates[1] == pytest.approx(30e3)


class TestLatencySampler:
    def test_records_sojourn_time(self):
        sim = Simulator()
        sampler = LatencySampler(sim)

        def feed(sim):
            pkt = _pkt(created_at=sim.now)
            yield sim.timeout(100e-6)
            sampler.record(pkt)

        sim.process(feed(sim))
        sim.run()
        assert sampler.mean_us() == pytest.approx(100.0)

    def test_warmup_filtering(self):
        sim = Simulator()
        sampler = LatencySampler(sim)
        sampler.start_after(1.0)

        def feed(sim):
            early = _pkt(created_at=0.5)
            yield sim.timeout(2.0)
            sampler.record(early)
            sampler.record(_pkt(created_at=1.5))

        sim.process(feed(sim))
        sim.run()
        assert len(sampler) == 1

    def test_cdf_in_microseconds(self):
        sim = Simulator()
        sampler = LatencySampler(sim)
        sampler.samples = [1e-6, 2e-6, 3e-6]
        points = sampler.cdf_us()
        assert points[-1] == (3.0, 1.0)


class TestEgressRecorder:
    def test_combines_meters(self):
        sim = Simulator()
        egress = EgressRecorder(sim, keep_packets=True)
        egress(_pkt())
        egress(_pkt())
        assert egress.count == 2
        assert len(egress.packets) == 2
        assert len(egress.latency) == 2

    def test_by_flow_counts(self):
        sim = Simulator()
        egress = EgressRecorder(sim)
        flow = FlowKey(1, 2, 3, 4)
        for _ in range(3):
            egress(Packet(flow=flow))
        assert egress.by_flow[flow] == 3


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [10, 20]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_width_check(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_format_series(self):
        text = format_series("s", [1, 2], [10.5, 20.25],
                             x_label="x", y_label="y")
        assert "s" in text
        assert "10.5" in text

    def test_format_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("s", [1], [1, 2])


class TestWarmupWindowReset:
    """start_window must forget *everything* about warm-up traffic."""

    def _fed_meter(self):
        sim = Simulator()
        meter = ThroughputMeter(sim)

        def feed(sim):
            meter.mark()
            for _ in range(40):
                meter.record(_pkt(size=1500))
            yield sim.timeout(1e-3)
            meter.mark()
            meter.start_window()
            meter.mark()
            for _ in range(10):
                meter.record(_pkt(size=100))
            yield sim.timeout(1e-3)
            meter.mark()

        sim.process(feed(sim))
        sim.run()
        return meter

    def test_bytes_reset(self):
        meter = self._fed_meter()
        assert meter.bytes == 10 * 100
        assert meter.rate_gbps() == pytest.approx(
            10 * 100 * 8 / 1e-3 / 1e9)

    def test_marks_cleared(self):
        meter = self._fed_meter()
        rates = meter.interval_rates_pps()
        # Only the post-window interval survives; a stale pre-window
        # mark would yield a bogus (here negative) warm-up rate.
        assert len(rates) == 1
        assert rates[0] == pytest.approx(10e3)
        assert all(r >= 0 for r in rates)


class TestPercentileEdges:
    def test_single_sample_any_q(self):
        for q in (0, 37.5, 100):
            assert percentile([42.0], q) == 42.0

    def test_q0_and_q100_are_extremes(self):
        data = [5.0, 1.0, 9.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 9.0


class TestCdfEdges:
    def test_n_points_one(self):
        points = cdf_points(list(range(10)), n_points=1)
        assert points == [(9, 1.0)]

    def test_n_points_zero_rejected(self):
        with pytest.raises(ValueError):
            cdf_points([1.0, 2.0], n_points=0)

    def test_single_sample(self):
        assert cdf_points([7.0], n_points=5) == [(7.0, 1.0)]


class TestEmptySamplerGuards:
    def test_mean_and_percentile_nan(self):
        import math

        sim = Simulator()
        sampler = LatencySampler(sim)
        assert math.isnan(sampler.mean_us())
        assert math.isnan(sampler.percentile_us(99))

    def test_cdf_empty(self):
        sim = Simulator()
        sampler = LatencySampler(sim)
        assert sampler.cdf_us() == []
