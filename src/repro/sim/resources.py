"""Queueing resources for the simulation engine.

Three primitives cover every shared resource in the reproduction:

* :class:`Store` -- a FIFO buffer of items (packet queues, mailboxes).
* :class:`Resource` -- a counted resource with request/release
  semantics (CPU cores, lock-free slots).
* :class:`RateLimiter` -- a deterministic serial server that spaces
  items by a service interval (NIC pps caps, link byte rates).

All wait events returned by these resources can be cancelled, which
the STM uses to revoke lock requests from wounded transactions.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["Store", "Resource", "RateLimiter", "CancelledError"]


class CancelledError(Exception):
    """A pending resource wait was cancelled."""


class _Waiter(Event):
    """An event in a resource's wait queue; supports cancellation."""

    __slots__ = ("resource", "item")

    def __init__(self, sim: Simulator, resource: Any, item: Any = None):
        super().__init__(sim)
        self.resource = resource
        self.item = item

    @property
    def cancelled(self) -> bool:
        return self.triggered and not self._ok

    def cancel(self) -> None:
        """Withdraw this wait; the waiting process sees CancelledError."""
        if self.triggered:
            return
        self.fail(CancelledError())
        self._defused = False  # still raised in the waiting process


class Store:
    """A FIFO item buffer with optional capacity.

    ``put`` returns an event that triggers when the item is accepted
    (immediately unless the store is full); ``get`` returns an event
    that triggers with the next item.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"),
                 name: str = "store"):
        if capacity <= 0:
            raise SimulationError("store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[_Waiter] = deque()
        self._putters: Deque[_Waiter] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> _Waiter:
        event = _Waiter(self.sim, self, item)
        self._putters.append(event)
        self._dispatch()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if self.is_full:
            return False
        self.items.append(item)
        self._dispatch()
        return True

    def get(self) -> _Waiter:
        event = _Waiter(self.sim, self)
        self._getters.append(event)
        self._dispatch()
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if not self.items:
            return None
        item = self.items.popleft()
        self._dispatch()
        return item

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            while self._putters and len(self.items) < self.capacity:
                putter = self._putters.popleft()
                if putter.triggered or putter._cancelled:
                    continue
                self.items.append(putter.item)
                putter.succeed()
                progressed = True
            while self._getters and self.items:
                getter = self._getters.popleft()
                if getter.triggered or getter._cancelled:
                    # A withdrawn getter (its process was interrupted
                    # away) must not consume an item: succeed() on a
                    # cancelled event is a silent no-op.
                    continue
                getter.succeed(self.items.popleft())
                progressed = True


class Resource:
    """A counted resource (e.g. CPU cores) with FIFO request queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.users: list = []
        self._waiters: Deque[_Waiter] = deque()

    @property
    def count(self) -> int:
        return len(self.users)

    def request(self, owner: Any = None) -> _Waiter:
        event = _Waiter(self.sim, self, owner)
        self._waiters.append(event)
        self._dispatch()
        return event

    def release(self, request: _Waiter) -> None:
        if request not in self.users:
            raise SimulationError("releasing a request that does not hold the resource")
        self.users.remove(request)
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiters and len(self.users) < self.capacity:
            waiter = self._waiters.popleft()
            if waiter.triggered or waiter._cancelled:
                continue
            self.users.append(waiter)
            waiter.succeed()


class RateLimiter:
    """A deterministic serial server.

    Items are admitted no faster than ``rate`` per second; each item may
    additionally carry a per-item service time through ``cost_fn``
    (e.g. bytes / bandwidth).  Used for NIC packet-rate caps and link
    serialization.
    """

    def __init__(self, sim: Simulator, rate: float,
                 cost_fn: Optional[Callable[[Any], float]] = None,
                 name: str = "rate-limiter"):
        if rate <= 0:
            raise SimulationError("rate must be positive")
        self.sim = sim
        self.rate = rate
        self.cost_fn = cost_fn
        self.name = name
        self._next_free = 0.0
        self.admitted = 0

    def admission_delay(self, item: Any = None) -> float:
        """Reserve a service slot; returns the delay until admission."""
        service = 1.0 / self.rate
        if self.cost_fn is not None:
            service += self.cost_fn(item)
        start = max(self.sim.now, self._next_free)
        self._next_free = start + service
        self.admitted += 1
        return (start + service) - self.sim.now

    def admit(self, item: Any = None) -> Event:
        """Event that fires when the item has been serviced."""
        return self.sim.timeout(self.admission_delay(item))

    @property
    def backlog(self) -> float:
        """Seconds of work already queued ahead of a new arrival."""
        return max(0.0, self._next_free - self.sim.now)
