"""Discrete-event simulation substrate (virtual time, processes, resources)."""

from .engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Process,
    PRIORITY_NORMAL,
    PRIORITY_URGENT,
    SimulationError,
    Simulator,
    Timeout,
)
from .randomness import RandomStreams
from .resources import CancelledError, RateLimiter, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "CancelledError",
    "Event",
    "Interrupt",
    "Process",
    "PRIORITY_NORMAL",
    "PRIORITY_URGENT",
    "RandomStreams",
    "RateLimiter",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
