"""Deterministic random-number streams for simulations.

Every stochastic component draws from its own named stream derived
from a single experiment seed, so (a) runs are exactly reproducible
and (b) changing one component's draws does not perturb another's --
the standard variance-reduction discipline for simulation studies.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RandomStreams"]


class RandomStreams:
    """A registry of independent, deterministically seeded RNG streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating if needed) the stream for ``name``."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on the named stream."""
        return self.stream(name).expovariate(1.0 / mean)

    def uniform(self, name: str, low: float, high: float) -> float:
        return self.stream(name).uniform(low, high)

    def gauss_clamped(self, name: str, mean: float, stdev: float,
                      minimum: float = 0.0) -> float:
        """Gaussian draw clamped below at ``minimum`` (for jittered costs)."""
        return max(minimum, self.stream(name).gauss(mean, stdev))

    def choice(self, name: str, options):
        return self.stream(name).choice(options)

    def randint(self, name: str, low: int, high: int) -> int:
        return self.stream(name).randint(low, high)
