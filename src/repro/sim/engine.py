"""Discrete-event simulation engine.

This module is the foundation of the reproduction: every server, NIC,
link, middlebox thread, and protocol endpoint in the system is a
:class:`Process` advancing in *virtual time* managed by a
:class:`Simulator`.  Measuring throughput and latency in virtual time
means the (slow) Python interpreter never pollutes results -- a point
the DESIGN.md cost model depends on.

The programming model is generator-based, similar in spirit to SimPy:
a process is a generator that yields :class:`Event` objects and is
resumed when those events trigger::

    def worker(sim):
        yield sim.timeout(1.5)          # sleep in virtual time
        done = sim.event()
        sim.process(helper(sim, done))  # spawn a child process
        value = yield done              # wait for the child's signal

Processes can be interrupted (:meth:`Process.interrupt`), which raises
:class:`Interrupt` inside the generator -- used for failure injection
and for wounding transactions in the STM.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "Process",
    "Interrupt",
    "SimulationError",
    "AnyOf",
    "AllOf",
    "PRIORITY_URGENT",
    "PRIORITY_NORMAL",
]

#: Scheduling priorities; lower values run first among same-time events.
PRIORITY_URGENT = 0
PRIORITY_NORMAL = 1


class SimulationError(Exception):
    """Raised for misuse of the simulation API."""


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The interrupting party supplies an arbitrary ``cause`` describing
    why (e.g. a failure notice, or a transaction wound).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*, then either succeeds with a value or
    fails with an exception.  All registered callbacks run when the
    simulator processes the event.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused",
                 "_cancelled")

    _PENDING = object()

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: Optional[list] = []
        self._value: Any = Event._PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False
        self._cancelled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not be processed yet)."""
        return self._value is not Event._PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is Event._PENDING:
            raise SimulationError("event value is not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._cancelled:
            # A late completion of a withdrawn event (e.g. a control-call
            # response arriving after its caller timed out and retried).
            return self
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised in every waiting process; if nothing
        waits and the failure is never *defused*, the simulator raises
        it at the end of the run so errors never pass silently.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"{exception!r} is not an exception")
        if self._cancelled:
            return self
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay=delay)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled out-of-band."""
        self._defused = True

    def cancel(self) -> None:
        """Withdraw a pending or in-flight event.

        A cancelled event never runs its callbacks: if it is already on
        the heap (e.g. the losing deadline of an ``AnyOf`` race) it is
        discarded when popped, without advancing the clock; a later
        ``succeed``/``fail`` becomes a silent no-op.  Only cancel events
        nothing is waiting on -- waiters of a cancelled event are never
        resumed.
        """
        if self.processed:
            return
        self._cancelled = True

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)


class Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        sim._schedule(self, priority=PRIORITY_URGENT)


class Process(Event):
    """A running generator; also an event that fires when it finishes.

    The generator's ``return`` value becomes the event value, so a
    parent may ``result = yield child_process``.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, sim: "Simulator", generator: Generator,
                 name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self._generator = generator
        self._target: Optional[Event] = Initialize(sim, self)
        self.name = name or getattr(generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self.triggered:
            raise SimulationError(f"{self!r} has terminated; cannot interrupt")
        if self._target is None:
            raise SimulationError(f"{self!r} cannot interrupt itself")
        interrupt_event = Event(self.sim)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event._defused = True
        interrupt_event.callbacks.append(self._resume)
        self.sim._schedule(interrupt_event, priority=PRIORITY_URGENT)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the triggered event's outcome."""
        # A stale wakeup: the process was already resumed by another
        # event (e.g. interrupted while waiting), then this one fired.
        if self.triggered:
            if not event._ok and not event._defused:
                event._defused = True
            return
        if event is not self._target and self._target is not None:
            # The process is waiting on a different event; this can only
            # be an interrupt (scheduled urgently) -- deliver it.
            self._detach_from_target()
        self.sim._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event._defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self._ok = True
            self._value = stop.value
            self.sim._schedule(self)
            return
        except BaseException as exc:
            self._target = None
            self._ok = False
            self._value = exc
            self._defused = False
            self.sim._schedule(self)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(next_target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_target!r}, "
                "which is not an Event")
        if next_target.processed:
            # Already-processed event: resume immediately (next step).
            immediate = Event(self.sim)
            immediate._ok = next_target._ok
            immediate._value = next_target._value
            if not next_target._ok:
                immediate._defused = True
            immediate.callbacks.append(self._resume)
            self._target = immediate
            self.sim._schedule(immediate, priority=PRIORITY_URGENT)
        else:
            next_target.callbacks.append(self._resume)
            self._target = next_target

    def _detach_from_target(self) -> None:
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.callbacks and not target.triggered:
                # Nobody is left waiting: withdraw the event so a
                # resource dispatcher never assigns an item to it (an
                # orphaned queue getter would silently swallow the
                # item otherwise).
                target._cancelled = True


class _Condition(Event):
    """Base for AnyOf/AllOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError("cannot mix events from different simulators")
        self._remaining = len(self.events)
        for event in self.events:
            if event.processed:
                self._check(event)
            elif not self.triggered:
                event.callbacks.append(self._check)
        if not self.events and not self.triggered:
            self.succeed(self._results())

    def _results(self) -> dict:
        return {event: event._value for event in self.events
                if event.processed and event._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers when any constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok and not event._defused:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._results())


class AllOf(_Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok and not event._defused:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining <= 0 and all(e.processed for e in self.events):
            self.succeed(self._results())


class Simulator:
    """The virtual-time event loop."""

    def __init__(self):
        self._now = 0.0
        self._queue: list = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Optional :class:`~repro.perf.StageProfiler`; when set,
        #: :meth:`step` attributes callback execution to the
        #: ``engine/dispatch`` stage.  ``None`` keeps the disabled path
        #: at one attribute load per step (fig5/fig13 byte-identical).
        self.profiler = None

    @property
    def now(self) -> float:
        """Current virtual time, in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction -------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0,
                  priority: int = PRIORITY_NORMAL) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} is already scheduled")
        event._scheduled = True
        self._eid += 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def schedule_callback(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Run a plain callable at ``now + delay`` (no process needed)."""
        event = Event(self)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _evt: callback())
        self._schedule(event, delay=delay)
        return event

    # -- execution -----------------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (cancelled events are discarded)."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        when, _prio, _eid, event = heapq.heappop(self._queue)
        if event._cancelled:
            # Discarded without running callbacks or advancing the
            # clock; the event stays unprocessed forever.
            return
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        profiler = self.profiler
        if profiler is None:
            for callback in callbacks:
                callback(event)
        else:
            t0 = profiler.t0()
            for callback in callbacks:
                callback(event)
            profiler.add("engine/dispatch", t0)
        if not event._ok and not event._defused:
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until time ``until``, event ``until``, or queue exhaustion.

        Returns the value of ``until`` when it is an event.
        """
        if until is None:
            while self._queue:
                self.step()
            return None
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        f"event {stop!r} triggered")
                self.step()
            if stop._ok:
                return stop._value
            stop._defused = True
            raise stop._value
        horizon = float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon!r}: it is in the past "
                f"(now={self._now!r})")
        while self._queue and self._queue[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None
