"""repro -- a reproduction of "Fault Tolerant Service Function Chaining"
(Ghaznavi et al., SIGCOMM 2020).

The package implements the FTC protocol and everything it runs on:

* :mod:`repro.sim` -- deterministic discrete-event simulation engine.
* :mod:`repro.net` -- packets, flows, links, multi-queue NICs, servers,
  traffic generation.
* :mod:`repro.stm` -- software transactional memory: partitioned state,
  two-phase locking, wound-wait.
* :mod:`repro.middlebox` -- the middlebox programming model and the
  paper's Table 1 functions (MazuNAT, SimpleNAT, Monitor, Gen, Firewall).
* :mod:`repro.core` -- FTC itself: piggyback logs, dependency vectors,
  in-chain replication, forwarder/buffer, failure recovery.
* :mod:`repro.baselines` -- NF, FTMB, FTMB+Snapshot, remote state store.
* :mod:`repro.orchestration` -- orchestrator, heartbeat failure
  detection, multi-region cloud model, placement.
* :mod:`repro.chaos` -- fault-injection plans, the chaos monkey,
  invariant auditing, and the randomized soak harness.
* :mod:`repro.metrics` -- throughput/latency meters and statistics.
* :mod:`repro.telemetry` -- opt-in chain-wide observability: metric
  registry, sampled per-packet Chrome traces, recovery timelines.
* :mod:`repro.experiments` -- regeneration of every evaluation table
  and figure.

Quickstart::

    from repro.sim import Simulator
    from repro.net import TrafficGenerator, balanced_flows
    from repro.metrics import EgressRecorder
    from repro.middlebox import ch_rec
    from repro.core import FTCChain

    sim = Simulator()
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_rec(), f=1, deliver=egress)
    chain.start()
    TrafficGenerator(sim, chain.ingress, rate_pps=1e6,
                     flows=balanced_flows(16, 8), count=10_000)
    sim.run(until=0.05)
    print(chain.total_released(), egress.latency.mean_us())
"""

from .core import CostModel, DEFAULT_COSTS, FTCChain, recover_positions
from .metrics import EgressRecorder
from .middlebox import (
    DROP,
    Firewall,
    Gen,
    MazuNAT,
    Middlebox,
    Monitor,
    PASS,
    SimpleNAT,
    ch_gen,
    ch_n,
    ch_rec,
)
from .net import FlowKey, Packet, TrafficGenerator, balanced_flows
from .orchestration import CloudNetwork, Orchestrator, place_chain
from .sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "CloudNetwork",
    "CostModel",
    "DEFAULT_COSTS",
    "DROP",
    "EgressRecorder",
    "FTCChain",
    "Firewall",
    "FlowKey",
    "Gen",
    "MazuNAT",
    "Middlebox",
    "Monitor",
    "Orchestrator",
    "PASS",
    "Packet",
    "SimpleNAT",
    "Simulator",
    "TrafficGenerator",
    "balanced_flows",
    "ch_gen",
    "ch_n",
    "ch_rec",
    "place_chain",
    "recover_positions",
]
