"""Packet transactions (§3.2, §4.2).

FTC "models the processing of a packet as a transaction, where
concurrent accesses to shared state are serialized to ensure that
consistent state is captured and replicated."  The runtime here
implements that model for simulated middlebox threads:

1. *Record phase* (zero virtual time): the middlebox body runs against
   a recording context to discover its read/write key set.
2. *Growth phase*: partition locks covering the set are acquired in
   simulated time -- this is where contention, waiting, and wound-wait
   aborts happen and where Fig 6's sharing-level throughput collapse
   comes from.
3. *Critical section*: the configured ``hold_time`` (the packet's
   processing cost from the cycle model) elapses while the locks are
   held, then the body re-executes against the live store and its
   writes are committed atomically.
4. *Shrink phase*: all locks release.

Middlebox bodies must confine their side effects to the transaction
context; they may run more than once per packet.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Dict, FrozenSet, Hashable, List, Optional, Set

from ..sim import Simulator
from ..telemetry import NULL_PROFILER, NULL_TELEMETRY
from .locks import LockStats, PartitionLock, TransactionWounded
from .partition import PartitionSpace
from .store import StateStore, TOMBSTONE

__all__ = [
    "Transaction",
    "TransactionContext",
    "TransactionResult",
    "TransactionManager",
]

#: Safety bound; a correct workload never needs anywhere near this.
MAX_ATTEMPTS = 1000


class Transaction:
    """Bookkeeping for one in-flight packet transaction."""

    __slots__ = ("timestamp", "wounded", "phase", "held_locks",
                 "pending_wait", "retries")

    def __init__(self, timestamp: int):
        self.timestamp = timestamp
        self.wounded = False
        self.phase = "idle"  # idle -> acquiring -> holding -> done
        self.held_locks: List[PartitionLock] = []
        self.pending_wait = None
        self.retries = 0

    @property
    def woundable(self) -> bool:
        """Only transactions still growing their lock set may be wounded."""
        return self.phase == "acquiring"

    def wound(self) -> None:
        if not self.woundable or self.wounded:
            return
        self.wounded = True
        if self.pending_wait is not None:
            self.pending_wait.cancel()

    def release_all(self) -> None:
        for lock in list(reversed(self.held_locks)):
            lock.release(self)

    def __repr__(self):
        return f"<Tx ts={self.timestamp} {self.phase}{' WOUNDED' if self.wounded else ''}>"


class TransactionContext:
    """The state API handed to middlebox bodies.

    Reads see the store overlaid with this transaction's own buffered
    writes; writes are buffered until commit.
    """

    __slots__ = ("_store", "reads", "writes", "access_order", "flow",
                 "thread_id", "now", "extras", "authoritative")

    def __init__(self, store: StateStore, flow=None, thread_id: int = 0,
                 now: float = 0.0, extras: Optional[Dict[str, Any]] = None,
                 authoritative: bool = True):
        self._store = store
        #: False during the STM's record-phase probe; middleboxes should
        #: only bump statistics counters on authoritative executions.
        self.authoritative = authoritative
        self.reads: Set[Hashable] = set()
        self.writes: Dict[Hashable, Any] = {}
        self.access_order: List[Hashable] = []
        self.flow = flow
        self.thread_id = thread_id
        self.now = now
        self.extras = extras or {}

    def _touch(self, key: Hashable) -> None:
        if key not in self.reads and key not in self.writes:
            self.access_order.append(key)

    def read(self, key: Hashable, default: Any = None) -> Any:
        self._touch(key)
        self.reads.add(key)
        if key in self.writes:
            value = self.writes[key]
            return default if value is TOMBSTONE else value
        return self._store.get(key, default)

    def write(self, key: Hashable, value: Any) -> None:
        self._touch(key)
        self.writes[key] = value

    def delete(self, key: Hashable) -> None:
        self._touch(key)
        self.writes[key] = TOMBSTONE

    def contains(self, key: Hashable) -> bool:
        self._touch(key)
        self.reads.add(key)
        if key in self.writes:
            return self.writes[key] is not TOMBSTONE
        return key in self._store

    @property
    def accessed_keys(self) -> Set[Hashable]:
        return self.reads | set(self.writes)


class TransactionResult:
    """Outcome of a committed packet transaction."""

    __slots__ = ("writes", "read_keys", "partitions", "retries",
                 "wait_time", "value", "commit_value", "used_htm")

    def __init__(self, writes: Dict[Hashable, Any], read_keys: Set[Hashable],
                 partitions: FrozenSet[int], retries: int, wait_time: float,
                 value: Any = None, commit_value: Any = None,
                 used_htm: bool = False):
        self.writes = writes
        self.read_keys = read_keys
        self.partitions = partitions
        self.retries = retries
        self.wait_time = wait_time
        self.value = value  # the body's return (e.g. verdict, out packet)
        self.commit_value = commit_value  # the on_commit hook's return
        self.used_htm = used_htm  # committed via the HTM fast path

    @property
    def wrote(self) -> bool:
        return bool(self.writes)

    @property
    def read_only(self) -> bool:
        return not self.writes

    def __repr__(self):
        return (f"<TxResult writes={len(self.writes)} reads={len(self.read_keys)} "
                f"partitions={sorted(self.partitions)} retries={self.retries}>")


class TransactionManager:
    """Runs packet transactions over one middlebox's state store."""

    def __init__(self, sim: Simulator, store: StateStore,
                 partitions: Optional[PartitionSpace] = None,
                 acquire_order: str = "sorted", name: str = "stm",
                 handoff_delay_s: float = 0.0, spin_threshold: int = 2,
                 htm: bool = False, telemetry=None):
        if acquire_order not in ("sorted", "declared"):
            raise ValueError(f"unknown acquire order {acquire_order!r}")
        self.sim = sim
        self.store = store
        self.partitions = partitions or PartitionSpace()
        self.acquire_order = acquire_order
        self.name = name
        self.lock_stats = LockStats()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prof = getattr(self.telemetry, "profiler", NULL_PROFILER)
        registry = self.telemetry.registry
        self._m_commits = registry.counter(f"{name}/commits")
        self._m_retries = registry.counter(f"{name}/retries")
        wait_hist = registry.histogram(f"{name}/lock_wait_s")
        wound_counter = registry.counter(f"{name}/wounds")
        self.locks = [PartitionLock(sim, i, self.lock_stats,
                                    handoff_delay_s=handoff_delay_s,
                                    spin_threshold=spin_threshold,
                                    wait_hist=wait_hist,
                                    wound_counter=wound_counter)
                      for i in range(self.partitions.n_partitions)]
        #: Hybrid transactional memory (§3.2): uncontended transactions
        #: elide the lock protocol and pay a cheaper commit.
        self.htm = htm
        self.htm_commits = 0
        self.htm_fallbacks = 0
        self._timestamps = itertools.count(1)
        self.committed = 0
        self.total_retries = 0

    def run(self, body: Callable[[TransactionContext], Any],
            hold_time: float = 0.0, flow=None, thread_id: int = 0,
            extras: Optional[Dict[str, Any]] = None,
            on_commit: Optional[Callable[[TransactionContext, FrozenSet[int]], Any]] = None,
            commit_hold_fn: Optional[Callable[[TransactionContext], float]] = None,
            lock_overhead_s: float = 0.0, htm_overhead_s: float = 0.0,
            trace_pid: Optional[int] = None,
            flight_pid: Optional[int] = None):
        """Generator: execute ``body`` transactionally.

        Yields simulation events while waiting for locks and during the
        critical-section ``hold_time``; returns a
        :class:`TransactionResult`.

        ``on_commit`` runs *while the partition locks are still held*,
        right after the writes are applied -- FTC's head uses it to
        stamp its dependency vector atomically with the commit (§4.3).
        It receives the live context and the touched partitions; its
        return value lands in ``result.commit_value``.

        ``commit_hold_fn`` maps the live context to extra seconds spent
        inside the critical section after execution -- FTC charges the
        piggyback-log construction there, since the log must be built
        before the locks release (§4.2).

        ``trace_pid`` enables span recording for this transaction: the
        caller passes the packet id when the tracer sampled it, None
        otherwise (the common, zero-overhead case).

        ``flight_pid`` likewise enables causal flight events (wound /
        lock-wait / commit) on the packet's ``pid:<N>`` chain; it is
        independent of ``trace_pid`` because the tracer samples while
        the flight recorder, when on, sees every packet.
        """
        tracer = self.telemetry.tracer if trace_pid is not None else None
        flight = self.telemetry.flight if flight_pid is not None else None
        tx = Transaction(next(self._timestamps))
        started = self.sim.now
        needed: Set[int] = set()
        for _attempt in range(MAX_ATTEMPTS):
            tx.wounded = False
            tx.phase = "idle"
            try:
                # Record phase: discover the access set without locks.
                probe = self._fresh_context(flow, thread_id, extras,
                                            authoritative=False)
                body(probe)
                needed |= self._partitions_in_order(probe)
                order = sorted(needed) if self.acquire_order == "sorted" \
                    else self._declared_order(probe, needed)

                used_htm = False
                acquire_started = self.sim.now
                if self.htm:
                    used_htm = self._htm_try(tx, order)
                if used_htm:
                    self.htm_commits += 1
                else:
                    if self.htm:
                        self.htm_fallbacks += 1
                    tx.phase = "acquiring"
                    for partition in order:
                        yield from self.locks[partition].acquire(tx)
                    if tx.wounded:
                        raise TransactionWounded()
                tx.phase = "holding"
                if tracer is not None and self.sim.now > acquire_started:
                    tracer.complete(trace_pid, "lock-acquire", "stm",
                                    acquire_started, self.sim.now,
                                    tid=thread_id, mbox=self.name,
                                    partitions=sorted(needed))
                if flight is not None and self.sim.now > acquire_started:
                    flight.record(
                        "stm", "lock-wait", t=self.sim.now, pid=flight_pid,
                        detail=f"{self.name} waited "
                               f"{(self.sim.now - acquire_started) * 1e6:.2f}us "
                               f"for partitions {sorted(needed)}",
                        chain=f"pid:{flight_pid}")
                hold_started = self.sim.now

                total_hold = hold_time + (htm_overhead_s if used_htm
                                          else lock_overhead_s)
                if total_hold > 0.0:
                    yield self.sim.timeout(total_hold)

                # Authoritative execution under mutual exclusion.
                live = self._fresh_context(flow, thread_id, extras)
                value = body(live)
                live_partitions = self.partitions.partitions_of(live.accessed_keys)
                if not live_partitions <= needed:
                    # The access set grew since the probe (e.g. another
                    # transaction inserted a colliding entry): widen and retry.
                    needed |= live_partitions
                    tx.retries += 1
                    tx.release_all()
                    continue

                commit_hold = 0.0
                if commit_hold_fn is not None:
                    commit_hold = commit_hold_fn(live)
                    if commit_hold > 0.0:
                        yield self.sim.timeout(commit_hold)
                prof = self._prof
                prof_t0 = prof.t0()
                self.store.apply_many(live.writes)
                commit_value = None
                if on_commit is not None:
                    commit_value = on_commit(live, live_partitions)
                tx.phase = "done"
                tx.release_all()
                prof.add("stm/commit", prof_t0)
                self.committed += 1
                self.total_retries += tx.retries
                self._m_commits.inc()
                if tx.retries:
                    self._m_retries.inc(tx.retries)
                if tracer is not None:
                    tracer.complete(trace_pid, "critical-section", "stm",
                                    hold_started, self.sim.now,
                                    tid=thread_id, mbox=self.name,
                                    retries=tx.retries, htm=used_htm)
                if flight is not None:
                    flight.record(
                        "stm", "commit", t=self.sim.now, pid=flight_pid,
                        detail=f"{self.name} partitions="
                               f"{sorted(live_partitions)} "
                               f"retries={tx.retries}"
                               f"{' htm' if used_htm else ''}",
                        chain=f"pid:{flight_pid}")
                return TransactionResult(
                    writes=dict(live.writes),
                    read_keys=set(live.reads),
                    partitions=live_partitions,
                    retries=tx.retries,
                    wait_time=(self.sim.now - started - total_hold
                               - commit_hold),
                    value=value,
                    commit_value=commit_value,
                    used_htm=used_htm,
                )
            except TransactionWounded:
                tx.retries += 1
                tx.release_all()
                if tracer is not None:
                    tracer.instant(trace_pid, "wounded", "stm", self.sim.now,
                                   tid=thread_id, mbox=self.name)
                if flight is not None:
                    flight.record(
                        "stm", "wound", t=self.sim.now, pid=flight_pid,
                        detail=f"{self.name} ts={tx.timestamp} "
                               f"retry {tx.retries}",
                        chain=f"pid:{flight_pid}")
                # Immediately re-execute (same timestamp: no starvation).
                continue
        raise RuntimeError(
            f"transaction in {self.name} aborted {MAX_ATTEMPTS} times; "
            "livelock in the workload?")

    # -- helpers -------------------------------------------------------------

    def _htm_try(self, tx, order) -> bool:
        """Attempt the HTM fast path: claim every needed lock only if
        all are free; on any contention, roll back and report False."""
        taken = []
        for partition in order:
            lock = self.locks[partition]
            if lock.try_acquire(tx):
                taken.append(lock)
            else:
                for held in reversed(taken):
                    held.release(tx)
                return False
        return True

    def _fresh_context(self, flow, thread_id, extras,
                       authoritative: bool = True) -> TransactionContext:
        return TransactionContext(self.store, flow=flow, thread_id=thread_id,
                                  now=self.sim.now, extras=extras,
                                  authoritative=authoritative)

    def _partitions_in_order(self, ctx: TransactionContext) -> Set[int]:
        return set(self.partitions.partitions_of(ctx.accessed_keys))

    def _declared_order(self, ctx: TransactionContext, needed: Set[int]) -> List[int]:
        """Partitions in first-access order, then any extras sorted."""
        ordered: List[int] = []
        for key in ctx.access_order:
            partition = self.partitions.partition_of(key)
            if partition not in ordered:
                ordered.append(partition)
        for partition in sorted(needed):
            if partition not in ordered:
                ordered.append(partition)
        return ordered
