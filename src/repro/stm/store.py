"""State stores.

A :class:`StateStore` holds one middlebox's state as a key-value map.
Replicas keep one store per middlebox they replicate (§5); recovery
copies stores wholesale.  Values are opaque to the store but must be
cheap to copy; keys may be any hashable (flow tuples, counter names).

Deletions are represented by a tombstone so they replicate through
piggyback logs exactly like writes.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Hashable, Iterator, Tuple

__all__ = ["StateStore", "TOMBSTONE"]


class _Tombstone:
    """Marks a deleted key inside updates (singleton)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<TOMBSTONE>"


TOMBSTONE = _Tombstone()


class StateStore:
    """A middlebox's key-value state."""

    def __init__(self, name: str = "store"):
        self.name = name
        self._data: Dict[Hashable, Any] = {}
        self.writes_applied = 0

    def get(self, key: Hashable, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def apply(self, key: Hashable, value: Any) -> None:
        """Apply one replicated update (TOMBSTONE deletes)."""
        if value is TOMBSTONE:
            self._data.pop(key, None)
        else:
            self._data[key] = value
        self.writes_applied += 1

    def apply_many(self, updates: Dict[Hashable, Any]) -> None:
        for key, value in updates.items():
            self.apply(key, value)

    def items(self) -> Iterator[Tuple[Hashable, Any]]:
        return iter(self._data.items())

    def snapshot(self) -> Dict[Hashable, Any]:
        """A deep copy of the contents (used for state transfer)."""
        return copy.deepcopy(self._data)

    def load(self, contents: Dict[Hashable, Any]) -> None:
        """Replace contents wholesale (recovery)."""
        self._data = copy.deepcopy(contents)

    def state_bytes(self, value_size: int = 32) -> int:
        """Rough serialized size, for recovery transfer-time modelling."""
        return len(self._data) * value_size

    def fingerprint(self) -> int:
        """Order-independent digest for equality checks in tests."""
        return hash(frozenset((k, _freeze(v)) for k, v in self._data.items()))

    def __eq__(self, other) -> bool:
        if not isinstance(other, StateStore):
            return NotImplemented
        return self._data == other._data

    def __repr__(self):
        return f"<StateStore {self.name} keys={len(self._data)}>"


def _freeze(value: Any) -> Any:
    if isinstance(value, dict):
        return frozenset((k, _freeze(v)) for k, v in value.items())
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value
