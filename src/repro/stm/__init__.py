"""Software transactional memory for packet transactions (§4.2)."""

from .locks import LockStats, PartitionLock, TransactionWounded
from .partition import DEFAULT_PARTITIONS, PartitionSpace
from .store import StateStore, TOMBSTONE
from .transaction import (
    Transaction,
    TransactionContext,
    TransactionManager,
    TransactionResult,
)

__all__ = [
    "DEFAULT_PARTITIONS",
    "LockStats",
    "PartitionLock",
    "PartitionSpace",
    "StateStore",
    "TOMBSTONE",
    "Transaction",
    "TransactionContext",
    "TransactionManager",
    "TransactionResult",
    "TransactionWounded",
]
