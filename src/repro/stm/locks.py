"""Partition locks with wound-wait deadlock avoidance (§4.2).

FTC's STM "uses fine grained strict two phase locking ... [and] a
wound-wait scheme that aborts transactions to prevent possible
deadlocks if a lock ordering is not known in advance.  An aborted
transaction is immediately re-executed."

Wound-wait, per Rosenkrantz et al.: when transaction T requests a lock
held by U,

* if T is *older* (smaller timestamp), U is wounded -- it aborts,
  releases its locks, and retries (keeping its original timestamp so
  it eventually becomes oldest and cannot starve);
* if T is *younger*, T simply waits.

A transaction can only be wounded while it is still acquiring locks;
once it holds its full lock set it finishes its (short) critical
section and commits.  Waiters are granted oldest-first.
"""

from __future__ import annotations

import heapq
import itertools
from typing import List, Optional, Tuple

from ..sim import CancelledError, Simulator
from ..sim.resources import _Waiter
from ..telemetry.registry import NULL_COUNTER, NULL_HISTOGRAM

__all__ = ["PartitionLock", "TransactionWounded", "LockStats"]


class TransactionWounded(Exception):
    """Raised inside a transaction's runner when it has been wounded."""


class LockStats:
    """Aggregate lock behaviour counters for one manager."""

    __slots__ = ("acquisitions", "conflicts", "wounds", "wait_time")

    def __init__(self):
        self.acquisitions = 0
        self.conflicts = 0
        self.wounds = 0
        self.wait_time = 0.0

    def __repr__(self):
        return (f"<LockStats acq={self.acquisitions} conflicts={self.conflicts} "
                f"wounds={self.wounds} wait={self.wait_time:.6f}s>")


class PartitionLock:
    """A mutex over one state partition, with wound-wait arbitration."""

    _tiebreak = itertools.count()

    def __init__(self, sim: Simulator, index: int, stats: Optional[LockStats] = None,
                 handoff_delay_s: float = 0.0, spin_threshold: int = 2,
                 wait_hist=None, wound_counter=None):
        self.sim = sim
        self.index = index
        self.owner = None  # the Transaction currently holding the lock
        self._waiters: List[Tuple[float, int, _Waiter, object]] = []
        self.stats = stats if stats is not None else LockStats()
        #: Telemetry instruments (no-op singletons unless a manager with
        #: an enabled registry created this lock).
        self.wait_hist = wait_hist if wait_hist is not None else NULL_HISTOGRAM
        self.wound_counter = (wound_counter if wound_counter is not None
                              else NULL_COUNTER)
        #: Wakeup latency exposed when handing the lock to a waiter
        #: under light contention.  With a crowd of spinners
        #: (>= spin_threshold still queued) the next owner is already
        #: polling and takes over immediately -- adaptive-mutex
        #: behaviour, and the reason all systems in Fig 6 lose
        #: throughput at intermediate sharing levels.
        self.handoff_delay_s = handoff_delay_s
        self.spin_threshold = spin_threshold

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def try_acquire(self, tx) -> bool:
        """Take the lock only if it is free with no queued waiters.

        Used by the hybrid-HTM fast path (§3.2): an uncontended
        transaction elides the full lock protocol.
        """
        if self.owner is tx:
            return True
        if self.owner is None and not self._waiters and not tx.wounded:
            self._grant(tx)
            return True
        return False

    def acquire(self, tx):
        """Generator: acquire on behalf of ``tx`` (strict 2PL growth phase).

        Raises :class:`TransactionWounded` if ``tx`` is wounded while
        waiting.
        """
        if tx.wounded:
            raise TransactionWounded()
        if self.owner is tx:
            return  # reentrant no-op
        if self.owner is None and not self._waiters:
            self._grant(tx)
            return
        # Conflict: apply the wound-wait rule against the current owner.
        self.stats.conflicts += 1
        owner = self.owner
        if owner is not None and tx.timestamp < owner.timestamp and owner.woundable:
            owner.wound()
            self.stats.wounds += 1
            self.wound_counter.inc()
        waiter = _Waiter(self.sim, self)
        heapq.heappush(self._waiters,
                       (tx.timestamp, next(self._tiebreak), waiter, tx))
        tx.pending_wait = waiter
        wait_started = self.sim.now
        try:
            yield waiter
        except CancelledError:
            raise TransactionWounded() from None
        finally:
            tx.pending_wait = None
            self.stats.wait_time += self.sim.now - wait_started
            self.wait_hist.observe(self.sim.now - wait_started, t=self.sim.now)
        if tx.wounded:
            # Granted but wounded in the same instant: hand the lock on.
            self._release_internal(tx)
            raise TransactionWounded()

    def release(self, tx) -> None:
        if self.owner is not tx:
            raise RuntimeError(
                f"lock {self.index} released by non-owner {tx!r}")
        self._release_internal(tx)

    # -- internals ---------------------------------------------------------

    def _grant(self, tx) -> None:
        self.owner = tx
        tx.held_locks.append(self)
        self.stats.acquisitions += 1

    def _release_internal(self, tx) -> None:
        self.owner = None
        if self in tx.held_locks:
            tx.held_locks.remove(self)
        while self._waiters:
            _ts, _tie, waiter, next_tx = heapq.heappop(self._waiters)
            if waiter.triggered:  # cancelled (wounded) waiter
                continue
            self._grant(next_tx)
            live_waiters = sum(1 for _t, _i, w, _x in self._waiters
                               if not w.triggered)
            if self.handoff_delay_s > 0.0 and live_waiters < self.spin_threshold:
                waiter.succeed(delay=self.handoff_delay_s)
            else:
                waiter.succeed()
            break
