"""State-space partitioning (§4.2).

FTC simplifies lock management "using state space partitioning, by
using the hash of state variable keys to map keys to partitions, each
with its own lock.  The state partitioning is consistent across all
replicas, and to reduce contention, the number of partitions is
selected to exceed the maximum number of CPU cores."

The hash must therefore be *stable*: identical at the head and at every
replica, and across simulation runs.  We use CRC-32 over a canonical
encoding of the key rather than Python's salted ``hash``.
"""

from __future__ import annotations

import zlib
from typing import Hashable

__all__ = ["PartitionSpace", "DEFAULT_PARTITIONS"]

#: Paper guidance: more partitions than the server's core count; the
#: testbed CPUs have 8 cores, we default comfortably above that.
DEFAULT_PARTITIONS = 64


def _canonical(key: Hashable) -> bytes:
    """A deterministic byte encoding of a state key."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode()
    if isinstance(key, int):
        try:
            return b"i" + key.to_bytes(16, "big", signed=True)
        except OverflowError:
            # Keys beyond 128 bits get a length-prefixed encoding; the
            # common fixed-width path keeps its historical mapping.
            n = (key.bit_length() + 8) // 8
            return b"I" + n.to_bytes(4, "big") + \
                key.to_bytes(n, "big", signed=True)
    if isinstance(key, tuple):
        parts = bytearray(b"t")
        for element in key:
            encoded = _canonical(element)
            parts += len(encoded).to_bytes(4, "big") + encoded
        return bytes(parts)
    # Fall back to repr for exotic-but-hashable keys (e.g. dataclasses).
    return repr(key).encode()


class PartitionSpace:
    """Maps state keys to a fixed number of lock partitions."""

    def __init__(self, n_partitions: int = DEFAULT_PARTITIONS):
        if n_partitions < 1:
            raise ValueError("need at least one partition")
        self.n_partitions = n_partitions

    def partition_of(self, key: Hashable) -> int:
        return zlib.crc32(_canonical(key)) % self.n_partitions

    def partitions_of(self, keys) -> frozenset:
        return frozenset(self.partition_of(key) for key in keys)

    def __eq__(self, other):
        if not isinstance(other, PartitionSpace):
            return NotImplemented
        return self.n_partitions == other.n_partitions

    def __repr__(self):
        return f"<PartitionSpace n={self.n_partitions}>"
