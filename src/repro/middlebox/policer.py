"""Token-bucket traffic policer.

A write-heavy middlebox (every packet mutates its flow's bucket) used
by the examples and ablations.  Buckets refill lazily from the
transaction context's clock, so the middlebox stays deterministic for
the STM's repeated execution: the refill depends only on (stored
state, ctx.now).
"""

from __future__ import annotations

from ..net.packet import Packet
from ..stm.transaction import TransactionContext
from .base import DROP, Middlebox, PASS, Verdict

__all__ = ["TokenBucketPolicer"]


class TokenBucketPolicer(Middlebox):
    """Per-flow token bucket: drop packets exceeding the profile."""

    def __init__(self, name: str = "policer", rate_pps: float = 10_000.0,
                 burst: float = 100.0, per_flow: bool = True,
                 processing_cycles=None):
        super().__init__(name, processing_cycles)
        if rate_pps <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate_pps = rate_pps
        self.burst = burst
        self.per_flow = per_flow

    def _bucket_key(self, packet: Packet):
        if self.per_flow:
            return ("bucket", packet.flow)
        return ("bucket", "aggregate")

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        key = self._bucket_key(packet)
        bucket = ctx.read(key)
        if bucket is None:
            tokens, last_refill = self.burst, ctx.now
        else:
            tokens, last_refill = bucket
            tokens = min(self.burst,
                         tokens + (ctx.now - last_refill) * self.rate_pps)
            last_refill = ctx.now
        if tokens < 1.0:
            ctx.write(key, (tokens, last_refill))
            self.count_drop(ctx)
            return DROP
        ctx.write(key, (tokens - 1.0, last_refill))
        return PASS

    def describe(self) -> str:
        scope = "per-flow" if self.per_flow else "aggregate"
        return (f"TokenBucketPolicer: {scope} {self.rate_pps:g} pps, "
                f"burst {self.burst:g}")
