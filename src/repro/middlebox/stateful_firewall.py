"""Stateful firewall with connection tracking.

§2 of the paper motivates stateful middleboxes with exactly this
function: "a stateful firewall filters packets based on statistics
that it collects for network flows", keeping *partitionable* per-flow
state (established/na, packet counts, last-seen timestamps) like
netfilter's connection tracking.

Policy: traffic originating from the protected (internal) prefix
establishes a connection entry; external traffic is admitted only when
it matches an established connection that has not idled out.
"""

from __future__ import annotations

from ..net.packet import Packet, format_ip
from ..stm.transaction import TransactionContext
from .base import DROP, Middlebox, PASS, Verdict

__all__ = ["StatefulFirewall"]


class StatefulFirewall(Middlebox):
    """Connection-tracking firewall for an internal prefix."""

    def __init__(self, name: str = "sfw", internal_prefix: str = "10.",
                 idle_timeout_s: float = 30.0, processing_cycles=None):
        super().__init__(name, processing_cycles)
        self.internal_prefix = internal_prefix
        self.idle_timeout_s = idle_timeout_s

    def _is_internal(self, packet: Packet) -> bool:
        return format_ip(packet.flow.src_ip).startswith(self.internal_prefix)

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        if self._is_internal(packet):
            return self._outbound(packet, ctx)
        return self._inbound(packet, ctx)

    def _outbound(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        key = ("conn", packet.flow)
        entry = ctx.read(key)
        if entry is None:
            entry = {"packets": 0, "established": True}
        entry = dict(entry)
        entry["packets"] += 1
        entry["last_seen"] = ctx.now
        ctx.write(key, entry)
        return PASS

    def _inbound(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        key = ("conn", packet.flow.reversed())
        entry = ctx.read(key)
        if entry is None:
            self.count_drop(ctx)
            return DROP
        if ctx.now - entry.get("last_seen", 0.0) > self.idle_timeout_s:
            # Connection idled out: evict the entry and drop.
            ctx.delete(key)
            self.count_drop(ctx)
            return DROP
        refreshed = dict(entry)
        refreshed["last_seen"] = ctx.now
        ctx.write(key, refreshed)
        return PASS

    def describe(self) -> str:
        return (f"StatefulFirewall: per-flow connection tracking, "
                f"{self.idle_timeout_s}s idle timeout")
