"""Load balancer middlebox (extra, used by examples).

§3.2 motivates transactional packet processing with exactly this
function: "a load balancer and a NAT ensure connection persistence
(i.e., a connection is always directed to a unique destination) while
accessing a shared flow table".  The balancer picks a backend for the
first packet of a flow and pins the flow to it thereafter.
"""

from __future__ import annotations

from typing import List, Sequence

from ..net.packet import FlowKey, Packet, ip
from ..stm.transaction import TransactionContext
from .base import Middlebox, Verdict

__all__ = ["LoadBalancer"]


class LoadBalancer(Middlebox):
    """Flow-sticky round-robin L4 load balancer."""

    def __init__(self, name: str = "lb",
                 backends: Sequence[str] = ("192.168.1.1", "192.168.1.2"),
                 processing_cycles=None):
        super().__init__(name, processing_cycles)
        if not backends:
            raise ValueError("need at least one backend")
        self.backends: List[int] = [ip(b) for b in backends]

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        flow = packet.flow
        backend = ctx.read(("pin", flow))
        if backend is None:
            cursor = ctx.read("rr_cursor", 0)
            backend = self.backends[cursor % len(self.backends)]
            ctx.write("rr_cursor", cursor + 1)
            ctx.write(("pin", flow), backend)
            conn_key = ("conns", backend)
            ctx.write(conn_key, ctx.read(conn_key, 0) + 1)
        rewritten = packet.clone_headers()
        rewritten.flow = FlowKey(flow.src_ip, backend,
                                 flow.src_port, flow.dst_port, flow.proto)
        rewritten.meta.update(packet.meta)
        rewritten.pid = packet.pid
        return rewritten

    def describe(self) -> str:
        return f"LoadBalancer: sticky flows over {len(self.backends)} backends"
