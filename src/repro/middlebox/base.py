"""Middlebox programming model.

A middlebox implements :meth:`Middlebox.process`, reading and writing
its state exclusively through the transaction context it is handed
(FTC's state management API, §4.1: "for an existing middlebox to use
FTC, its source code must be modified to call our API for state reads
and writes").

``process`` returns a verdict: :data:`PASS` (forward the packet as
is), :data:`DROP` (filter it -- FTC then moves its state updates via a
propagating packet, §5.1), or a replacement :class:`~repro.net.Packet`
(e.g. a NAT rewrite).

Because the STM may execute a transaction body more than once,
``process`` must be deterministic given (store contents, packet) and
must confine its side effects to the context.
"""

from __future__ import annotations

from typing import Optional, Union

from ..net.packet import Packet
from ..stm.transaction import TransactionContext

__all__ = ["Middlebox", "PASS", "DROP", "Verdict"]


class _Verdict:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self):
        return f"<{self.name}>"


PASS = _Verdict("PASS")
DROP = _Verdict("DROP")

Verdict = Union[_Verdict, Packet]


class Middlebox:
    """Base class for data-plane functions.

    Attributes:
        name: instance name (unique within a chain).
        processing_cycles: per-packet CPU cost of the function logic
            itself, excluding locking/replication overheads which the
            runtime charges separately.  ``None`` means "use the
            calibrated default".
        stateless: stateless middleboxes skip the STM entirely.
    """

    #: Override in subclasses that keep no state (e.g. Firewall).
    stateless = False

    def __init__(self, name: str, processing_cycles: Optional[float] = None):
        self.name = name
        self.processing_cycles = processing_cycles
        self.packets_processed = 0
        self.packets_dropped = 0

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        """Handle one packet inside a packet transaction."""
        raise NotImplementedError

    def rescale(self, n_threads: int) -> None:
        """The hosting instance changed its thread count (live rescale).

        Middleboxes that partition state by thread id must remap here;
        existing store keys survive the rescale, so any aggregate reads
        should tolerate keys written under the previous layout.
        """

    def count_packet(self, ctx: TransactionContext) -> None:
        """Bump the processed counter (authoritative executions only)."""
        if ctx.authoritative:
            self.packets_processed += 1

    def count_drop(self, ctx: TransactionContext) -> None:
        if ctx.authoritative:
            self.packets_dropped += 1

    def describe(self) -> str:
        """Human-readable summary (state access pattern etc.)."""
        return type(self).__name__

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r}>"
