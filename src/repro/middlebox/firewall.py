"""Firewall middlebox (Table 1): stateless rule matching.

The paper's Firewall is stateless (Table 1 lists its state access as
N/A); it exists in Ch-Rec to show FTC handling a mix of stateful and
stateless functions and packet filtering (§5.1: a filtered packet's
piggybacked state travels on a propagating packet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..net.packet import FlowKey, Packet
from ..stm.transaction import TransactionContext
from .base import DROP, Middlebox, PASS, Verdict

__all__ = ["Firewall", "Rule"]


@dataclass(frozen=True)
class Rule:
    """A match-action rule; ``None`` fields are wildcards."""

    action: str  # "allow" | "deny"
    src_ip: Optional[int] = None
    dst_ip: Optional[int] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    proto: Optional[int] = None

    def matches(self, flow: FlowKey) -> bool:
        return ((self.src_ip is None or self.src_ip == flow.src_ip) and
                (self.dst_ip is None or self.dst_ip == flow.dst_ip) and
                (self.src_port is None or self.src_port == flow.src_port) and
                (self.dst_port is None or self.dst_port == flow.dst_port) and
                (self.proto is None or self.proto == flow.proto))


class Firewall(Middlebox):
    """First-match stateless packet filter."""

    stateless = True

    def __init__(self, name: str = "firewall",
                 rules: Optional[Sequence[Rule]] = None,
                 default_action: str = "allow",
                 processing_cycles=None):
        super().__init__(name, processing_cycles)
        if default_action not in ("allow", "deny"):
            raise ValueError(f"unknown default action {default_action!r}")
        self.rules: List[Rule] = list(rules or [])
        self.default_action = default_action

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        for rule in self.rules:
            if rule.matches(packet.flow):
                if rule.action == "deny":
                    self.count_drop(ctx)
                    return DROP
                return PASS
        if self.default_action == "deny":
            self.count_drop(ctx)
            return DROP
        return PASS

    def describe(self) -> str:
        return f"Firewall: stateless, {len(self.rules)} rules"
