"""Monitor middlebox (Table 1): read/write heavy flow statistics.

The paper's Monitor "counts the number of packets in a flow or across
flows.  It takes a *sharing level* parameter that specifies the number
of threads sharing the same state variable.  For example, no state is
shared for the sharing level 1, and all 8 threads share the same state
variable for sharing level 8."  Every packet performs a read and a
write on the shared counter, which makes Monitor the contention
stress-test for transactional packet processing (Fig 6, Fig 8a).
"""

from __future__ import annotations

from ..net.packet import Packet
from ..stm.transaction import TransactionContext
from .base import Middlebox, PASS, Verdict

__all__ = ["Monitor"]


class Monitor(Middlebox):
    """Per-group packet counter with a configurable sharing level."""

    def __init__(self, name: str = "monitor", sharing_level: int = 1,
                 n_threads: int = 8, count_bytes: bool = False,
                 processing_cycles=None):
        super().__init__(name, processing_cycles)
        if sharing_level < 1 or sharing_level > n_threads:
            raise ValueError(
                f"sharing level must be in [1, {n_threads}], got {sharing_level}")
        if n_threads % sharing_level != 0:
            raise ValueError("sharing level must divide the thread count")
        self.sharing_level = sharing_level
        self.n_threads = n_threads
        self.count_bytes = count_bytes

    def group_of(self, thread_id: int) -> int:
        """The counter group this thread belongs to."""
        return thread_id // self.sharing_level

    def counter_key(self, thread_id: int):
        return ("count", self.group_of(thread_id))

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        key = self.counter_key(ctx.thread_id)
        ctx.write(key, ctx.read(key, 0) + 1)
        if self.count_bytes:
            bytes_key = ("bytes", self.group_of(ctx.thread_id))
            ctx.write(bytes_key, ctx.read(bytes_key, 0) + packet.size)
        return PASS

    def rescale(self, n_threads: int) -> None:
        if n_threads == self.n_threads:
            return
        self.n_threads = n_threads
        if n_threads % self.sharing_level != 0:
            # Old counter groups stay in the store; total_count sums
            # whatever groups exist, so regrouping loses nothing.
            self.sharing_level = 1

    def total_count(self, store) -> int:
        """Sum of all counter groups in a state store (for tests).

        Iterates the store rather than ``range(n_threads)`` so counts
        written under an earlier thread layout (before a live rescale)
        are still included.
        """
        return sum(value for key, value in store.items()
                   if isinstance(key, tuple) and key[0] == "count")

    def describe(self) -> str:
        return (f"Monitor: read+write per packet, sharing level "
                f"{self.sharing_level}/{self.n_threads} threads")
