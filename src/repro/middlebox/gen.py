"""Gen middlebox (Table 1): write-heavy state-size stressor.

"Gen represents a write-heavy middlebox that takes a state size
parameter, which allows us to test the impact of a middlebox's state
size on performance" -- it writes a fresh blob of the configured size
on every packet, so the piggyback log carries exactly ``state_size``
bytes of updates per packet.  Used by Fig 5 and the Ch-Gen chain.
"""

from __future__ import annotations

from ..net.packet import Packet
from ..stm.transaction import TransactionContext
from .base import Middlebox, PASS, Verdict

__all__ = ["Gen"]


class Gen(Middlebox):
    """Writes ``state_size`` bytes of per-thread state on every packet."""

    def __init__(self, name: str = "gen", state_size: int = 64,
                 processing_cycles=None):
        super().__init__(name, processing_cycles)
        if state_size < 1:
            raise ValueError("state size must be positive")
        self.state_size = state_size

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        # A deterministic blob: derived from the packet id so repeated
        # transaction execution writes identical bytes.
        fill = packet.pid & 0xFF
        blob = bytes([fill]) * self.state_size
        ctx.write(("blob", ctx.thread_id), blob)
        return PASS

    def describe(self) -> str:
        return f"Gen: write per packet, state size {self.state_size} B"
