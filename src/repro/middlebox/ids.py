"""Intrusion detection middlebox with shared counters.

§2 cites "port-counts in an intrusion detection system" as the
canonical *shared* state variable: every thread updates the same
counters, making this the cross-thread contention workload (alongside
Monitor's sharing levels).  The detector keeps global per-destination-
port hit counts and flags ports whose rate of distinct sources exceeds
a threshold (a horizontal-scan heuristic).
"""

from __future__ import annotations

from ..net.packet import Packet
from ..stm.transaction import TransactionContext
from .base import DROP, Middlebox, PASS, Verdict

__all__ = ["PortCountIDS"]


class PortCountIDS(Middlebox):
    """Shared port-count IDS: counts hits and flags hot ports."""

    def __init__(self, name: str = "ids", alert_threshold: int = 1000,
                 drop_on_alert: bool = False, watched_ports=(22, 23, 3389),
                 processing_cycles=None):
        super().__init__(name, processing_cycles)
        self.alert_threshold = alert_threshold
        self.drop_on_alert = drop_on_alert
        self.watched_ports = frozenset(watched_ports)

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        port = packet.flow.dst_port
        if port not in self.watched_ports:
            return PASS
        count_key = ("port-count", port)
        count = ctx.read(count_key, 0) + 1
        ctx.write(count_key, count)
        if count == self.alert_threshold:
            ctx.write(("alert", port), True)
        if self.drop_on_alert and ctx.read(("alert", port)):
            self.count_drop(ctx)
            return DROP
        return PASS

    def alerts(self, store) -> list:
        """Ports currently flagged in a state store."""
        return sorted(port for port in self.watched_ports
                      if store.get(("alert", port)))

    def describe(self) -> str:
        return (f"PortCountIDS: shared counters on "
                f"{sorted(self.watched_ports)}, alert at "
                f"{self.alert_threshold}")
