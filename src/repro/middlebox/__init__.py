"""Middlebox framework and the paper's Table 1 functions."""

from .base import DROP, Middlebox, PASS, Verdict
from .chains import ch_gen, ch_n, ch_rec
from .firewall import Firewall, Rule
from .gen import Gen
from .ids import PortCountIDS
from .loadbalancer import LoadBalancer
from .monitor import Monitor
from .nat import MazuNAT, SimpleNAT
from .policer import TokenBucketPolicer
from .registry import available, create, register
from .stateful_firewall import StatefulFirewall

__all__ = [
    "DROP",
    "Firewall",
    "Gen",
    "LoadBalancer",
    "MazuNAT",
    "Middlebox",
    "Monitor",
    "PASS",
    "PortCountIDS",
    "Rule",
    "SimpleNAT",
    "StatefulFirewall",
    "TokenBucketPolicer",
    "Verdict",
    "available",
    "ch_gen",
    "ch_n",
    "ch_rec",
    "create",
    "register",
]
