"""Chain definitions from Table 1.

=========  =================================================
Chain      Middleboxes in chain
=========  =================================================
Ch-n       Monitor_1 -> ... -> Monitor_n
Ch-Gen     Gen_1 -> Gen_2
Ch-Rec     Firewall -> Monitor -> SimpleNAT
=========  =================================================
"""

from __future__ import annotations

from typing import List

from .base import Middlebox
from .firewall import Firewall
from .gen import Gen
from .monitor import Monitor
from .nat import SimpleNAT

__all__ = ["ch_n", "ch_gen", "ch_rec"]


def ch_n(n: int, sharing_level: int = 1, n_threads: int = 8) -> List[Middlebox]:
    """Ch-n: a chain of ``n`` Monitors (§7.4's scaling workload)."""
    if n < 1:
        raise ValueError("chain length must be >= 1")
    return [Monitor(name=f"monitor{i + 1}", sharing_level=sharing_level,
                    n_threads=n_threads)
            for i in range(n)]


def ch_gen(state_size: int = 64) -> List[Middlebox]:
    """Ch-Gen: Gen1 -> Gen2 (Fig 5's chain variant)."""
    return [Gen(name="gen1", state_size=state_size),
            Gen(name="gen2", state_size=state_size)]


def ch_rec(sharing_level: int = 1, n_threads: int = 8) -> List[Middlebox]:
    """Ch-Rec: Firewall -> Monitor -> SimpleNAT (§7.5's recovery chain)."""
    return [Firewall(name="firewall"),
            Monitor(name="monitor", sharing_level=sharing_level,
                    n_threads=n_threads),
            SimpleNAT(name="simplenat")]
