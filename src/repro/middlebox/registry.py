"""Name -> middlebox factory registry (for examples and config files)."""

from __future__ import annotations

from typing import Callable, Dict

from .base import Middlebox
from .firewall import Firewall
from .gen import Gen
from .ids import PortCountIDS
from .loadbalancer import LoadBalancer
from .monitor import Monitor
from .nat import MazuNAT, SimpleNAT
from .policer import TokenBucketPolicer
from .stateful_firewall import StatefulFirewall

__all__ = ["create", "register", "available"]

_FACTORIES: Dict[str, Callable[..., Middlebox]] = {
    "mazunat": MazuNAT,
    "simplenat": SimpleNAT,
    "monitor": Monitor,
    "gen": Gen,
    "firewall": Firewall,
    "stateful-firewall": StatefulFirewall,
    "loadbalancer": LoadBalancer,
    "policer": TokenBucketPolicer,
    "ids": PortCountIDS,
}


def register(kind: str, factory: Callable[..., Middlebox]) -> None:
    """Register a custom middlebox type."""
    if kind in _FACTORIES:
        raise ValueError(f"middlebox kind {kind!r} already registered")
    _FACTORIES[kind] = factory


def create(kind: str, **kwargs) -> Middlebox:
    """Instantiate a middlebox by type name."""
    try:
        factory = _FACTORIES[kind]
    except KeyError:
        raise ValueError(
            f"unknown middlebox kind {kind!r}; "
            f"available: {sorted(_FACTORIES)}") from None
    return factory(**kwargs)


def available() -> list:
    return sorted(_FACTORIES)
