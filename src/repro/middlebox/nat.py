"""Network address translators (Table 1).

*MazuNAT* re-implements the core behaviour of the commercial Mazu
Networks NAT the paper runs (a Click configuration): per-flow lookup
on every packet (read-heavy), a mapping allocation on the first packet
of a flow (moderate writes), connection persistence, and reverse-path
translation.

*SimpleNAT* provides basic NAT functionality only: one flow table,
sequential port allocation.

Both keep the canonical NAT record the paper sizes at roughly 32 B
(§7.2): the two IPv4/port pairs plus a flow identifier.
"""

from __future__ import annotations

from ..net.packet import FlowKey, Packet, ip
from ..stm.transaction import TransactionContext
from .base import DROP, Middlebox, PASS, Verdict

__all__ = ["MazuNAT", "SimpleNAT"]

#: Serialized size of one NAT mapping record (paper §7.2: ~32 B).
NAT_RECORD_BYTES = 32


class MazuNAT(Middlebox):
    """Core of a commercial NAT: translate internal flows to a public IP.

    State layout (all in the middlebox's FTC state store):

    * ``("fwd", flow)``   -> allocated external source port
    * ``("rev", ext_flow)`` -> original internal flow (return path)
    * ``"next_port"``     -> allocation cursor
    """

    def __init__(self, name: str = "mazunat",
                 external_ip: str = "203.0.113.1",
                 internal_prefix: str = "10.",
                 first_port: int = 10000, last_port: int = 60000,
                 processing_cycles=None):
        super().__init__(name, processing_cycles)
        self.external_ip = ip(external_ip)
        self.internal_prefix = internal_prefix
        self.first_port = first_port
        self.last_port = last_port

    def _is_internal(self, packet: Packet) -> bool:
        from ..net.packet import format_ip
        return format_ip(packet.flow.src_ip).startswith(self.internal_prefix)

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        if self._is_internal(packet):
            return self._outbound(packet, ctx)
        return self._inbound(packet, ctx)

    def _outbound(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        flow = packet.flow
        port = ctx.read(("fwd", flow))
        if port is None:
            port = self._allocate(flow, ctx)
            if port is None:
                self.count_drop(ctx)
                return DROP  # port pool exhausted
        translated = packet.clone_headers()
        translated.flow = FlowKey(self.external_ip, flow.dst_ip,
                                  port, flow.dst_port, flow.proto)
        translated.meta.update(packet.meta)
        translated.pid = packet.pid
        return translated

    def _inbound(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        key = ("rev", packet.flow.reversed())
        original = ctx.read(key)
        if original is None:
            self.count_drop(ctx)
            return DROP  # unsolicited inbound traffic
        translated = packet.clone_headers()
        translated.flow = original.reversed()
        translated.meta.update(packet.meta)
        translated.pid = packet.pid
        return translated

    def _allocate(self, flow: FlowKey, ctx: TransactionContext):
        cursor = ctx.read("next_port", self.first_port)
        if cursor > self.last_port:
            return None
        ctx.write("next_port", cursor + 1)
        external_flow = FlowKey(self.external_ip, flow.dst_ip,
                                cursor, flow.dst_port, flow.proto)
        ctx.write(("fwd", flow), cursor)
        ctx.write(("rev", external_flow), flow)
        return cursor

    def describe(self) -> str:
        return "MazuNAT: reads per packet, writes per flow (shared table)"


class SimpleNAT(Middlebox):
    """Basic NAT: one table, first-touch port assignment, no reverse path."""

    def __init__(self, name: str = "simplenat",
                 external_ip: str = "203.0.113.2",
                 first_port: int = 20000, processing_cycles=None):
        super().__init__(name, processing_cycles)
        self.external_ip = ip(external_ip)
        self.first_port = first_port

    def process(self, packet: Packet, ctx: TransactionContext) -> Verdict:
        self.count_packet(ctx)
        flow = packet.flow
        port = ctx.read(("map", flow))
        if port is None:
            cursor = ctx.read("next_port", self.first_port)
            ctx.write("next_port", cursor + 1)
            ctx.write(("map", flow), cursor)
            port = cursor
        translated = packet.clone_headers()
        translated.flow = FlowKey(self.external_ip, flow.dst_ip,
                                  port, flow.dst_port, flow.proto)
        translated.meta.update(packet.meta)
        translated.pid = packet.pid
        return translated

    def describe(self) -> str:
        return "SimpleNAT: reads per packet, writes per flow"
