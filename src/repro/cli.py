"""Command-line interface.

Eight subcommands cover the common workflows::

    python -m repro list                    # available middleboxes/systems
    python -m repro run --chain monitor,monitor --system ftc --rate 2e6
    python -m repro experiment fig9         # regenerate a table/figure
    python -m repro chaos --seed 0 --faults 3   # fault-injection soak
    python -m repro trace --out trace.json  # sampled Chrome trace
    python -m repro explain flight.json --recovery 1   # post-mortem
    python -m repro report --slo p99_latency_us<=500   # markdown report
    python -m repro perf bench --all --quick  # perfscope suite (§13)

``run`` builds the requested chain under the requested system, drives
it for a simulated duration, and prints throughput/latency plus the
per-middlebox state summary; ``--telemetry`` adds the chain-wide metric
summary (PROTOCOL.md §7).  ``trace`` is ``run`` with per-packet span
recording on, exporting Chrome ``trace_event`` JSON for
``chrome://tracing`` / Perfetto.

``--flight`` (run/trace/report, and per-schedule on ``chaos``) turns
on the causal flight recorder (PROTOCOL.md §10); ``explain`` walks a
dump's ``parent_ref`` links to reconstruct one packet's journey, one
recovery, or one leadership epoch; ``report`` runs a chain under an
SLO watchdog and renders a self-contained markdown run report.
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from .experiments import systems as _systems
from .metrics import EgressRecorder, format_table
from .middlebox import available, create
from .net import TrafficGenerator, balanced_flows
from .sim import Simulator

__all__ = ["main"]

_EXPERIMENTS = ["table2", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
                "fig11", "fig12", "fig13", "ablations", "calibration",
                "lossy", "ctrlplane", "reconfig", "overload"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fault Tolerant Service Function Chaining (SIGCOMM'20) "
                    "reproduction")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list middlebox kinds, systems, experiments")

    def _chain_options(cmd):
        cmd.add_argument("--chain", default="monitor,monitor",
                         help="comma-separated middlebox kinds (see 'list')")
        cmd.add_argument("--system", default="ftc",
                         help="nf | ftc | ftmb | ftmb+snapshot | remote-store")
        cmd.add_argument("--rate", type=float, default=1e6,
                         help="offered load in packets/second")
        cmd.add_argument("--duration", type=float, default=0.01,
                         help="simulated seconds of traffic")
        cmd.add_argument("--threads", type=int, default=8,
                         help="worker threads per server")
        cmd.add_argument("-f", type=int, default=1, dest="failures",
                         help="failures to tolerate (FTC only)")
        cmd.add_argument("--packet-size", type=int, default=256)
        cmd.add_argument("--flows", type=int, default=64)
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--fail-at", type=float, default=None,
                         help="inject a failure at this time (FTC only)")
        cmd.add_argument("--fail-position", type=int, default=0)
        cmd.add_argument("--impair-data", default=None, metavar="SPEC",
                         dest="impair_data",
                         help="impair chain links, e.g. "
                              "drop=0.05,dup=0.02,reorder=0.02,corrupt=0.01 "
                              "(FTC hops switch to reliable channels, §8)")
        cmd.add_argument("--workload", default=None, metavar="SPEC",
                         help="drive a WorkloadSpec instead of constant "
                              "--rate traffic, e.g. base=2e4,"
                              "flash=0.002:0.004:4,diurnal=0.3:0.05,"
                              "alpha=1.3,flows=64,classes=3 "
                              "(PROTOCOL.md §12.1; --rate/--flows/"
                              "--packet-size are ignored)")
        cmd.add_argument("--flight", nargs="?", const="flight.json",
                         default=None, metavar="PATH",
                         help="record a causal flight log and dump it to "
                              "PATH (default flight.json) for 'repro "
                              "explain' (PROTOCOL.md §10)")

    run = sub.add_parser("run", help="simulate a chain under a system")
    _chain_options(run)
    run.add_argument("--orchestrators", type=int, default=1, metavar="N",
                     help="replicated control plane: N leader-elected "
                          "orchestrators with epoch fencing (FTC only; "
                          "N=1 keeps the single-orchestrator path)")
    run.add_argument("--telemetry", action="store_true",
                     help="collect chain-wide metrics and print the "
                          "telemetry summary (FTC only)")
    run.add_argument("--trace-out", default=None, metavar="PATH",
                     help="with --telemetry: also export a Chrome trace")

    trace = sub.add_parser(
        "trace", help="record a sampled per-packet Chrome trace")
    _chain_options(trace)
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="Chrome trace_event JSON output path")
    trace.add_argument("--sample", type=int, default=1,
                       help="trace every Nth packet id (default: all)")
    trace.add_argument("--timeline", action="store_true",
                       help="also print the recovery timeline report")

    exp = sub.add_parser("experiment", help="regenerate a table/figure")
    exp.add_argument("name", choices=_EXPERIMENTS)

    chaos = sub.add_parser(
        "chaos", help="run a randomized fault-injection soak")
    chaos.add_argument("--seed", type=int, default=0,
                       help="base seed (reproduces a soak bit-for-bit)")
    chaos.add_argument("--schedules", type=int, default=50,
                       help="randomized schedules to run")
    chaos.add_argument("--faults", type=int, default=3,
                       help="faults injected per schedule")
    chaos.add_argument("--lengths", default="2,3,4,5",
                       help="comma-separated Ch-n chain lengths")
    chaos.add_argument("--f-values", default="1,2", dest="f_values",
                       help="comma-separated f values to sweep")
    chaos.add_argument("--duration", type=float, default=60e-3,
                       help="simulated seconds per schedule")
    chaos.add_argument("--rate", type=float, default=2e4,
                       help="offered load in packets/second")
    chaos.add_argument("-v", "--verbose", action="store_true",
                       help="print each schedule as it completes")
    chaos.add_argument("--telemetry", action="store_true",
                       help="aggregate chain-wide metrics and recovery "
                            "timelines across schedules")
    chaos.add_argument("--impair-data", default=None, metavar="SPEC",
                       dest="impair_data",
                       help="soak the data plane instead: impair chain "
                            "links (e.g. drop=0.05,dup=0.02,reorder=0.02,"
                            "corrupt=0.01) and audit exactly-once egress")
    chaos.add_argument("--orchestrators", type=int, default=1, metavar="N",
                       help="soak the control plane: N leader-elected "
                            "orchestrators per schedule (default 1: the "
                            "classic single-orchestrator soak)")
    chaos.add_argument("--orch-faults", action="store_true",
                       dest="orch_faults",
                       help="with --orchestrators > 1: also crash, "
                            "partition, and freeze ensemble members")
    chaos.add_argument("--reconfig", action="store_true",
                       help="soak live reconfiguration: each schedule "
                            "drives a scripted operation sequence "
                            "(classifier, rescale, migrate, insert, "
                            "remove) under traffic + lossy links and "
                            "audits zero-loss in-order egress "
                            "(PROTOCOL.md §11)")
    chaos.add_argument("--reconfig-crashes", action="store_true",
                       dest="reconfig_crashes",
                       help="with --reconfig: also crash a replica "
                            "mid-drain (zero-loss waived; every other "
                            "invariant still audited)")
    chaos.add_argument("--overload", nargs="?", const="", default=None,
                       metavar="SPEC",
                       help="soak the overload stack instead: each "
                            "schedule drives a flash-crowd workload "
                            "through admission control + backpressure + "
                            "brownout and audits the §12 invariants; "
                            "SPEC tunes it, e.g. over=8,base=0.6,"
                            "budget=1.25,floor=0.25,crash=1,orch=3")
    chaos.add_argument("--flight", nargs="?", const="flight-dumps",
                       default=None, metavar="DIR",
                       help="record a flight log per schedule; an invariant "
                            "violation auto-dumps flight-<index>.json into "
                            "DIR for 'repro explain'")

    explain = sub.add_parser(
        "explain", help="post-mortem: reconstruct a causal chain "
                        "from a flight dump")
    explain.add_argument("dump", help="flight dump JSON "
                                      "(--flight output or a soak auto-dump)")
    what = explain.add_mutually_exclusive_group(required=True)
    what.add_argument("--packet", type=int, default=None, metavar="PID",
                      help="one packet's journey through the chain")
    what.add_argument("--recovery", type=int, default=None, metavar="POS",
                      help="one recovery of chain position POS, "
                           "cross-checked against the RecoveryTimeline")
    what.add_argument("--epoch", type=int, default=None, metavar="E",
                      help="one leadership term: election, journal "
                           "writes, demise")

    report = sub.add_parser(
        "report", help="run a chain and render a markdown run report")
    _chain_options(report)
    report.add_argument("--orchestrators", type=int, default=1, metavar="N",
                        help="replicated control plane, as in 'run'")
    report.add_argument("--slo", default=None, metavar="SPEC",
                        help="SLO objectives, e.g. 'p99_latency_us<=250,"
                             "goodput_pps>=5e5' (indicators: p99_latency_us, "
                             "goodput_pps, retransmit_rate, and with "
                             "--orchestrators > 1 detection_s, recovery_s)")
    report.add_argument("--out", default=None, metavar="PATH",
                        help="write the markdown report here "
                             "(default: stdout)")

    from .perf.cli import add_perf_parser
    add_perf_parser(sub)
    return parser


def _cmd_list() -> int:
    print("middlebox kinds:")
    for kind in available():
        print(f"  {kind}")
    print("\nsystems: nf, ftc, ftmb, ftmb+snapshot, remote-store")
    print("\nexperiments:", ", ".join(_EXPERIMENTS))
    return 0


def _parse_impairment(text: str, prog: str):
    from .net import DataImpairment
    try:
        return DataImpairment.parse(text)
    except ValueError as err:
        raise SystemExit(f"{prog}: {err}")


def _run_chain(args, telemetry=None, on_ready=None):
    """Shared run/trace/report driver; returns (system, generator,
    egress, middleboxes) after the simulation has completed.

    ``on_ready(sim, system, egress, ensemble)`` is called once the
    chain is built but before traffic runs -- the hook ``report`` uses
    to start its SLO watchdog inside the simulation.
    """
    impairment = None
    if getattr(args, "impair_data", None):
        impairment = _parse_impairment(args.impair_data, "repro run")
    sim = Simulator()
    egress = EgressRecorder(sim)
    middleboxes = [create(kind.strip(), name=f"{kind.strip()}{i}")
                   for i, kind in enumerate(args.chain.split(","))]
    system = _systems.build_system(
        args.system, sim, middleboxes, egress, n_threads=args.threads,
        f=args.failures, seed=args.seed, telemetry=telemetry)
    if impairment is not None:
        print(f"data impairment: {impairment.describe()}")
        if hasattr(system, "reliable_links"):
            # FTC hops switch to sequenced/retransmitting channels (§8);
            # baselines run raw and simply lose packets.
            system.reliable_links = True
        system.net.impair_data(
            drop_rate=impairment.drop_rate, dup_rate=impairment.dup_rate,
            reorder_rate=impairment.reorder_rate,
            corrupt_rate=impairment.corrupt_rate, seed=args.seed)
    system.start()
    ensemble = None
    if getattr(args, "orchestrators", 1) > 1:
        if not hasattr(system, "fail_position"):
            print("--orchestrators requires --system ftc", file=sys.stderr)
            return None
        from .chaos.soak import CTRLPLANE_ELECTION
        from .orchestration import OrchestratorEnsemble

        ensemble = OrchestratorEnsemble(
            sim, system, n=args.orchestrators, election=CTRLPLANE_ELECTION,
            telemetry=telemetry)
        ensemble.start()
    if getattr(args, "workload", None):
        from .net import WorkloadGenerator, WorkloadSpec
        from .sim import RandomStreams
        try:
            spec = WorkloadSpec.parse(args.workload)
        except ValueError as err:
            raise SystemExit(f"repro run: bad --workload: {err}")
        print(f"workload: {spec.describe()}")
        generator = WorkloadGenerator(
            sim, system.ingress, spec, n_queues=args.threads,
            streams=RandomStreams(args.seed))
    else:
        generator = TrafficGenerator(
            sim, system.ingress, rate_pps=args.rate,
            flows=balanced_flows(args.flows, args.threads),
            packet_size=args.packet_size)

    if args.fail_at is not None:
        if not hasattr(system, "fail_position"):
            print("--fail-at requires --system ftc", file=sys.stderr)
            return None
        from .core import recover_positions

        hooks = None
        if telemetry is not None:
            hooks = (lambda phase, positions:
                     telemetry.timeline.record(phase, positions, t=sim.now))

        def chaos(sim):
            yield sim.timeout(args.fail_at)
            system.fail_position(args.fail_position)
            if telemetry is not None:
                telemetry.timeline.record(
                    "fault-injected", [args.fail_position],
                    detail="--fail-at", t=sim.now)
            if ensemble is not None:
                return  # the elected leader detects and recovers it
            report = yield sim.process(
                recover_positions(system, [args.fail_position],
                                  hooks=hooks))
            print(f"[{sim.now * 1e3:.2f} ms] recovered position "
                  f"{args.fail_position} in {report.total_s * 1e3:.2f} ms")

        sim.process(chaos(sim))

    if on_ready is not None:
        on_ready(sim, system, egress, ensemble)
    warmup = min(args.duration * 0.2, 1e-3)
    sim.run(until=warmup)
    egress.throughput.start_window()
    egress.latency.start_after(warmup)
    if telemetry is not None:
        telemetry.start_window(sim.now)
    sim.run(until=args.duration)
    generator.stop()
    sim.run(until=args.duration + 0.5e-3)
    if ensemble is not None:
        for event in ensemble.history:
            if event.report is not None:
                print(f"[{event.detected_at * 1e3:.2f} ms] leader recovered "
                      f"positions {event.positions} in "
                      f"{event.report.total_s * 1e3:.2f} ms")
            elif event.error:
                print(f"[{event.detected_at * 1e3:.2f} ms] recovery of "
                      f"{event.positions} failed: {event.error}")
        ensemble.stop()
        leader = ensemble.leader
        print(f"control plane: {args.orchestrators} orchestrators, "
              f"{len(ensemble.election_log)} elections, leader "
              f"{'m%d' % leader.index if leader else 'none'} at epoch "
              f"{ensemble.max_epoch}, "
              f"{ensemble.gate.fenced_commands} stale commands fenced")
    return system, generator, egress, middleboxes


def _print_run_summary(args, system, generator, egress, middleboxes) -> None:
    print(f"\n{args.system.upper()} chain: "
          f"{' -> '.join(m.name for m in middleboxes)}")
    if getattr(args, "impair_data", None):
        spec = _parse_impairment(args.impair_data, "repro run")
        print(f"data impairment: {spec.describe()}")
        stats = system.net.data_impairment_stats()
        print(f"  links: {stats['dropped']} dropped, "
              f"{stats['duplicated']} duplicated, "
              f"{stats['reordered']} reordered, "
              f"{stats['corrupted']} corrupted")
        if hasattr(system, "channel_stats"):
            ch = system.channel_stats()
            print(f"  channels: {ch.get('retransmissions', 0)} "
                  f"retransmissions, {ch.get('nacks_sent', 0)} NACKs, "
                  f"{ch.get('dup_dropped', 0)} dups dropped, "
                  f"{ch.get('corrupt_dropped', 0)} corrupt dropped")
    if getattr(args, "workload", None):
        print(f"offered {generator.sent} packets (workload-driven); "
              f"released {system.total_released()}")
    else:
        print(f"offered {generator.sent} packets at {args.rate:g} pps; "
              f"released {system.total_released()}")
    print(f"throughput: {egress.throughput.rate_mpps():.3f} Mpps"
          f"  ({egress.throughput.rate_gbps():.2f} Gbps)")
    if len(egress.latency):
        print(f"latency: mean {egress.latency.mean_us():.1f} us, "
              f"p50 {egress.latency.percentile_us(50):.1f}, "
              f"p99 {egress.latency.percentile_us(99):.1f}")
    rows = [(m.name, m.describe(), m.packets_processed, m.packets_dropped)
            for m in middleboxes]
    print()
    print(format_table(["middlebox", "function", "processed", "dropped"],
                       rows))


def _make_telemetry(args, sample_every: int = 1, flight=None):
    if args.system.lower() != "ftc":
        print(f"note: telemetry hooks only instrument the FTC chain; "
              f"--system {args.system} runs without them", file=sys.stderr)
    from .telemetry import Telemetry
    return Telemetry(sample_every=sample_every, flight=flight)


def _make_flight(args):
    """A FlightRecorder for --flight runs; trips auto-dump to the
    requested path, and the CLI demand-dumps there at the end anyway."""
    from .flight import FlightRecorder
    flight = FlightRecorder(autodump_path=args.flight)
    flight.set_context(seed=args.seed, chain=args.chain, system=args.system,
                       rate_pps=args.rate, duration_s=args.duration,
                       f=args.failures)
    return flight


def _dump_flight(flight, path, telemetry) -> None:
    flight.dump_json(path, reason="demand", telemetry=telemetry)
    print(f"flight dump written to {path} ({len(flight)} events, "
          f"{flight.dropped} shed, {len(flight.trips)} trips)")


def _cmd_run(args) -> int:
    flight = _make_flight(args) if args.flight else None
    telemetry = None
    if args.telemetry or flight is not None:
        telemetry = _make_telemetry(args, flight=flight)
    result = _run_chain(args, telemetry=telemetry)
    if result is None:
        return 2
    _print_run_summary(args, *result)
    if telemetry is not None and args.telemetry:
        print()
        print(telemetry.summary_table())
        if args.trace_out:
            telemetry.export_chrome(args.trace_out)
            print(f"chrome trace written to {args.trace_out}")
    if flight is not None:
        _dump_flight(flight, args.flight, telemetry)
    return 0


def _cmd_trace(args) -> int:
    flight = _make_flight(args) if args.flight else None
    telemetry = _make_telemetry(args, sample_every=max(1, args.sample),
                                flight=flight)
    result = _run_chain(args, telemetry=telemetry)
    if result is None:
        return 2
    _print_run_summary(args, *result)
    print()
    print(telemetry.summary_table())
    if args.timeline and telemetry.timeline.events:
        print()
        print(telemetry.timeline.render())
    telemetry.export_chrome(args.out)
    print(f"chrome trace written to {args.out} "
          f"(open in chrome://tracing or https://ui.perfetto.dev)")
    if flight is not None:
        _dump_flight(flight, args.flight, telemetry)
    return 0


def _cmd_explain(args) -> int:
    from .flight import (explain_epoch, explain_packet, explain_recovery,
                         load_dump)
    try:
        dump = load_dump(args.dump)
    except (OSError, ValueError) as err:
        print(f"repro explain: {err}", file=sys.stderr)
        return 2
    if args.packet is not None:
        text = explain_packet(dump, args.packet)
    elif args.recovery is not None:
        text = explain_recovery(dump, args.recovery)
    else:
        text = explain_epoch(dump, args.epoch)
    print(text)
    return 1 if "timeline cross-check: MISMATCH" in text else 0


def _cmd_report(args) -> int:
    from .flight import (SLOWatchdog, parse_slo_spec, render_report,
                         run_probes)

    objectives = []
    if args.slo:
        try:
            objectives = parse_slo_spec(args.slo)
        except ValueError as err:
            raise SystemExit(f"repro report: {err}")
    flight = _make_flight(args)
    telemetry = _make_telemetry(args, flight=flight)
    state = {}

    def on_ready(sim, system, egress, ensemble):
        probes = run_probes(
            egress,
            chain=system if hasattr(system, "channel_stats") else None,
            orchestrator=ensemble)
        try:
            watchdog = SLOWatchdog(sim, objectives, probes,
                                   telemetry=telemetry)
        except ValueError as err:
            raise SystemExit(
                f"repro report: {err} (detection_s/recovery_s need "
                f"--orchestrators > 1; retransmit_rate needs --system ftc)")
        watchdog.start()
        state["watchdog"] = watchdog

    result = _run_chain(args, telemetry=telemetry, on_ready=on_ready)
    if result is None:
        return 2
    system, generator, egress, middleboxes = result
    watchdog = state.get("watchdog")
    if watchdog is not None:
        # No final pass after the drain: the post-traffic window would
        # read as a goodput collapse that never happened on the wire.
        watchdog.stop()
    config = {"chain": args.chain, "system": args.system,
              "rate_pps": args.rate, "duration_s": args.duration,
              "threads": args.threads, "f": args.failures,
              "seed": args.seed, "offered": generator.sent}
    if args.orchestrators > 1:
        config["orchestrators"] = args.orchestrators
    if args.slo:
        config["slo"] = args.slo
    text = render_report(
        title=f"Run report: {args.system.upper()} "
              f"{' -> '.join(m.name for m in middleboxes)}",
        config=config, egress=egress, telemetry=telemetry,
        watchdog=watchdog, flight=flight)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"report written to {args.out}")
    else:
        print(text, end="")
    if args.flight:
        _dump_flight(flight, args.flight, telemetry)
    return 0 if watchdog is None or watchdog.ok else 1


def _parse_int_list(text: str, option: str) -> List[int]:
    try:
        values = [int(item) for item in text.split(",")]
    except ValueError:
        raise SystemExit(f"repro chaos: {option} wants comma-separated "
                         f"integers, got {text!r}")
    if not values or any(v < 1 for v in values):
        raise SystemExit(f"repro chaos: {option} values must be >= 1, "
                         f"got {text!r}")
    return values


def _cmd_chaos(args) -> int:
    from .chaos import SoakConfig, run_soak

    if args.orchestrators < 1:
        raise SystemExit("repro chaos: --orchestrators must be >= 1")
    if args.orch_faults and args.orchestrators < 2:
        raise SystemExit("repro chaos: --orch-faults needs "
                         "--orchestrators >= 2 (no ensemble to attack)")
    if args.impair_data and args.orchestrators > 1:
        raise SystemExit("repro chaos: --impair-data and --orchestrators "
                         "are separate soak modes; pick one")
    if args.reconfig and args.impair_data:
        raise SystemExit("repro chaos: --reconfig runs its own impairment "
                         "window; drop --impair-data")
    if args.reconfig_crashes and not args.reconfig:
        raise SystemExit("repro chaos: --reconfig-crashes needs --reconfig")

    overload = None
    if args.overload is not None:
        if args.impair_data or args.reconfig:
            raise SystemExit("repro chaos: --overload is its own soak "
                             "mode; drop --impair-data/--reconfig")
        from .chaos import OverloadSpec
        try:
            overload = OverloadSpec.parse(args.overload)
        except ValueError as err:
            raise SystemExit(f"repro chaos: bad --overload: {err}")
        if args.orchestrators > 1 and overload.orchestrators == 1:
            overload = OverloadSpec.parse(
                (args.overload + "," if args.overload else "")
                + f"orch={args.orchestrators}")
        print(f"overload soak: {overload.describe()}")

    impair_data = None
    if args.impair_data:
        spec = _parse_impairment(args.impair_data, "repro chaos")
        impair_data = (spec.drop_rate, spec.dup_rate, spec.reorder_rate,
                       spec.corrupt_rate)
        print(f"data impairment: {spec.describe()}")

    config = SoakConfig(
        seed=args.seed, schedules=args.schedules,
        faults_per_schedule=args.faults,
        chain_lengths=_parse_int_list(args.lengths, "--lengths"),
        f_values=_parse_int_list(args.f_values, "--f-values"),
        duration_s=args.duration, rate_pps=args.rate,
        telemetry=args.telemetry, impair_data=impair_data,
        orchestrators=args.orchestrators, orch_faults=args.orch_faults,
        reconfig=args.reconfig, reconfig_crashes=args.reconfig_crashes,
        flight=bool(args.flight),
        flight_dump_dir=args.flight or "flight-dumps",
        overload=overload)

    def progress(schedule):
        status = "ok" if schedule.ok else "FAIL"
        extra = (f"{schedule.retransmissions} retransmitted, "
                 if impair_data else "")
        if overload is not None:
            extra += (f"{schedule.shed} shed, "
                      f"{schedule.brownout_transitions} brownout, "
                      f"{schedule.goodput_pps:.0f}pps, ")
        if args.orchestrators > 1:
            extra += (f"{schedule.elections} elections, "
                      f"{schedule.fenced_commands} fenced, ")
        print(f"  schedule {schedule.index:3d} seed={schedule.seed} "
              f"Ch-{schedule.chain_length} f={schedule.f}: "
              f"{len(schedule.faults)} faults, "
              f"{schedule.failures_detected} detected, "
              f"{schedule.recoveries} recovered, {extra}"
              f"{schedule.released} released -> {status}")

    result = run_soak(config, progress=progress if args.verbose else None)
    print(result.summary())
    if impair_data:
        total_retrans = sum(s.retransmissions for s in result.schedules)
        total_sent = sum(s.sent for s in result.schedules)
        print(f"data-plane reliability: {total_sent} offered, "
              f"{sum(s.released for s in result.schedules)} released, "
              f"{total_retrans} hop retransmissions")
    if args.telemetry and result.registry is not None:
        rows = result.registry.rows()
        if rows:
            print()
            print(format_table(
                ["metric", "type", "count/value", "mean", "p50", "p99",
                 "max"], rows, title="telemetry summary (all schedules)"))
        events = sum(len(s.timeline) for s in result.schedules)
        print(f"recovery timelines: {events} events across "
              f"{len(result.schedules)} schedules")
    if args.flight:
        dumps = [s.flight_dump for s in result.schedules if s.flight_dump]
        if dumps:
            print("flight dumps (invariant trips):")
            for path in dumps:
                print(f"  {path}")
        else:
            print("no invariant trips; no flight dumps written")
    return 0 if result.ok else 1


def _cmd_experiment(name: str) -> int:
    import importlib
    module = importlib.import_module(f"repro.experiments.{name}")
    module.main()
    return 0


def main(argv: List[str] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "experiment":
        return _cmd_experiment(args.name)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "perf":
        from .perf.cli import cmd_perf
        return cmd_perf(args)
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
