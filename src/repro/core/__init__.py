"""FTC core: the paper's primary contribution.

Public surface: build an :class:`FTCChain` over a list of middleboxes,
feed it packets via ``chain.ingress``, and receive released packets in
your ``deliver`` callable once their state updates are replicated f+1
times.  Failure injection and recovery are exposed for orchestrators
(`repro.orchestration`) and tests.
"""

from .admission import (
    AdmissionControl,
    BackpressureBus,
    PressureSource,
    TokenBucket,
)
from .buffer import Buffer
from .chain import FTCChain
from .costs import CostModel, DEFAULT_COSTS
from .fencing import AppliedCommand, EpochGate, StaleConfigError, StaleEpochError
from .depvec import DependencyVector, ProtocolError, ReplicationState
from .forwarder import Forwarder
from .piggyback import CommitVector, PiggybackLog, PiggybackMessage, value_bytes
from .reconfig import (
    RECONFIG_KINDS,
    RECONFIG_PHASES,
    ChainConfig,
    ClassifierRule,
    ClassifierSet,
    ReconfigError,
    ReconfigOp,
    ReconfigReport,
    apply_reconfig,
)
from .recovery import (
    RECOVERY_PHASES,
    RecoveryError,
    RecoveryReport,
    UnrecoverableError,
    recover_positions,
)
from .replica import Replica
from .runtime import CycleCounters, MiddleboxRuntime
from .scaling import RescaleReport, rescale_position

__all__ = [
    "AdmissionControl",
    "AppliedCommand",
    "BackpressureBus",
    "Buffer",
    "ChainConfig",
    "ClassifierRule",
    "ClassifierSet",
    "CommitVector",
    "CostModel",
    "CycleCounters",
    "DEFAULT_COSTS",
    "DependencyVector",
    "EpochGate",
    "FTCChain",
    "Forwarder",
    "MiddleboxRuntime",
    "PiggybackLog",
    "PiggybackMessage",
    "PressureSource",
    "ProtocolError",
    "RECONFIG_KINDS",
    "RECONFIG_PHASES",
    "RECOVERY_PHASES",
    "ReconfigError",
    "ReconfigOp",
    "ReconfigReport",
    "RecoveryError",
    "RecoveryReport",
    "Replica",
    "RescaleReport",
    "StaleConfigError",
    "StaleEpochError",
    "TokenBucket",
    "ReplicationState",
    "UnrecoverableError",
    "apply_reconfig",
    "recover_positions",
    "rescale_position",
    "value_bytes",
]
