"""FTC core: the paper's primary contribution.

Public surface: build an :class:`FTCChain` over a list of middleboxes,
feed it packets via ``chain.ingress``, and receive released packets in
your ``deliver`` callable once their state updates are replicated f+1
times.  Failure injection and recovery are exposed for orchestrators
(`repro.orchestration`) and tests.
"""

from .buffer import Buffer
from .chain import FTCChain
from .costs import CostModel, DEFAULT_COSTS
from .fencing import AppliedCommand, EpochGate, StaleEpochError
from .depvec import DependencyVector, ProtocolError, ReplicationState
from .forwarder import Forwarder
from .piggyback import CommitVector, PiggybackLog, PiggybackMessage, value_bytes
from .recovery import (
    RECOVERY_PHASES,
    RecoveryError,
    RecoveryReport,
    UnrecoverableError,
    recover_positions,
)
from .replica import Replica
from .runtime import CycleCounters, MiddleboxRuntime
from .scaling import RescaleReport, rescale_position

__all__ = [
    "AppliedCommand",
    "Buffer",
    "CommitVector",
    "CostModel",
    "CycleCounters",
    "DEFAULT_COSTS",
    "DependencyVector",
    "EpochGate",
    "FTCChain",
    "Forwarder",
    "MiddleboxRuntime",
    "PiggybackLog",
    "PiggybackMessage",
    "ProtocolError",
    "RECOVERY_PHASES",
    "RecoveryError",
    "RecoveryReport",
    "Replica",
    "RescaleReport",
    "StaleEpochError",
    "ReplicationState",
    "UnrecoverableError",
    "recover_positions",
    "rescale_position",
    "value_bytes",
]
