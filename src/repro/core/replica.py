"""The replica data plane (§4.1, §5.1).

One :class:`Replica` runs on each server of the chain.  It hosts the
position's middlebox (if any) and replicates state for the f preceding
middleboxes on the logical ring.  Worker threads -- one per NIC queue
-- drive the per-packet pipeline:

1. position 0 only: the forwarder merges fed-back logs/commits onto
   the packet's piggyback message;
2. piggyback processing: apply the message's logs for every replicated
   middlebox in dependency-vector order; tails strip their middlebox's
   logs and attach commit vectors; commit vectors prune retained logs;
3. the packet transaction of the local middlebox (data packets only);
   its piggyback log joins the message; filtered packets hand their
   message to a propagating packet;
4. forward to the next replica, or hand to the buffer at the end.

Replicas also run the retransmission protocol: a log held out-of-order
for too long triggers a fetch of the predecessor's retained logs,
which closes gaps caused by packet loss or mid-chain failures.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..middlebox.base import DROP, Middlebox
from ..net.packet import Packet
from ..sim import CancelledError, Interrupt, Process, RandomStreams, Simulator
from ..telemetry import NULL_PROFILER, NULL_TELEMETRY
from .costs import CostModel, DEFAULT_COSTS
from .depvec import ReplicationState
from .piggyback import PiggybackMessage, value_bytes
from .runtime import MiddleboxRuntime

__all__ = ["Replica"]

#: A log pending longer than this triggers a retransmission request.
RETRANSMIT_AFTER_S = 200e-6

#: How often the retransmission watchdog checks for stuck logs.
RETRANSMIT_CHECK_S = 100e-6


class Replica:
    """One chain position's data plane on one server."""

    def __init__(self, sim: Simulator, chain, position: int, server,
                 middlebox: Optional[Middlebox],
                 costs: CostModel = DEFAULT_COSTS,
                 streams: Optional[RandomStreams] = None,
                 use_htm: bool = False):
        self.sim = sim
        self.chain = chain
        self.position = position
        self.server = server
        self.middlebox = middlebox
        self.costs = costs
        self.streams = streams or RandomStreams(0)
        self.telemetry = getattr(chain, "telemetry", None) or NULL_TELEMETRY
        self._prof = getattr(self.telemetry, "profiler", NULL_PROFILER)
        registry = self.telemetry.registry
        self._m_pb_bytes = registry.histogram("piggyback/bytes")

        #: mbox name -> replication state, for every group this position
        #: belongs to (including its own middlebox's).
        self.states: Dict[str, ReplicationState] = {}
        #: mboxes for which this position is the tail, with the MAX
        #: snapshot last announced (commit vectors are deltas).
        self.tail_last_sent: Dict[str, Dict[int, int]] = {}
        #: mboxes replicated here that originate upstream (chain order).
        self.replicated: List[str] = []

        telemetry = self.telemetry if self.telemetry.enabled else None
        for index, name in chain.member_mboxes(position):
            state = ReplicationState(name, costs.n_partitions,
                                     telemetry=telemetry)
            self.states[name] = state
            if chain.tail_position(index) == position:
                self.tail_last_sent[name] = {}
            if middlebox is None or name != middlebox.name:
                self.replicated.append(name)

        self.runtime: Optional[MiddleboxRuntime] = None
        if middlebox is not None:
            self.runtime = MiddleboxRuntime(
                sim, middlebox, self.states[middlebox.name],
                costs=costs, streams=self.streams, use_htm=use_htm,
                telemetry=self.telemetry)

        self.workers: List[Process] = []
        self._watchdog: Optional[Process] = None
        #: Workers currently inside _handle (reconfig drains poll this).
        self.busy = 0
        self.packets_handled = 0
        self.propagating_emitted = 0
        self.retransmit_requests = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        for tid, queue in enumerate(self.server.nic.queues):
            worker = self.sim.process(self._worker(tid, queue),
                                      name=f"replica{self.position}/w{tid}")
            self.workers.append(worker)
        self._watchdog = self.sim.process(
            self._retransmit_watchdog(), name=f"replica{self.position}/rtx")

    def stop(self) -> None:
        for worker in self.workers:
            if worker.is_alive:
                worker.interrupt("stopped")
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.interrupt("stopped")
        self.workers = []
        self._watchdog = None

    @property
    def is_first(self) -> bool:
        return self.position == 0

    @property
    def is_last(self) -> bool:
        return self.position == self.chain.n_positions - 1

    # -- ingestion helpers -----------------------------------------------------

    def enqueue_local(self, packet: Packet) -> bool:
        """Inject a locally generated packet (propagating) into a queue.

        Returns False when the queue refused it (full under overload);
        the caller owns the packet's fate -- the chain re-absorbs a
        propagating packet's logs rather than losing them.
        """
        queue_index = self.server.nic.queue_for(packet)
        return self.server.nic.queues[queue_index].try_put(packet)

    # -- the worker pipeline ------------------------------------------------------

    def _worker(self, thread_id: int, queue):
        try:
            while True:
                packet = yield queue.get()
                if self.server.failed:
                    return
                self.busy += 1
                try:
                    yield from self._handle(packet, thread_id)
                finally:
                    self.busy -= 1
        except (Interrupt, CancelledError):
            return

    def _handle(self, packet: Packet, thread_id: int):
        self.packets_handled += 1
        tracer = self.telemetry.tracer
        traced = packet.is_data and tracer.wants(packet.pid)
        entered = self.sim.now
        cycles = self.costs.per_wire_byte_cycles * packet.wire_size
        message = packet.detach("ftc")
        if message is None:
            message = PiggybackMessage(self.costs)

        if self.is_first and packet.kind != "feedback":
            cycles += self.chain.forwarder.attach(message)

        cycles += self._process_piggyback(message)
        if cycles > 0:
            yield self.sim.timeout(self.costs.cycles_to_seconds(cycles))

        out_packet = packet
        if self.runtime is not None and packet.is_data:
            verdict, log = yield from self.runtime.process(packet, thread_id)
            if log is not None and not log.is_noop:
                message.add_log(log)
            own = self.middlebox.name
            if own in self.tail_last_sent:
                # f = 0: the head is its own tail -- the log is already
                # replicated f+1 = 1 times, so strip it and commit.
                message.take_logs(own)
                state = self.states[own]
                commit = state.commit_vector(last_sent=self.tail_last_sent[own])
                if commit.entries:
                    message.set_commit(commit)
                    self.tail_last_sent[own] = dict(state.max)
            if verdict is DROP:
                if traced:
                    self._close_span(packet, entered, dropped=True)
                self._emit_propagating(message)
                return
            if isinstance(verdict, Packet):
                out_packet = verdict

        # byte_size walks every log and commit aboard; compute it once
        # for both the histogram and the tailroom check.
        pb_bytes = message.byte_size()
        if self.telemetry.enabled:
            self._m_pb_bytes.observe(float(pb_bytes), t=self.sim.now)
        if traced:
            self._close_span(packet, entered)
        if pb_bytes > out_packet.size:
            # The piggyback message no longer fits the packet buffer's
            # tailroom: extend/chain the buffer before forwarding.
            yield self.sim.timeout(self.costs.cycles_to_seconds(
                self.costs.mbuf_extension_cycles))
        yield from self._forward(out_packet, message)

    def _close_span(self, packet: Packet, entered: float,
                    dropped: bool = False) -> None:
        """Emit the per-position middlebox span for a sampled packet."""
        name = self.middlebox.name if self.middlebox is not None else "relay"
        self.telemetry.tracer.complete(
            packet.pid, f"p{self.position}:{name}", "mbox",
            entered, self.sim.now, tid=self.position, dropped=dropped)

    def _process_piggyback(self, message: PiggybackMessage) -> float:
        """Apply carried logs; strip + commit where we are the tail."""
        cycles = 0.0
        trace_enabled = self.telemetry.enabled
        tracer = self.telemetry.tracer
        flight = self.telemetry.flight
        prof = self._prof
        for mbox in self.replicated:
            logs = message.logs_for(mbox)
            if logs:
                prof_t0 = prof.t0()
                n_logs = len(logs)
                state = self.states[mbox]
                # offer() never touches message.logs, so iterate the
                # live list -- no per-packet throwaway copy.
                for log in logs:
                    cycles += (self.costs.piggyback_apply_cycles +
                               self.costs.per_state_byte_cycles *
                               sum(value_bytes(v, self.costs)
                                   for v in log.updates.values()))
                    state.offer(log, now=self.sim.now)
                    if (trace_enabled and log.packet_id is not None
                            and tracer.wants(log.packet_id)):
                        tracer.instant(log.packet_id,
                                       f"replicate@p{self.position}", "repl",
                                       self.sim.now, tid=self.position,
                                       mbox=mbox)
                    if flight.enabled and log.packet_id is not None:
                        flight.record(
                            "piggyback", "apply", t=self.sim.now,
                            pid=log.packet_id, depvec=dict(log.depvec),
                            detail=f"{mbox} @p{self.position}",
                            chain=f"pid:{log.packet_id}")
                prof.add("depvec/merge", prof_t0, n=n_logs)
            if mbox in self.tail_last_sent:
                prof_t0 = prof.t0()
                message.take_logs(mbox)
                state = self.states[mbox]
                commit = state.commit_vector(last_sent=self.tail_last_sent[mbox])
                if commit.entries:
                    message.set_commit(commit)
                    self.tail_last_sent[mbox] = dict(state.max)
                prof.add("piggyback/trim", prof_t0)
        if message.commits:
            prof_t0 = prof.t0()
            for mbox, commit in message.commits.items():
                state = self.states.get(mbox)
                if state is not None:
                    state.absorb_commit(commit)
            prof.add("piggyback/trim", prof_t0)
        return cycles

    def _forward(self, packet: Packet, message: PiggybackMessage):
        if self.is_last:
            cycles = self.chain.buffer.handle(packet, message)
            yield self.sim.timeout(self.costs.cycles_to_seconds(cycles))
        else:
            packet.attach("ftc", message)
            self.chain.send_to_position(self.position, self.position + 1, packet)
            return
            yield  # pragma: no cover - keeps this a generator

    def _emit_propagating(self, message: PiggybackMessage) -> None:
        """Carry a filtered packet's piggyback message onward (§5.1)."""
        if message.n_logs == 0 and not message.commits:
            return
        from .forwarder import _PROPAGATING_FLOW, _PROPAGATING_SIZE
        packet = Packet(flow=_PROPAGATING_FLOW, size=_PROPAGATING_SIZE,
                        kind="propagating", created_at=self.sim.now)
        packet.attach("ftc", message)
        self.propagating_emitted += 1
        if self.is_last:
            self.chain.buffer.handle(packet, packet.detach("ftc"))
        else:
            self.chain.send_to_position(self.position, self.position + 1, packet)
        return

    # -- retransmission (§4.1 reliable state transmission) ---------------------

    def _retransmit_watchdog(self):
        try:
            while True:
                yield self.sim.timeout(RETRANSMIT_CHECK_S)
                if self.server.failed:
                    return
                for mbox in self.replicated:
                    state = self.states[mbox]
                    if state.pending and not state.frozen:
                        oldest = min(getattr(log, "_held_at", 0.0)
                                     for log in state.pending)
                        if self.sim.now - oldest >= RETRANSMIT_AFTER_S:
                            yield from self._request_retransmission(mbox)
        except (Interrupt, CancelledError):
            return

    def _request_retransmission(self, mbox: str):
        """Fetch the predecessor's retained logs to fill a gap."""
        self.retransmit_requests += 1
        logs = yield from self.chain.fetch_retained_logs(self.position, mbox)
        if logs:
            self.states[mbox].offer_all(logs, now=self.sim.now)
