"""Piggyback logs, commit vectors, and piggyback messages (§4.1, §5.1).

A *piggyback log* carries one packet transaction's state updates for
one middlebox, ordered by a (sparse) dependency vector.  A *commit
vector* is a tail's announcement that everything up to its MAX vector
has been replicated f+1 times.  A *piggyback message* is the container
a packet actually carries: a list of in-flight logs per middlebox plus
the latest commit vector per middlebox.

Byte sizes are estimated from the cost model's serialization constants
so wire and copy costs reflect what a real implementation would pay
(FTC appends the message after the payload and adjusts the IP length).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

from .costs import CostModel, DEFAULT_COSTS

__all__ = ["PiggybackLog", "CommitVector", "PiggybackMessage", "value_bytes"]

_log_ids = itertools.count(1)


def value_bytes(value: Any, costs: CostModel = DEFAULT_COSTS) -> int:
    """Estimate the serialized size of one state value."""
    if value is None:
        return 1
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, str):
        return len(value.encode())
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, (tuple, list)):
        return sum(value_bytes(v, costs) for v in value)
    if isinstance(value, dict):
        return sum(costs.key_bytes + value_bytes(v, costs)
                   for v in value.values())
    # Flow keys and other small records serialize to ~a 5-tuple.
    return costs.key_bytes


@dataclass
class PiggybackLog:
    """State updates of one packet transaction at one middlebox.

    ``depvec`` maps accessed partition -> pre-increment sequence
    number; partitions absent from it are "don't care" (§4.3).  A
    read-only transaction produces a no-op log (empty depvec, no
    updates) which replicas skip over.
    """

    mbox: str
    depvec: Dict[int, int] = field(default_factory=dict)
    updates: Dict[Hashable, Any] = field(default_factory=dict)
    packet_id: int = 0
    log_id: int = field(default_factory=lambda: next(_log_ids))

    @property
    def is_noop(self) -> bool:
        return not self.depvec and not self.updates

    def byte_size(self, costs: CostModel = DEFAULT_COSTS) -> int:
        size = costs.log_header_bytes
        size += len(self.depvec) * costs.depvec_entry_bytes
        for key, value in self.updates.items():
            size += costs.key_bytes + value_bytes(value, costs)
        return size

    def __repr__(self):
        return (f"<PBLog {self.mbox} vec={self.depvec} "
                f"updates={len(self.updates)}>")


@dataclass
class CommitVector:
    """A tail's MAX vector: all updates before it are f+1 replicated.

    ``entries`` may be a delta (only partitions that advanced since the
    tail's previous announcement); receivers merge with element-wise max.
    """

    mbox: str
    entries: Dict[int, int] = field(default_factory=dict)

    def byte_size(self, costs: CostModel = DEFAULT_COSTS) -> int:
        return (costs.commit_header_bytes +
                len(self.entries) * costs.depvec_entry_bytes)

    def merge_into(self, target: Dict[int, int]) -> None:
        for partition, seq in self.entries.items():
            if seq > target.get(partition, -1):
                target[partition] = seq

    def covers(self, depvec: Dict[int, int]) -> bool:
        """True when every entry of ``depvec`` is replicated under this vector.

        A log with pre-increment value v on partition p is replicated
        once the commit vector reports MAX[p] >= v + 1.
        """
        return all(self.entries.get(partition, 0) >= seq + 1
                   for partition, seq in depvec.items())

    def __repr__(self):
        return f"<Commit {self.mbox} {self.entries}>"


class PiggybackMessage:
    """The per-packet container of logs and commit vectors."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS):
        self.costs = costs
        self.logs: Dict[str, List[PiggybackLog]] = {}
        self.commits: Dict[str, CommitVector] = {}

    def add_log(self, log: PiggybackLog) -> None:
        self.logs.setdefault(log.mbox, []).append(log)

    def add_logs(self, logs: List[PiggybackLog]) -> None:
        for log in logs:
            self.add_log(log)

    def take_logs(self, mbox: str) -> List[PiggybackLog]:
        """Remove and return all logs for ``mbox`` (done by its tail)."""
        return self.logs.pop(mbox, [])

    def logs_for(self, mbox: str) -> List[PiggybackLog]:
        return self.logs.get(mbox, [])

    def set_commit(self, commit: CommitVector) -> None:
        self.commits[commit.mbox] = commit

    def commit_for(self, mbox: str) -> Optional[CommitVector]:
        return self.commits.get(mbox)

    @property
    def n_logs(self) -> int:
        return sum(len(logs) for logs in self.logs.values())

    def byte_size(self) -> int:
        size = self.costs.message_header_bytes
        for logs in self.logs.values():
            size += sum(log.byte_size(self.costs) for log in logs)
        for commit in self.commits.values():
            size += commit.byte_size(self.costs)
        return size

    def state_bytes(self) -> int:
        """Bytes of raw state values carried (for copy-cost accounting)."""
        total = 0
        for logs in self.logs.values():
            for log in logs:
                total += sum(value_bytes(v, self.costs)
                             for v in log.updates.values())
        return total

    def __repr__(self):
        return (f"<PBMsg logs={{{', '.join(f'{m}:{len(l)}' for m, l in self.logs.items())}}} "
                f"commits={sorted(self.commits)}>")
