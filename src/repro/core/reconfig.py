"""Zero-loss live reconfiguration (PROTOCOL.md §11).

FTC's dependency vectors order transactions by state partition, not by
thread or by instance, which is what makes a running middlebox
*replaceable* under traffic (§4.3).  This module turns that property
into a reconfiguration subsystem: a versioned chain config with
strictly monotonic config versions (fenced through the same
:class:`~repro.core.fencing.EpochGate` as recovery commands) and a
two-phase apply protocol --

* **prepare**: spawn and warm the replacement instance (or validate the
  new classifier version) and journal the operation write-ahead through
  the control plane, so a failed-over leader resumes it idempotently;
* **switch**: park traffic bound for the affected position in a
  :class:`ReconfigHold` (FIFO -- packets release in arrival order, so
  nothing is dropped *or* reordered), drain the position to a quiesce
  point, migrate STM state + MAX vectors + retained piggyback logs to
  the replacement, re-steer the route, reset the hop
  :class:`~repro.net.channel.ReliableChannel`\\ s so they re-bind to the
  new endpoint, advance the config version (the buffer holds the
  version boundary), and release the held packets in order.

Operations: vertical ``rescale`` (now lossless), instance ``migrate``,
whole-server ``evacuate``, middlebox ``insert``/``remove`` (structural:
the whole chain drains, groups re-form), and ``classifier`` update.
Every phase emits flight-recorder events, recovery-timeline phases
(``reconfig-*``) and Chrome trace spans on the control-plane track.

A crash mid-reconfiguration aborts the operation: the hold is flushed
(by the abort itself, or by recovery's re-steer via
``FTCChain.note_route_change`` when the crash took the position down),
frozen state thaws, and the journal shows an uncovered
``reconfig-prepare`` that the (possibly new) leader re-runs from
scratch -- every operation here is idempotent to re-execution because
the prepare phase spawns fresh resources each time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim import AnyOf
from .fencing import StaleConfigError
from .replica import Replica

__all__ = ["ReconfigError", "ReconfigOp", "ReconfigReport", "ReconfigHold",
           "ClassifierRule", "ClassifierSet", "ChainConfig",
           "apply_reconfig", "RECONFIG_KINDS", "RECONFIG_PHASES"]

#: Operation kinds (each is one two-phase apply).
RECONFIG_KINDS = ("rescale", "migrate", "evacuate", "insert", "remove",
                  "classifier")

#: Phases, in firing order; "aborted" replaces "committed" on failure.
RECONFIG_PHASES = ("preparing", "prepared", "draining", "quiesced",
                   "switching", "committed", "aborted")

#: Spacing of quiesce polls -- two consecutive quiet samples this far
#: apart prove nothing was in flight toward the position at the first
#: (the gap exceeds a hop's propagation + NIC admission time).
DRAIN_POLL_S = 20e-6

#: Give up draining a single position after this long.
DRAIN_TIMEOUT_S = 20e-3

#: Whole-chain drains (structural ops) wait through feedback/commit
#: dissemination rounds, so they get a much larger budget.
CHAIN_DRAIN_TIMEOUT_S = 80e-3

#: Floor on the state-transfer RPC deadline (scaled up for big states).
TRANSFER_TIMEOUT_S = 8e-3

#: Backstop: a hold orphaned by a crash force-flushes after this long
#: even if no recovery re-steer ever lands on the position.
HOLD_FLUSH_DEADLINE_S = 50e-3


class ReconfigError(Exception):
    """A reconfiguration could not complete and was aborted."""


# -- flow classification ------------------------------------------------------

@dataclass(frozen=True)
class ClassifierRule:
    """One wildcardable 5-tuple match; ``None`` fields match anything."""

    src_ip: Optional[int] = None
    dst_ip: Optional[int] = None
    src_port: Optional[int] = None
    dst_port: Optional[int] = None
    proto: Optional[int] = None
    action: str = "allow"

    def __post_init__(self):
        if self.action not in ("allow", "deny"):
            raise ValueError(f"unknown classifier action {self.action!r}")

    def matches(self, flow) -> bool:
        for name in ("src_ip", "dst_ip", "src_port", "dst_port", "proto"):
            want = getattr(self, name)
            if want is not None and getattr(flow, name) != want:
                return False
        return True


@dataclass(frozen=True)
class ClassifierSet:
    """A versioned, ordered rule set; first match wins."""

    version: int
    rules: Tuple[ClassifierRule, ...] = ()
    default: str = "allow"

    def __post_init__(self):
        if self.version < 1:
            raise ValueError("classifier versions start at 1")
        if self.default not in ("allow", "deny"):
            raise ValueError(f"unknown default action {self.default!r}")
        object.__setattr__(self, "rules", tuple(self.rules))

    def admits(self, flow) -> bool:
        for rule in self.rules:
            if rule.matches(flow):
                return rule.action == "allow"
        return self.default == "allow"


@dataclass(frozen=True)
class ChainConfig:
    """An immutable snapshot of one chain configuration version."""

    version: int
    route: Tuple[str, ...]
    middleboxes: Tuple[str, ...]
    classifier_version: int
    groups: Tuple[Tuple[str, Tuple[int, ...]], ...]


# -- operations ---------------------------------------------------------------

@dataclass(frozen=True)
class ReconfigOp:
    """One requested reconfiguration (immutable, journal-describable)."""

    kind: str
    position: Optional[int] = None
    n_threads: Optional[int] = None
    index: Optional[int] = None
    middlebox: Optional[Any] = None
    middlebox_name: Optional[str] = None
    classifier: Optional[ClassifierSet] = None

    def __post_init__(self):
        if self.kind not in RECONFIG_KINDS:
            raise ValueError(f"unknown reconfiguration kind {self.kind!r}")
        if self.kind == "rescale" and (
                self.position is None or self.n_threads is None
                or self.n_threads < 1):
            raise ValueError("rescale needs a position and >= 1 thread")
        if self.kind in ("migrate", "evacuate") and self.position is None:
            raise ValueError(f"{self.kind} needs a position")
        if self.kind == "insert" and (self.index is None
                                      or self.middlebox is None):
            raise ValueError("insert needs an index and a middlebox")
        if self.kind == "remove" and self.middlebox_name is None:
            raise ValueError("remove needs a middlebox name")
        if self.kind == "classifier" and self.classifier is None:
            raise ValueError("classifier update needs a ClassifierSet")

    def journal_positions(self) -> Tuple[int, ...]:
        if self.kind in ("rescale", "migrate", "evacuate"):
            return (self.position,)
        if self.kind == "insert":
            return (self.index,)
        return ()

    def describe(self) -> str:
        parts = [f"op={self.kind}"]
        if self.position is not None:
            parts.append(f"position={self.position}")
        if self.n_threads is not None:
            parts.append(f"threads={self.n_threads}")
        if self.index is not None:
            parts.append(f"index={self.index}")
        if self.middlebox is not None:
            parts.append(f"mbox={self.middlebox.name}")
        if self.middlebox_name is not None:
            parts.append(f"mbox={self.middlebox_name}")
        if self.classifier is not None:
            parts.append(f"classifier_v={self.classifier.version}")
        return " ".join(parts)

    @staticmethod
    def parse(detail: str) -> Optional["ReconfigOp"]:
        """Rebuild an op from its journaled ``describe()`` string.

        ``insert`` and ``classifier`` carry live objects a journal
        cannot reconstruct; they parse to ``None`` and the resuming
        leader closes them with a ``reconfig-abort`` instead.
        """
        fields = dict(part.split("=", 1)
                      for part in detail.split() if "=" in part)
        kind = fields.get("op")
        try:
            if kind == "rescale":
                return ReconfigOp(kind="rescale",
                                  position=int(fields["position"]),
                                  n_threads=int(fields["threads"]))
            if kind in ("migrate", "evacuate"):
                return ReconfigOp(kind=kind, position=int(fields["position"]))
            if kind == "remove":
                return ReconfigOp(kind="remove",
                                  middlebox_name=fields["mbox"])
        except (KeyError, ValueError):
            return None
        return None


@dataclass
class ReconfigReport:
    """Timing + accounting of one reconfiguration."""

    op: ReconfigOp
    committed: bool = False
    aborted: bool = False
    resumed: bool = False
    prepare_s: float = 0.0
    drain_s: float = 0.0
    transfer_s: float = 0.0
    switch_s: float = 0.0
    total_s: float = 0.0
    bytes_transferred: int = 0
    held_packets: int = 0
    detail: str = ""


# -- the quiesce hold ---------------------------------------------------------

class ReconfigHold:
    """FIFO parking for packets bound to a position mid-switch.

    While active, :meth:`FTCChain.send_to_position` (and ``ingress``
    for position 0) parks packets here instead of putting them on the
    wire.  ``begin_release`` pumps them back out in arrival order at
    NIC line rate; packets arriving mid-release park at the tail, so
    FIFO order is preserved end to end -- the hold degenerates to a
    pass-through queue under sustained overload rather than dropping.
    A later operation on the same position may :meth:`suspend` a hold
    that is still draining and adopt its queue, keeping order across
    back-to-back reconfigurations.
    """

    def __init__(self, chain, position: int, forced_counter=None):
        self.chain = chain
        self.position = position
        self.sim = chain.sim
        self.parked = deque()
        self.active = True
        self.releasing = False
        self.peak = 0
        self._suspended = False
        self._forced = forced_counter
        self.sim.schedule_callback(HOLD_FLUSH_DEADLINE_S, self._deadline)

    def park(self, packet) -> None:
        self.parked.append(packet)
        if len(self.parked) > self.peak:
            self.peak = len(self.parked)

    def suspend(self) -> None:
        """Re-arm an actively draining hold for a new operation."""
        self._suspended = True

    def begin_release(self) -> None:
        self._suspended = False
        if not self.active or self.releasing:
            return
        self.releasing = True
        self.sim.process(self._release(),
                         name=f"reconfig-hold{self.position}")

    def _release(self):
        pace = 1.0 / self.chain.costs.nic_pps
        while self.parked:
            if self._suspended:
                self.releasing = False
                return
            packet = self.parked.popleft()
            self.chain._forward_released(self.position, packet)
            yield self.sim.timeout(pace)
        self.active = False
        self.releasing = False
        if self.chain._holds.get(self.position) is self:
            del self.chain._holds[self.position]

    def _deadline(self) -> None:
        if self.active and not self.releasing and not self._suspended:
            if self._forced is not None:
                self._forced.inc()
            self.begin_release()


def _install_hold(chain, position: int, forced_counter=None) -> ReconfigHold:
    existing = chain._holds.get(position)
    if existing is not None and existing.active:
        existing.suspend()
        return existing
    hold = ReconfigHold(chain, position, forced_counter=forced_counter)
    chain._holds[position] = hold
    return hold


# -- quiesce-point detection --------------------------------------------------

def _position_quiet(chain, position: int) -> bool:
    """True when nothing is in flight at/into one position."""
    server = chain.server_at(position)
    if server.failed:
        raise ReconfigError(
            f"{chain.route[position]} failed while draining")
    nic = server.nic
    if nic.engine_backlog > 0.0 or nic.depth() > 0:
        return False
    if chain.replica_at(position).busy:
        return False
    if chain.reliable_links:
        for (src, dst), channel in chain._channels.items():
            if position in (src, dst) and (channel.unacked or channel.txq):
                return False
    return True


def _chain_quiet(chain) -> bool:
    """True when the whole pipeline (incl. replication) is at rest."""
    for position in range(chain.n_positions):
        if not _position_quiet(chain, position):
            return False
    if chain.buffer.held or chain.buffer.feedback_logs:
        return False
    if chain.forwarder.has_pending:
        return False
    for replica in chain.replicas:
        for state in replica.states.values():
            if state.pending:
                return False
    return True


def _drain(chain, quiet: Callable[[Any], bool], timeout_s: float,
           poll_s: float = DRAIN_POLL_S):
    """Generator: wait for two consecutive quiet samples ``poll_s`` apart."""
    sim = chain.sim
    deadline = sim.now + timeout_s
    streak = 0
    while True:
        streak = streak + 1 if quiet(chain) else 0
        if streak >= 2:
            return
        if sim.now >= deadline:
            raise ReconfigError(
                f"drain timed out after {timeout_s * 1e3:.1f}ms")
        yield sim.timeout(poll_s)


def _bounded_call(chain, src_name: str, dst_name: str, handler,
                  response_bytes: int):
    """Control RPC with a deadline; returns None on timeout/failure."""
    timeout_s = max(TRANSFER_TIMEOUT_S,
                    3.0 * response_bytes * 8.0 / chain.costs.bandwidth_bps)
    call = chain.net.control_call(src_name, dst_name, handler,
                                  response_bytes=response_bytes)
    deadline = chain.sim.timeout(timeout_s)
    yield AnyOf(chain.sim, [call, deadline])
    if call.processed and call.ok:
        deadline.cancel()
        return call.value
    call.cancel()
    return None


# -- shared op context --------------------------------------------------------

class _Ctx:
    """Telemetry/journal/fence plumbing shared by every operation."""

    def __init__(self, chain, op: ReconfigOp, epoch, journal, hooks):
        self.chain = chain
        self.op = op
        self.epoch = epoch
        self.journal = journal
        self.hooks = tuple(hooks or ())
        self.telemetry = chain.telemetry
        registry = self.telemetry.registry
        self.m_prepares = registry.counter("reconfig/prepares")
        self.m_switches = registry.counter("reconfig/switches")
        self.m_aborted = registry.counter("reconfig/aborted")
        self.m_held = registry.counter("reconfig/held_packets")
        self.m_migrated = registry.counter("reconfig/migrated_bytes")
        self.m_forced = registry.counter("reconfig/forced_releases")
        chain._reconfig_seq += 1
        self.op_id = chain._reconfig_seq
        self.positions = op.journal_positions()

    def fire(self, phase: str) -> None:
        now = self.chain.sim.now
        telemetry = self.telemetry
        telemetry.timeline.record(f"reconfig-{phase}", self.positions,
                                  detail=self.op.describe(), t=now)
        if telemetry.enabled:
            telemetry.tracer.instant(
                self.op_id, f"reconfig-{phase}", "ctrl", now, tid=9998,
                op=self.op.describe())
        if telemetry.flight.enabled:
            telemetry.flight.record(
                "reconfig", phase, t=now, detail=self.op.describe(),
                chain="ctrl")
        for hook in self.hooks:
            hook(phase, self.positions)

    def span(self, open_: bool, outcome: str = "") -> None:
        if not self.telemetry.enabled:
            return
        tracer = self.telemetry.tracer
        name = f"reconfig:{self.op.kind}"
        if open_:
            tracer.begin_async(self.op_id, name, "ctrl", self.chain.sim.now,
                               tid=9998, op=self.op.describe())
        else:
            tracer.end_async(self.op_id, name, "ctrl", self.chain.sim.now,
                             tid=9998, outcome=outcome)

    def journal_step(self, step: str):
        """Generator: write-ahead journal one step (no-op unjournaled)."""
        if self.journal is not None:
            yield from self.journal(step, list(self.positions),
                                    self.op.describe())

    def fence(self, detail: str) -> None:
        if self.chain.gate is not None:
            self.chain.gate.apply(self.epoch, "reconfig-switch",
                                  self.positions, detail=detail)


# -- the dispatcher -----------------------------------------------------------

def apply_reconfig(chain, op: ReconfigOp, epoch: Optional[int] = None,
                   journal=None, hooks: Sequence[Callable] = (),
                   reroute_delay_s: float = 0.5e-3, resumed: bool = False):
    """Generator (run as a sim process): perform one reconfiguration.

    Returns a :class:`ReconfigReport`.  ``journal`` is a command-guard
    generator ``(step, positions, detail)`` (the ensemble's write-ahead
    quorum path) or ``None`` for unreplicated runs; ``hooks`` receive
    ``(phase, positions)`` -- the orchestrator wires its chaos/timeline
    hooks through here.  Raises :class:`ReconfigError` on an abort,
    :class:`~.fencing.StaleEpochError` when fenced, and lets
    ``Interrupt`` unwind (abort cleanup runs in ``finally`` blocks).
    """
    ctx = _Ctx(chain, op, epoch, journal, hooks)
    report = ReconfigReport(op=op, resumed=resumed)
    if op.kind in ("rescale", "migrate", "evacuate"):
        result = yield from _replace_instance(ctx, report, reroute_delay_s)
    elif op.kind in ("insert", "remove"):
        result = yield from _restructure(ctx, report, reroute_delay_s)
    else:
        result = yield from _swap_classifier(ctx, report, reroute_delay_s)
    return result


# -- rescale / migrate / evacuate ---------------------------------------------

def _replace_instance(ctx: _Ctx, report: ReconfigReport,
                      reroute_delay_s: float):
    """Replace one position's server with a warm instance, losslessly."""
    chain, op = ctx.chain, ctx.op
    sim = chain.sim
    position = op.position
    if not 0 <= position < chain.n_positions:
        raise ReconfigError(f"no such position {position}")
    started = sim.now
    ctx.span(True)
    ctx.fire("preparing")
    yield from ctx.journal_step("reconfig-prepare")

    old_replica = chain.replica_at(position)
    old_server = old_replica.server
    old_name = chain.route[position]
    n_threads = (op.n_threads if op.n_threads is not None
                 else len(old_server.nic.queues))
    saved_threads = chain.n_threads
    chain.n_threads = n_threads
    try:
        new_server = chain._new_server(position)
    finally:
        chain.n_threads = saved_threads
    new_replica = Replica(sim, chain, position, new_server,
                          old_replica.middlebox, costs=chain.costs,
                          streams=chain.streams, use_htm=chain.use_htm)
    ctx.m_prepares.inc()
    report.prepare_s = sim.now - started
    ctx.fire("prepared")

    hold = _install_hold(chain, position, forced_counter=ctx.m_forced)
    committed = False
    old_stopped = False
    frozen = []
    try:
        ctx.fire("draining")
        drain_started = sim.now
        yield from _drain(chain, lambda c: _position_quiet(c, position),
                          DRAIN_TIMEOUT_S)
        report.drain_s = sim.now - drain_started
        ctx.fire("quiesced")

        old_replica.stop()
        old_stopped = True
        chain._switching.add(position)
        for state in old_replica.states.values():
            state.freeze()
            frozen.append(state)
        transfer_started = sim.now
        for mbox_index, mbox_name in chain.member_mboxes(position):
            state = old_replica.states[mbox_name]
            size = (state.store.state_bytes() +
                    sum(log.byte_size(chain.costs) for log in state.retained))
            exported = yield from _bounded_call(
                chain, new_server.name, old_name, state.export_state,
                response_bytes=max(size, 64))
            if exported is None:
                raise ReconfigError(
                    f"state transfer of {mbox_name} from {old_name} "
                    "timed out")
            contents, max_vector, retained = exported
            new_replica.states[mbox_name].import_state(
                contents, max_vector, retained)
            if new_replica.runtime is not None and mbox_index == position:
                new_replica.runtime.depvec.load(max_vector)
            report.bytes_transferred += size
        report.transfer_s = sim.now - transfer_started
        ctx.m_migrated.inc(report.bytes_transferred)

        yield sim.timeout(reroute_delay_s)
        switch_started = sim.now
        ctx.fire("switching")
        yield from ctx.journal_step("reconfig-switch")
        ctx.fence(f"replace {old_name} with {new_server.name}")
        version = chain.config_version + 1
        chain.buffer.hold_boundary(version)
        chain.apply_config(version)
        chain.route[position] = new_server.name
        chain.replicas[position] = new_replica
        chain.invalidate_channels(position)
        if position > 0:
            chain.net.connect(chain.route[position - 1],
                              chain.route[position])
        if position < chain.n_positions - 1:
            chain.net.connect(chain.route[position],
                              chain.route[position + 1])
        if n_threads != len(old_server.nic.queues):
            new_replica.middlebox.rescale(n_threads)
        new_replica.start()
        committed = True
        report.committed = True
        old_server.fail()
        chain.buffer.release_boundary()
        chain.note_route_change(position, old_name, new_server.name)
        report.held_packets = hold.peak
        ctx.m_held.inc(hold.peak)
        yield from ctx.journal_step("reconfig-commit")
        report.switch_s = sim.now - switch_started
        ctx.m_switches.inc()
        ctx.fire("committed")
        ctx.span(False, "committed")
    finally:
        chain._switching.discard(position)
        for state in frozen:
            state.thaw()
        if not committed:
            report.aborted = True
            ctx.m_aborted.inc()
            new_server.fail()
            if old_stopped and not old_server.failed:
                old_replica.start()
            if not old_server.failed:
                hold.begin_release()
            # else: recovery's re-steer flushes the hold through
            # note_route_change (or the deadline backstop does).
            ctx.fire("aborted")
            ctx.span(False, "aborted")
    report.total_s = sim.now - started
    report.detail = f"replaced {old_name} with {new_server.name}"
    return report


# -- insert / remove ----------------------------------------------------------

def _planned_groups(n_mboxes: int, n_positions: int, f: int,
                    mbox_index: int) -> List[int]:
    return [(mbox_index + k) % n_positions for k in range(f + 1)]


def _restructure(ctx: _Ctx, report: ReconfigReport, reroute_delay_s: float):
    """Insert or remove a middlebox: drain the whole chain, re-form groups.

    Group membership is a function of chain geometry, so a structural
    change moves every group; the switch rebuilds all replicas against
    the new layout from per-target state snapshots gathered (over
    bounded control RPCs) at the quiesce point, then releases ingress.
    """
    chain, op = ctx.chain, ctx.op
    sim = chain.sim
    started = sim.now

    if op.kind == "insert":
        names = [m.name for m in chain.middleboxes]
        if op.middlebox.name in names:
            if report.resumed:
                # Already applied by the previous leader: close the
                # journal entry and report success idempotently.
                yield from ctx.journal_step("reconfig-commit")
                report.committed = True
                report.detail = "already applied"
                return report
            raise ReconfigError(
                f"middlebox {op.middlebox.name!r} already in the chain")
        if not 0 <= op.index <= chain.n_mboxes:
            raise ReconfigError(f"insert index {op.index} out of range")
        new_mboxes = (chain.middleboxes[:op.index] + [op.middlebox]
                      + chain.middleboxes[op.index:])
        inserted = op.middlebox
    else:
        if op.middlebox_name not in [m.name for m in chain.middleboxes]:
            if report.resumed:
                yield from ctx.journal_step("reconfig-commit")
                report.committed = True
                report.detail = "already applied"
                return report
            raise ReconfigError(
                f"no middlebox {op.middlebox_name!r} in the chain")
        if chain.n_mboxes < 2:
            raise ReconfigError("cannot remove the only middlebox")
        new_mboxes = [m for m in chain.middleboxes
                      if m.name != op.middlebox_name]
        inserted = None

    ctx.span(True)
    ctx.fire("preparing")
    yield from ctx.journal_step("reconfig-prepare")

    new_n_mboxes = len(new_mboxes)
    new_n_pos = max(new_n_mboxes, chain.f + 1)
    new_server = None
    if inserted is not None:
        new_server = chain._new_server(op.index)
    ctx.m_prepares.inc()
    report.prepare_s = sim.now - started
    ctx.fire("prepared")

    hold = _install_hold(chain, 0, forced_counter=ctx.m_forced)
    committed = False
    frozen = []
    try:
        ctx.fire("draining")
        drain_started = sim.now
        yield from _drain(chain, _chain_quiet, CHAIN_DRAIN_TIMEOUT_S)
        report.drain_s = sim.now - drain_started
        ctx.fire("quiesced")

        # Plan the new route: kept middleboxes keep their servers, the
        # inserted one takes the warm spare, leftovers (the removed
        # middlebox's server, surplus extensions) back the extension
        # positions in old-route order; any shortfall spawns fresh.
        old_route = list(chain.route)
        kept: List[str] = []
        used_old = set()
        for mbox in new_mboxes:
            if inserted is not None and mbox is inserted:
                kept.append(new_server.name)
            else:
                old_index = chain.mbox_index(mbox.name)
                kept.append(old_route[old_index])
                used_old.add(old_index)
        leftover = [old_route[p] for p in range(chain.n_positions)
                    if p not in used_old]
        extensions: List[str] = []
        for k in range(new_n_pos - new_n_mboxes):
            if leftover:
                extensions.append(leftover.pop(0))
            else:
                extensions.append(chain._new_server(new_n_mboxes + k).name)
        retired = list(leftover)
        new_route = kept + extensions

        # Gather one state snapshot per (new position, middlebox) pair
        # over bounded control RPCs *before* mutating anything, from
        # each kept middlebox's current head.  Fresh RPC per target:
        # no two replicas may alias one snapshot's containers.
        source_states = {}
        for mbox in new_mboxes:
            if mbox is inserted:
                continue
            head = chain.mbox_index(mbox.name)
            source_states[mbox.name] = (
                chain.replica_at(head).states[mbox.name], old_route[head])
        for state, _ in source_states.values():
            state.freeze()
            frozen.append(state)
        exports: Dict[Tuple[int, str], tuple] = {}
        for new_index, mbox in enumerate(new_mboxes):
            if mbox is inserted:
                continue
            state, src_name = source_states[mbox.name]
            size = (state.store.state_bytes() +
                    sum(log.byte_size(chain.costs) for log in state.retained))
            for target in _planned_groups(new_n_mboxes, new_n_pos,
                                          chain.f, new_index):
                exported = yield from _bounded_call(
                    chain, new_route[target], src_name, state.export_state,
                    response_bytes=max(size, 64))
                if exported is None:
                    raise ReconfigError(
                        f"state transfer of {mbox.name} from {src_name} "
                        "timed out")
                exports[(target, mbox.name)] = exported
                report.bytes_transferred += size
        ctx.m_migrated.inc(report.bytes_transferred)

        yield sim.timeout(reroute_delay_s)
        switch_started = sim.now
        ctx.fire("switching")
        yield from ctx.journal_step("reconfig-switch")
        ctx.fence(f"{op.kind} -> route {new_route}")

        # -- the switch proper: synchronous, no yields until whole ----------
        for replica in chain.replicas:
            replica.stop()
        for channel in chain._channels.values():
            channel.stop()
        chain._channels.clear()
        removed = ([op.middlebox_name] if op.kind == "remove" else [])
        for name in removed:
            chain.forwarder.pending_logs = [
                log for log in chain.forwarder.pending_logs
                if log.mbox != name]
            chain.forwarder.pending_commits.pop(name, None)
            chain.forwarder._dirty_commits.discard(name)
            chain.buffer.commit_floor.pop(name, None)
            chain.buffer._commit_sent.pop(name, None)
            chain.buffer.feedback_logs = [
                log for log in chain.buffer.feedback_logs
                if log.mbox != name]
            chain.mbox_release_baseline.pop(name, None)
        version = chain.config_version + 1
        chain.buffer.hold_boundary(version)
        chain.apply_config(version)
        chain.middleboxes = list(new_mboxes)
        chain.n_mboxes = new_n_mboxes
        chain.n_positions = new_n_pos
        chain.route = list(new_route)
        chain.replicas = [
            Replica(sim, chain, p, chain.net.servers[new_route[p]],
                    chain.middleboxes[p] if p < new_n_mboxes else None,
                    costs=chain.costs, streams=chain.streams,
                    use_htm=chain.use_htm)
            for p in range(new_n_pos)]
        for p in range(new_n_pos - 1):
            chain.net.connect(new_route[p], new_route[p + 1])
        for p, replica in enumerate(chain.replicas):
            for mbox_index, mbox_name in chain.member_mboxes(p):
                exported = exports.get((p, mbox_name))
                if exported is None:
                    continue  # the freshly inserted middlebox: empty state
                contents, max_vector, retained = exported
                replica.states[mbox_name].import_state(
                    contents, max_vector, retained)
                if replica.runtime is not None and mbox_index == p:
                    replica.runtime.depvec.load(max_vector)
        if inserted is not None:
            # Egress released packets before the insert never traversed
            # the new middlebox; auditors account from this floor.
            chain.mbox_release_baseline[inserted.name] = chain.buffer.released
        for replica in chain.replicas:
            replica.start()
        committed = True
        report.committed = True
        # -------------------------------------------------------------------

        for name in retired:
            chain.net.servers[name].fail()
        chain.buffer.release_boundary()
        for p in range(new_n_pos):
            old_name = old_route[p] if p < len(old_route) else "(none)"
            if old_name != new_route[p]:
                chain.note_route_change(p, old_name, new_route[p])
        hold.begin_release()
        report.held_packets = hold.peak
        ctx.m_held.inc(hold.peak)
        yield from ctx.journal_step("reconfig-commit")
        report.switch_s = sim.now - switch_started
        ctx.m_switches.inc()
        ctx.fire("committed")
        ctx.span(False, "committed")
    finally:
        for state in frozen:
            state.thaw()
        if not committed:
            report.aborted = True
            ctx.m_aborted.inc()
            if new_server is not None:
                new_server.fail()
            hold.begin_release()
            ctx.fire("aborted")
            ctx.span(False, "aborted")
    report.total_s = sim.now - started
    report.detail = f"{op.kind}: route {old_route} -> {new_route}"
    return report


# -- classifier update --------------------------------------------------------

def _swap_classifier(ctx: _Ctx, report: ReconfigReport,
                     reroute_delay_s: float):
    """Atomically install a new classifier version at ingress."""
    chain, op = ctx.chain, ctx.op
    sim = chain.sim
    started = sim.now
    current = 0 if chain.classifier is None else chain.classifier.version
    if op.classifier.version <= current:
        raise StaleConfigError(
            f"classifier version {op.classifier.version} does not "
            f"advance {current}")
    ctx.span(True)
    ctx.fire("preparing")
    yield from ctx.journal_step("reconfig-prepare")
    ctx.m_prepares.inc()
    report.prepare_s = sim.now - started
    ctx.fire("prepared")
    committed = False
    try:
        # Rule-install latency on the (modelled) switches.
        yield sim.timeout(reroute_delay_s)
        switch_started = sim.now
        ctx.fire("switching")
        yield from ctx.journal_step("reconfig-switch")
        ctx.fence(f"classifier v{op.classifier.version}")
        chain.apply_config(chain.config_version + 1)
        chain.classifier = op.classifier
        committed = True
        report.committed = True
        yield from ctx.journal_step("reconfig-commit")
        report.switch_s = sim.now - switch_started
        ctx.m_switches.inc()
        ctx.fire("committed")
        ctx.span(False, "committed")
    finally:
        if not committed:
            report.aborted = True
            ctx.m_aborted.inc()
            ctx.fire("aborted")
            ctx.span(False, "aborted")
    report.total_s = sim.now - started
    report.detail = f"classifier v{op.classifier.version}"
    return report
