"""FTC chain assembly (§5).

:class:`FTCChain` wires everything together: one server + replica per
chain position, the forwarder on the first server, the buffer on the
last, the 10 GbE feedback path between them, and the replication-group
layout over the logical ring.  It also carries the failure/recovery
hooks the orchestrator drives.

If the chain is shorter than f+1 middleboxes, extension positions with
no middlebox are added before the buffer, exactly as §5.1 prescribes --
this is also how the single-middlebox protocol of §4 deploys (one
middlebox + f pure replicas).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..middlebox.base import Middlebox
from ..net.channel import DATA_RETRY_POLICY, ReliableChannel
from ..net.packet import Packet
from ..net.topology import Network
from ..sim import AnyOf, RandomStreams, RateLimiter, Simulator
from ..telemetry import NULL_TELEMETRY
from .buffer import Buffer
from .costs import CostModel, DEFAULT_COSTS
from .fencing import StaleConfigError
from .forwarder import Forwarder
from .replica import Replica

__all__ = ["FTCChain"]

#: Give up on a control RPC to a (possibly dead) peer after this long.
CONTROL_TIMEOUT_S = 2e-3


class FTCChain:
    """A deployed fault-tolerant service function chain."""

    def __init__(self, sim: Simulator, middleboxes: Sequence[Middlebox],
                 f: int = 1, deliver: Callable[[Packet], None] = lambda p: None,
                 costs: CostModel = DEFAULT_COSTS,
                 net: Optional[Network] = None, n_threads: int = 8,
                 seed: int = 0, use_htm: bool = False, name: str = "ftc",
                 telemetry=None, reliable_links: bool = False,
                 admission=None):
        if not middleboxes:
            raise ValueError("a chain needs at least one middlebox")
        if f < 0:
            raise ValueError("f must be non-negative")
        names = [m.name for m in middleboxes]
        if len(set(names)) != len(names):
            raise ValueError("middlebox names must be unique within a chain")
        self.sim = sim
        self.middleboxes = list(middleboxes)
        self.f = f
        self.costs = costs
        self.n_threads = n_threads
        self.name = name
        self.use_htm = use_htm
        self.streams = RandomStreams(seed)
        self.deliver = deliver
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY

        self.n_mboxes = len(middleboxes)
        #: §5.1: extend short chains with pure replicas before the buffer.
        self.n_positions = max(self.n_mboxes, f + 1)

        self.net = net or Network(sim, hop_delay_s=costs.hop_delay_s,
                                  bandwidth_bps=costs.bandwidth_bps)
        if self.telemetry.enabled and getattr(self.net, "telemetry",
                                              NULL_TELEMETRY) is NULL_TELEMETRY:
            self.net.telemetry = self.telemetry
        #: Optional region per position (multi-region deployments);
        #: respawned replicas land in the failed position's region.
        self.region_plan: Optional[List[str]] = None
        self.route: List[str] = []
        self._generation = 0
        for position in range(self.n_positions):
            server = self._new_server(position)
            self.route.append(server.name)
        for position in range(self.n_positions - 1):
            self.net.connect(self.route[position], self.route[position + 1])

        self.forwarder = Forwarder(
            sim, inject=self._inject_propagating,
            costs=costs, name=f"{name}/forwarder",
            telemetry=self.telemetry)
        self._feedback_serializer = RateLimiter(
            sim, rate=1e12,
            cost_fn=lambda pkt: pkt.wire_size * 8.0 / costs.feedback_bandwidth_bps,
            name=f"{name}/feedback-link")
        self.buffer = Buffer(sim, deliver=self._deliver,
                             send_feedback=self._send_feedback,
                             costs=costs, name=f"{name}/buffer",
                             telemetry=self.telemetry)

        self.replicas: List[Replica] = [
            Replica(sim, self, position, self.net.servers[self.route[position]],
                    self.middleboxes[position] if position < self.n_mboxes else None,
                    costs=costs, streams=self.streams, use_htm=use_htm)
            for position in range(self.n_positions)
        ]
        #: PROTOCOL.md §8: wrap each inter-position hop in a
        #: :class:`ReliableChannel` (sequencing + NACK/timeout
        #: retransmission) so the chain survives data-plane impairment.
        #: Off by default -- the disabled path adds no events and no
        #: wire bytes, keeping unimpaired runs bit-identical.
        self.reliable_links = reliable_links
        self._channels: Dict[Tuple[int, int], ReliableChannel] = {}
        self.packets_in = 0
        self.feedback_lost = 0
        self.buffer_packets_lost = 0
        #: Set when >f members of some replication group are gone and
        #: recovery gave up: the chain keeps running (meters keep
        #: reporting) but state of the affected group(s) is lost.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        #: Epoch fence installed by a replicated orchestrator ensemble
        #: (PROTOCOL.md §9).  ``None`` -- the default -- means commands
        #: are unfenced; single-orchestrator runs allocate nothing.
        self.gate = None
        #: Live-reconfiguration state (PROTOCOL.md §11).  Every default
        #: is inert: an unreconfigured chain takes none of these paths
        #: and stays bit-identical with pre-§11 builds.
        self.config_version = 0
        self.classifier = None
        self.classifier_drops = 0
        self._stamp_config = False
        self._holds: Dict[int, object] = {}
        self._switching: set = set()
        self._reconfig_seq = 0
        #: Callables ``(position, old_name, new_name)`` fired on every
        #: route mutation (recovery re-steer or reconfig switch); the
        #: orchestrator registers one to refresh its monitored set.
        self.route_observers: List[Callable[[int, str, str], None]] = []
        #: Egress count at the instant each middlebox was inserted live
        #: (auditors account per-middlebox packet counts from there).
        self.mbox_release_baseline: Dict[str, int] = {}
        #: Audited drop sites (PROTOCOL.md §12.2).
        self._m_classifier_drop = self.telemetry.registry.counter(
            "drops/classifier")
        #: Propagating packets the NIC queue refused; their piggyback
        #: state is re-absorbed by the forwarder and retried -- never
        #: dropped (the replication invariant does not bend under load).
        self.propagating_requeued = 0
        #: Overload protection (PROTOCOL.md §12): inert by default.
        #: When an :class:`~repro.core.admission.AdmissionControl` is
        #: passed, ingress gates data packets through it and every
        #: bounded queue registers on its backpressure bus.
        self.admission = admission
        if admission is not None:
            self._wire_backpressure()

    def _wire_backpressure(self) -> None:
        """Register every bounded queue on the admission bus."""
        bus = self.admission.bus
        if bus is None:
            return
        for position in range(self.n_positions):
            bus.add(f"nic-p{position}",
                    (lambda p=position: self.server_at(p).nic.depth()),
                    bound=self.n_threads * self.costs.nic_queue_depth)
        bus.add("buffer-held", lambda: len(self.buffer.held),
                bound=lambda: self.buffer.max_held)

    # -- construction helpers ------------------------------------------------

    def _new_server(self, position: int):
        self._generation += 1
        server = self.net.add_server(
            f"{self.name}-p{position}-g{self._generation}",
            n_cores=self.n_threads, cpu_hz=self.costs.cpu_hz,
            nic_pps=self.costs.nic_pps, nic_queues=self.n_threads,
            nic_queue_depth=self.costs.nic_queue_depth)
        if self.region_plan is not None and position < len(self.region_plan):
            server.region = self.region_plan[position]
        return server

    # -- replication-group geometry (§5) ---------------------------------------

    def group_positions(self, mbox_index: int) -> List[int]:
        """The f+1 ring positions replicating middlebox ``mbox_index``."""
        return [(mbox_index + k) % self.n_positions for k in range(self.f + 1)]

    def tail_position(self, mbox_index: int) -> int:
        return (mbox_index + self.f) % self.n_positions

    def member_mboxes(self, position: int) -> List[Tuple[int, str]]:
        """(index, name) of middleboxes whose group includes ``position``."""
        members = []
        for index, mbox in enumerate(self.middleboxes):
            if position in self.group_positions(index):
                members.append((index, mbox.name))
        return members

    def predecessor_in_group(self, mbox_index: int, position: int) -> int:
        """The group member immediately before ``position`` (§5.2)."""
        group = self.group_positions(mbox_index)
        where = group.index(position)
        if where == 0:
            raise ValueError("the head has no predecessor in its group")
        return group[where - 1]

    def successor_in_group(self, mbox_index: int, position: int) -> int:
        group = self.group_positions(mbox_index)
        where = group.index(position)
        if where == len(group) - 1:
            raise ValueError("the tail has no successor in its group")
        return group[where + 1]

    def mbox_index(self, mbox_name: str) -> int:
        for index, mbox in enumerate(self.middleboxes):
            if mbox.name == mbox_name:
                return index
        raise KeyError(mbox_name)

    # -- lookups ----------------------------------------------------------------

    def replica_at(self, position: int) -> Replica:
        return self.replicas[position]

    def server_at(self, position: int):
        return self.net.servers[self.route[position]]

    def store_of(self, mbox_name: str, position: int):
        """A position's state store for one middlebox (tests/inspection)."""
        return self.replicas[position].states[mbox_name].store

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        for replica in self.replicas:
            replica.start()

    def stop(self) -> None:
        for replica in self.replicas:
            replica.stop()
        self.forwarder.stop()
        self.buffer.stop()
        for channel in self._channels.values():
            channel.stop()

    # -- data plane ------------------------------------------------------------------

    def ingress(self, packet: Packet) -> None:
        """Entry point for traffic generators."""
        if packet.created_at == 0.0:
            packet.created_at = self.sim.now
        if self.classifier is not None and packet.is_data \
                and not self.classifier.admits(packet.flow):
            self.classifier_drops += 1
            self._m_classifier_drop.inc()
            return
        if self.admission is not None and packet.is_data \
                and not self.admission.offer(packet):
            # Shed at ingress -- the only point where a drop cannot
            # desynchronize replicated state (PROTOCOL.md §12.2).
            return
        self.packets_in += 1
        if self._stamp_config:
            packet.meta["cfg"] = self.forwarder.config_epoch
        hold = self._holds.get(0)
        if hold is not None and hold.active:
            hold.park(packet)
            return
        self.net.deliver_external(self.route[0], packet)

    def _inject_propagating(self, packet: Packet) -> None:
        """Forwarder-timer injection point for propagating packets.

        While position 0 is mid-switch its workers are down; putting
        the packet on the old NIC would strand the forwarder's pending
        logs there, so re-absorb them and let the timer retry once the
        replacement's workers are up.
        """
        replica = self.replica_at(0)
        if 0 in self._switching:
            message = packet.detach("ftc")
            if message is not None:
                self.forwarder.absorb_feedback(message)
            return
        if not replica.enqueue_local(packet):
            # NIC queue full under overload: a propagating packet
            # carries unreplicated logs, so dropping it would break the
            # replication invariant.  Re-absorb its piggyback state and
            # let the forwarder's propagation timer re-offer it.
            message = packet.detach("ftc")
            if message is not None:
                self.forwarder.absorb_feedback(message)
            self.propagating_requeued += 1
            flight = self.telemetry.flight
            if flight.enabled:
                flight.record(
                    "piggyback", "requeue", t=self.sim.now, pid=packet.pid,
                    detail="propagating packet refused by full NIC queue; "
                           "logs re-absorbed for retry")

    def _deliver(self, packet: Packet) -> None:
        self.deliver(packet)

    def send_to_position(self, src: int, dst: int, packet: Packet) -> None:
        hold = self._holds.get(dst)
        if hold is not None and hold.active:
            hold.park(packet)
            return
        self._send_unheld(src, dst, packet)

    def _forward_released(self, position: int, packet: Packet) -> None:
        """Re-emit one packet a ReconfigHold parked (bypasses the hold)."""
        if position == 0:
            self.net.deliver_external(self.route[0], packet)
        else:
            self._send_unheld(position - 1, position, packet)

    def _send_unheld(self, src: int, dst: int, packet: Packet) -> None:
        src_name, dst_name = self.route[src], self.route[dst]
        link = self.net.connect(src_name, dst_name)
        if not self.reliable_links:
            self.net.send(src_name, dst_name, packet)
            return
        if self.net.servers[src_name].failed:
            self.net.dropped_to_failed += 1
            self.net._count_drop("net-to-failed", packet)
            return
        channel = self._channel_for(src, dst)
        # Recovery replaces a failed position's links with fresh ones,
        # so re-adopt lazily: bind() is a no-op when already bound.
        channel.bind(link)
        channel.send(packet)

    def _channel_for(self, src: int, dst: int) -> ReliableChannel:
        channel = self._channels.get((src, dst))
        if channel is None:
            channel = ReliableChannel(
                self.sim, name=f"{self.name}/ch{src}-{dst}",
                policy=DATA_RETRY_POLICY,
                hop_header_bytes=self.costs.hop_header_bytes,
                ack_delay_s=self.costs.hop_delay_s,
                loss_fn=self.net.data_leg_lost,
                telemetry=self.telemetry)
            self._channels[(src, dst)] = channel
            if self.admission is not None and self.admission.bus is not None:
                self.admission.bus.add(
                    f"ch{src}-{dst}", lambda ch=channel: len(ch.txq),
                    bound=channel.txq_bound)
        return channel

    def channel_stats(self) -> Dict[str, int]:
        """Reliability-layer counters summed over all hop channels."""
        totals: Dict[str, int] = {}
        for channel in self._channels.values():
            for key, value in channel.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def _send_feedback(self, packet: Packet) -> None:
        """Buffer -> forwarder dissemination over the 10 GbE path."""
        first = self.server_at(0)
        last = self.server_at(self.n_positions - 1)
        if first.failed or last.failed:
            self.feedback_lost += 1
            return
        delay = (self._feedback_serializer.admission_delay(packet) +
                 self.costs.hop_delay_s)
        message = packet.detach("ftc")

        def arrive():
            if self.server_at(0).failed:
                self.feedback_lost += 1
                return
            self.forwarder.absorb_feedback(message)

        self.sim.schedule_callback(delay, arrive)

    # -- retransmission support -------------------------------------------------------

    def fetch_retained_logs(self, position: int, mbox_name: str):
        """Generator: ask the predecessor in the group for retained logs."""
        mbox_index = self.mbox_index(mbox_name)
        pred = self.predecessor_in_group(mbox_index, position)
        pred_replica = self.replica_at(pred)
        pred_server = self.server_at(pred)

        def handler():
            if pred_server.failed:
                return []
            state = pred_replica.states.get(mbox_name)
            return state.unpruned_logs() if state is not None else []

        call = self.net.control_call(
            self.route[position], self.route[pred], handler,
            response_bytes=4096)
        deadline = self.sim.timeout(CONTROL_TIMEOUT_S)
        yield AnyOf(self.sim, [call, deadline])
        if call.processed and call.ok:
            deadline.cancel()
            return call.value or []
        call.cancel()
        return []

    # -- failure injection --------------------------------------------------------------

    def failed_positions(self) -> List[int]:
        """Positions whose current server is failed."""
        return [p for p in range(self.n_positions) if self.server_at(p).failed]

    def safe_to_fail(self, position: int, pending=()) -> bool:
        """Would failing ``position`` keep every group within f losses?

        ``pending`` names positions already considered down (e.g. under
        recovery) beyond those whose servers are marked failed.  The
        chaos monkey uses this to schedule adversarial-but-recoverable
        crashes; passing an unsafe position to :func:`fail_position`
        still works but leads to ``UnrecoverableError``/degraded mode.
        """
        down = set(self.failed_positions()) | set(pending) | {position}
        for index in range(self.n_mboxes):
            group = self.group_positions(index)
            if sum(1 for p in group if p in down) > self.f:
                return False
        return True

    def fail_position(self, position: int) -> None:
        """Fail-stop the server at ``position`` (and its replica)."""
        server = self.server_at(position)
        server.fail()
        self.replica_at(position).stop()
        if position == 0:
            # The forwarder's soft state dies with the first server.
            self.forwarder.pending_logs.clear()
            self.forwarder.pending_commits.clear()
            self.forwarder._dirty_commits.clear()
        if position == self.n_positions - 1:
            # The buffer's held packets die with the last server.
            self.buffer_packets_lost += self.buffer.discard_held()
            self.buffer.feedback_logs.clear()
        # Hop channels touching the position lose their endpoint state;
        # a new epoch fences any frame/ACK still in flight (§8).
        self.invalidate_channels(position)

    def invalidate_channels(self, position: int) -> None:
        """Reset hop channels touching ``position`` after a route change.

        The channel epoch bump fences frames/ACKs still in flight to
        the retired endpoint; the next send re-binds the channel to the
        live link (§8, PROTOCOL.md §11).
        """
        for (src, dst), channel in self._channels.items():
            if position in (src, dst):
                channel.reset()

    # -- live reconfiguration (PROTOCOL.md §11) --------------------------------

    def note_route_change(self, position: int, old_name: str,
                          new_name: str) -> None:
        """Publish a route mutation (recovery re-steer or reconfig switch).

        Flushes any reconfiguration hold still parked on the position
        (a crash mid-switch leaves the hold orphaned until recovery
        re-steers) and notifies observers -- the orchestrator resets
        its heartbeat-miss streak so the replacement is monitored
        afresh instead of inheriting its predecessor's suspicion.
        """
        hold = self._holds.get(position)
        if hold is not None:
            hold.begin_release()
        for observer in list(self.route_observers):
            observer(position, old_name, new_name)

    def apply_config(self, version: int) -> None:
        """Advance the chain's config version (strictly monotonic).

        Once any reconfiguration has run, ingress stamps packets with
        the current version so the buffer can hold the version
        boundary during later switches.
        """
        if version <= self.config_version:
            raise StaleConfigError(
                f"config version {version} does not advance "
                f"{self.config_version}")
        self.config_version = version
        self._stamp_config = True
        self.forwarder.config_epoch = version

    def current_config(self):
        """An immutable snapshot of the live configuration."""
        from .reconfig import ChainConfig
        return ChainConfig(
            version=self.config_version,
            route=tuple(self.route),
            middleboxes=tuple(m.name for m in self.middleboxes),
            classifier_version=(0 if self.classifier is None
                                else self.classifier.version),
            groups=tuple((mbox.name, tuple(self.group_positions(index)))
                         for index, mbox in enumerate(self.middleboxes)))

    # -- statistics -------------------------------------------------------------------

    def total_released(self) -> int:
        return self.buffer.released
