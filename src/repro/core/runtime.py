"""Middlebox runtime at the head replica (§4).

The runtime executes a middlebox's packet transaction through the STM,
stamps the head's dependency vector atomically with the commit, emits
the piggyback log, and charges the calibrated cycle costs.  It also
keeps the per-component cycle counters that Table 2's benchmark reads
back out.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..middlebox.base import DROP, Middlebox, PASS
from ..net.packet import Packet
from ..sim import RandomStreams, Simulator
from ..stm.partition import PartitionSpace
from ..stm.transaction import TransactionContext, TransactionManager
from ..telemetry import NULL_TELEMETRY
from .costs import CostModel, DEFAULT_COSTS
from .depvec import DependencyVector, ReplicationState
from .piggyback import PiggybackLog, value_bytes

__all__ = ["MiddleboxRuntime", "CycleCounters"]


class CycleCounters:
    """Per-component CPU accounting (the Table 2 breakdown)."""

    __slots__ = ("processing", "locking", "piggyback_copy", "forwarder",
                 "buffer", "packets")

    def __init__(self):
        self.processing = 0.0
        self.locking = 0.0
        self.piggyback_copy = 0.0
        self.forwarder = 0.0
        self.buffer = 0.0
        self.packets = 0

    def per_packet(self, component: str) -> float:
        if self.packets == 0:
            return 0.0
        return getattr(self, component) / self.packets


class MiddleboxRuntime:
    """Transactional execution of one middlebox on its head server."""

    def __init__(self, sim: Simulator, middlebox: Middlebox,
                 own_state: ReplicationState,
                 costs: CostModel = DEFAULT_COSTS,
                 streams: Optional[RandomStreams] = None,
                 replicate: bool = True,
                 extra_critical_cycles: float = 0.0,
                 use_htm: bool = False, telemetry=None):
        self.sim = sim
        self.middlebox = middlebox
        self.state = own_state
        self.costs = costs
        self.streams = streams or RandomStreams(0)
        self.replicate = replicate
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Extra work inside the critical section (FTMB charges its
        #: in-lock PAL logging here; zero for FTC and NF).
        self.extra_critical_cycles = extra_critical_cycles
        #: Hybrid transactional memory (§3.2): elide locks when the
        #: hardware transaction would not conflict.
        self.use_htm = use_htm
        self.partitions = PartitionSpace(costs.n_partitions)
        self.manager = TransactionManager(
            sim, own_state.store, self.partitions,
            name=f"stm/{middlebox.name}",
            handoff_delay_s=costs.cycles_to_seconds(costs.lock_wakeup_cycles),
            spin_threshold=costs.lock_spin_threshold,
            htm=use_htm, telemetry=self.telemetry)
        self.depvec = DependencyVector(costs.n_partitions)
        self.counters = CycleCounters()
        self.transactions = 0

    # -- cost helpers ----------------------------------------------------------

    def _jittered(self, cycles: float) -> float:
        frac = self.costs.cycle_jitter_frac
        if frac <= 0:
            return cycles
        return self.streams.gauss_clamped(
            f"cycles/{self.middlebox.name}", cycles, cycles * frac,
            minimum=cycles * 0.5)

    def _processing_cycles(self) -> float:
        base = self.middlebox.processing_cycles
        if base is None:
            base = self.costs.processing_cycles
        return self._jittered(base)

    # -- execution ----------------------------------------------------------------

    def process(self, packet: Packet, thread_id: int,
                want_result: bool = False):
        """Generator: run the packet transaction.

        Returns ``(verdict, piggyback_log_or_None)`` -- or, with
        ``want_result``, ``(verdict, log, TransactionResult)`` so
        callers like FTMB can inspect the access set.  Read-only
        transactions yield a no-op log; stateless middleboxes skip the
        STM entirely (and produce no log).
        """
        self.transactions += 1
        self.counters.packets += 1
        processing = self._processing_cycles()
        if self.middlebox.stateless:
            self.counters.processing += processing
            yield self.sim.timeout(self.costs.cycles_to_seconds(processing))
            verdict = self.middlebox.process(
                packet, TransactionContext(self.state.store,
                                           flow=packet.flow,
                                           thread_id=thread_id,
                                           now=self.sim.now))
            if want_result:
                return verdict, None, None
            return verdict, None

        locking = self._jittered(self.costs.locking_cycles)
        hold = self.costs.cycles_to_seconds(
            processing + self.extra_critical_cycles)
        self.counters.processing += processing

        def body(ctx: TransactionContext):
            return self.middlebox.process(packet, ctx)

        def commit_hold_fn(ctx: TransactionContext) -> float:
            if not self.replicate or not ctx.writes:
                return 0.0
            copy_cycles = self._jittered(
                self.costs.piggyback_copy_cycles +
                self.costs.per_state_byte_cycles *
                sum(value_bytes(v, self.costs) for v in ctx.writes.values()))
            self.counters.piggyback_copy += copy_cycles
            return self.costs.cycles_to_seconds(copy_cycles)

        flight = self.telemetry.flight

        def on_commit(ctx: TransactionContext, touched) -> Optional[PiggybackLog]:
            if not self.replicate:
                return None
            if not ctx.writes:
                return PiggybackLog(self.middlebox.name, packet_id=packet.pid)
            vec = self.depvec.stamp(sorted(touched))
            log = PiggybackLog(self.middlebox.name, depvec=vec,
                               updates=dict(ctx.writes), packet_id=packet.pid)
            # The head is also the first of the f+1 replicas: account the
            # log locally so pruning/recovery see it.
            self.state.record_local(log)
            if flight.enabled:
                flight.record(
                    "piggyback", "append", t=self.sim.now, pid=packet.pid,
                    depvec=dict(vec),
                    detail=f"{self.middlebox.name} "
                           f"{len(ctx.writes)} update(s)",
                    chain=f"pid:{packet.pid}")
            return log

        trace_pid = (packet.pid
                     if self.telemetry.tracer.wants(packet.pid) else None)
        result = yield from self.manager.run(
            body, hold_time=hold, flow=packet.flow, thread_id=thread_id,
            trace_pid=trace_pid,
            flight_pid=packet.pid if flight.enabled else None,
            on_commit=on_commit, commit_hold_fn=commit_hold_fn,
            lock_overhead_s=self.costs.cycles_to_seconds(locking),
            htm_overhead_s=self.costs.cycles_to_seconds(
                self.costs.htm_commit_cycles))
        self.counters.locking += (self.costs.htm_commit_cycles
                                  if result.used_htm else locking)

        log = result.commit_value
        if want_result:
            return result.value, log, result
        return result.value, log
