"""The calibrated cost model.

Every constant that turns protocol actions into virtual time lives
here, each annotated with its source in the paper.  The simulation's
absolute numbers are only as good as this table; the *shapes* of the
reproduced figures come from the protocol structure itself.

Paper sources:

* Table 2 (per-packet CPU cycles for MazuNAT in a chain of two):
  packet processing 355 +/- 12, locking 152 +/- 11, copying
  piggybacked state 58 +/- 6, forwarder 8 +/- 2, buffer 100 +/- 4.
* Footnote 1: the Mellanox ConnectX-3 NIC processes at most
  9.6--10.6 Mpps; we use the midpoint 10.5 Mpps.  FTMB's one PAL
  message per data packet then halves goodput to ~5.26 Mpps (§7.3).
* §7.3: FTC adds 6--7 us of one-way network latency per hop.
* §7.4: FTMB+Snapshot stalls 6 ms every 50 ms per middlebox.
* §7.1: Xeon D-1540 at 2.0 GHz, 8 cores, packet size 256 B, f = 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Cycle/latency constants for the simulated data plane."""

    cpu_hz: float = 2.0e9

    # -- Table 2 cycle costs ------------------------------------------------
    processing_cycles: float = 355.0     # middlebox packet transaction body
    locking_cycles: float = 152.0        # 2PL acquire/release per packet
    piggyback_copy_cycles: float = 58.0  # construct one log at the head
    #: Applying one received log at a replica (dependency check + small
    #: memcpy into the state store) -- cheaper than construction.
    piggyback_apply_cycles: float = 25.0
    #: The forwarder attaching one fed-back log to an incoming packet.
    piggyback_attach_cycles: float = 12.0
    forwarder_cycles: float = 8.0        # per packet at the chain ingress
    buffer_cycles: float = 100.0         # per packet at the chain egress

    #: Measurement jitter on the above (Table 2 reports +/- values).
    cycle_jitter_frac: float = 0.03

    # -- byte-proportional costs ---------------------------------------------
    #: Copying state bytes into/out of piggyback logs (Fig 5 calibration).
    per_state_byte_cycles: float = 0.045
    #: Touching packet bytes on rx+tx (DPDK buffer handling).
    per_wire_byte_cycles: float = 0.12
    #: Appending a piggyback message larger than the packet's tailroom
    #: forces a chained mbuf / buffer extension (Fig 5: small packets
    #: suffer disproportionately once state size approaches packet size).
    mbuf_extension_cycles: float = 50.0

    # -- NIC / network ---------------------------------------------------------
    nic_pps: float = 10.5e6
    #: Descriptors per NIC receive queue (typical DPDK rx ring size).
    nic_queue_depth: int = 1024
    hop_delay_s: float = 6.5e-6
    bandwidth_bps: float = 40e9
    #: The paper disseminates buffer->forwarder state on a 10 GbE link.
    feedback_bandwidth_bps: float = 10e9

    #: Committing an uncontended hardware transaction (hybrid TM fast
    #: path, §3.2) instead of taking the partition locks.
    htm_commit_cycles: float = 40.0

    #: Lock handoff wakeup latency under light contention (adaptive
    #: mutex behaviour; responsible for the mid-sharing-level dips all
    #: systems show in Fig 6).
    lock_wakeup_cycles: float = 500.0
    lock_spin_threshold: int = 2

    # -- protocol parameters ---------------------------------------------------
    n_partitions: int = 16
    #: Forwarder timer for propagating packets when traffic pauses (§5.1).
    propagation_timeout_s: float = 100e-6

    # -- competing systems ---------------------------------------------------
    #: FTMB: logging a shared-state access inside the critical section.
    ftmb_pal_crit_cycles: float = 170.0
    #: FTMB: assembling and transmitting a PAL message, outside locks.
    ftmb_pal_tx_cycles: float = 130.0
    #: FTMB+Snapshot (§7.4): stall length and period.
    snapshot_stall_s: float = 6e-3
    snapshot_period_s: float = 50e-3

    # -- serialization sizes (for piggyback byte accounting) -----------------
    log_header_bytes: int = 8
    depvec_entry_bytes: int = 6          # 2 B partition index + 4 B seqno
    key_bytes: int = 13                  # a 5-tuple-sized key
    commit_header_bytes: int = 8
    message_header_bytes: int = 8        # IP option + message framing
    #: Per-hop reliability header when ``reliable_links`` is on: a
    #: 4 B sequence number + 4 B checksum (``repro.net.channel``).
    #: Only frames carry it, so disabled runs see identical wire sizes.
    hop_header_bytes: int = 8

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.cpu_hz

    def with_overrides(self, **kwargs) -> "CostModel":
        """A copy with some constants replaced (for ablations)."""
        return replace(self, **kwargs)


DEFAULT_COSTS = CostModel()
