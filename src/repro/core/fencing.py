"""Epoch fencing for control-plane commands (PROTOCOL.md §9).

When the orchestrator is replicated, every externally visible command
(declare-failed, spawn, re-steer, thaw/abandon) carries the epoch of
the leader that issued it.  The chain side keeps a single
:class:`EpochGate` -- the fencing state shared by the chain's servers
and the cloud provider -- that tracks the highest epoch it has ever
seen and rejects anything older with :class:`StaleEpochError`.  A
paused or partitioned ex-leader that wakes up and replays its loop
therefore cannot double-recover a position the new leader already
handled: its first fenced command kills its leadership instead.

The gate lives in ``repro.core`` (not ``repro.orchestration``) so the
recovery procedure can consult it without a layering inversion; the
default chain carries ``gate = None`` and pays nothing -- single-
orchestrator runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..telemetry import NULL_TELEMETRY

__all__ = ["StaleEpochError", "StaleConfigError", "AppliedCommand",
           "EpochGate"]


class StaleEpochError(Exception):
    """A command carried an epoch older than the fence's high-water mark."""


class StaleConfigError(Exception):
    """A chain config version that does not advance the current one.

    Config versions (PROTOCOL.md §11) are strictly monotonic per chain,
    mirroring how leader epochs are monotonic per ensemble; a switch
    that replays an old version is rejected rather than applied.
    """


@dataclass(frozen=True)
class AppliedCommand:
    """One fenced command that actually took effect on the chain."""

    epoch: int
    kind: str
    positions: Tuple[int, ...]
    detail: str
    t: float


class EpochGate:
    """Chain-side fencing token: monotonically advancing max epoch.

    ``check`` admits a command iff its epoch is current (advancing the
    fence as a side effect); ``apply`` additionally records the command
    in ``applied`` so the chaos auditor can prove no position was ever
    recovered twice under different epochs.
    """

    def __init__(self, sim, telemetry=None):
        self.sim = sim
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.max_epoch = 0
        self.fenced_commands = 0
        self.applied: List[AppliedCommand] = []
        self._m_fenced = self.telemetry.registry.counter(
            "ensemble/fenced_commands")
        self._flight = self.telemetry.flight

    def check(self, epoch: Optional[int], kind: str = "command",
              positions: Sequence[int] = ()) -> None:
        """Admit or fence one command; ``None`` epochs bypass (unreplicated)."""
        if epoch is None:
            return
        if epoch < self.max_epoch:
            self.fenced_commands += 1
            self._m_fenced.inc()
            self.telemetry.timeline.record(
                "fenced", positions,
                detail=f"{kind}: epoch {epoch} < fence {self.max_epoch}",
                t=self.sim.now)
            if self.telemetry.enabled:
                self.telemetry.tracer.instant(
                    0, f"fenced:{kind}", "ctrl", self.sim.now, tid=9998,
                    epoch=epoch, fence=self.max_epoch,
                    positions=list(positions))
            if self._flight.enabled:
                self._flight.record(
                    "fencing", "fenced", t=self.sim.now, epoch=epoch,
                    detail=f"{kind} rejected: epoch {epoch} < fence "
                           f"{self.max_epoch} positions={list(positions)}",
                    chain="ctrl")
            raise StaleEpochError(
                f"{kind} carries epoch {epoch}, fence is at {self.max_epoch}")
        self.max_epoch = epoch

    def apply(self, epoch: Optional[int], kind: str,
              positions: Sequence[int] = (), detail: str = "") -> None:
        """``check`` + record the command as having taken effect."""
        self.check(epoch, kind, positions)
        if epoch is None:
            return
        self.applied.append(AppliedCommand(
            epoch=epoch, kind=kind, positions=tuple(positions),
            detail=detail, t=self.sim.now))
        if self._flight.enabled:
            self._flight.record(
                "fencing", "applied", t=self.sim.now, epoch=epoch,
                detail=f"{kind} positions={list(positions)}"
                       f"{': ' + detail if detail else ''}",
                chain="ctrl")
