"""Overload protection at the chain ingress (PROTOCOL.md §12).

Two cooperating pieces keep the chain correct under any offered load:

* :class:`BackpressureBus` -- hop-by-hop credit accounting.  Every
  bounded queue in the data path (NIC receive queues, the buffer's
  held set, each reliable channel's send queue) registers itself as a
  :class:`PressureSource`; the bus reports the worst utilization as a
  single pressure level in [0, 1].  Pressure propagates *upstream*: a
  congested queue anywhere in the chain raises the level the ingress
  sees, instead of silently tail-dropping mid-chain.

* :class:`AdmissionControl` -- a token-bucket gate with priority
  classes at the classifier, the *only* point where shedding is safe.
  A packet dropped after its first middlebox has already mutated
  replicated state; a packet dropped at ingress has touched nothing,
  so the piggyback replication invariant holds under arbitrary load.
  Lower classes are shed first via per-class reserve floors: class
  ``c`` may only take a token while more than ``floor[c]`` tokens
  remain, and the floors decrease monotonically with priority, so at
  any instant a high class is admitted whenever a lower one is.

Both are inert until wired into a chain (``admission=None`` default),
keeping fig5/fig13 byte-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..telemetry import NULL_PROFILER, NULL_TELEMETRY

__all__ = ["TokenBucket", "AdmissionControl", "BackpressureBus",
           "PressureSource"]


class TokenBucket:
    """Lazily-refilled token bucket (rate ``rate_pps``, depth ``burst``).

    Refill is computed on demand from elapsed virtual time, so the
    bucket schedules nothing and is a pure function of the call
    sequence -- deterministic by construction.
    """

    def __init__(self, rate_pps: float, burst: float):
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate_pps = rate_pps
        self.burst = burst
        self.tokens = burst
        self._last_refill = 0.0

    def refill(self, now: float) -> None:
        if now > self._last_refill:
            self.tokens = min(self.burst, self.tokens +
                              (now - self._last_refill) * self.rate_pps)
            self._last_refill = now

    def set_rate(self, rate_pps: float, now: float) -> None:
        """Change the refill rate; tokens accrued so far are kept."""
        self.refill(now)
        self.rate_pps = max(rate_pps, 1e-9)

    def available(self, now: float) -> float:
        self.refill(now)
        return self.tokens

    def take(self, now: float, floor: float = 0.0) -> bool:
        """Take one token iff at least ``1 + floor`` are available."""
        self.refill(now)
        if self.tokens >= 1.0 + floor:
            self.tokens -= 1.0
            return True
        return False


class PressureSource:
    """One bounded queue's view on the bus: occupancy / bound.

    ``bound`` may be an int or a zero-argument callable -- chaos
    faults (``queue-pressure``) shrink bounds at runtime, and the
    pressure level must track the bound actually in force.
    """

    def __init__(self, name: str, occupancy: Callable[[], int], bound):
        if not callable(bound) and bound < 1:
            raise ValueError(f"pressure source {name!r} bound must be >= 1")
        self.name = name
        self.occupancy = occupancy
        self._bound = bound
        self.peak = 0
        #: Largest bound ever in force while sampled.  Chaos may shrink
        #: a bound below occupancy that was legally enqueued earlier, so
        #: the auditor compares ``peak`` against this, not the instant
        #: bound.
        self.bound_peak = 0 if callable(bound) else bound

    @property
    def bound(self) -> int:
        return self._bound() if callable(self._bound) else self._bound

    def level(self) -> float:
        occ = self.occupancy()
        if occ > self.peak:
            self.peak = occ
        bound = self.bound
        if bound > self.bound_peak:
            self.bound_peak = bound
        return min(1.0, occ / max(1, bound))


class BackpressureBus:
    """Aggregates pressure from every registered bounded queue.

    ``level()`` is the max utilization across sources -- the credit
    view the ingress gate consumes.  Per-source peaks are retained for
    the auditor's queue-bound invariant.
    """

    def __init__(self):
        self.sources: List[PressureSource] = []

    def add(self, name: str, occupancy: Callable[[], int],
            bound) -> PressureSource:
        source = PressureSource(name, occupancy, bound)
        self.sources.append(source)
        return source

    def level(self) -> float:
        if not self.sources:
            return 0.0
        return max(source.level() for source in self.sources)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Current occupancy/bound/peak per source (for reports)."""
        out: Dict[str, Dict[str, float]] = {}
        for source in self.sources:
            out[source.name] = {"occupancy": source.occupancy(),
                                "bound": source.bound,
                                "bound_peak": source.bound_peak,
                                "peak": source.peak}
        return out


class AdmissionControl:
    """Priority token-bucket gate at the chain ingress.

    Args:
        sim: the simulator (for virtual time and flight timestamps).
        rate_pps: sustained admission rate (the chain's budget).
        burst: bucket depth in tokens (default: 2 ms of ``rate_pps``).
        n_classes: priority classes; class ``n_classes - 1`` is most
            important and unstamped packets default to it (control
            traffic must never be shed below data).
        bus: optional :class:`BackpressureBus`; when its level reaches
            ``high_watermark`` the gate sheds *everything* -- the hard
            stop that keeps every bounded queue strictly within bounds.
        telemetry: metric registry + flight recorder bundle.

    Shed ordering: class ``c`` admits only while the bucket holds more
    than ``reserve[c]`` tokens, with ``reserve`` monotonically
    decreasing in ``c``.  Backpressure inflates every floor toward the
    bucket depth (low classes starve first), and brownout's
    ``tighten()`` scales the refill rate down.
    """

    def __init__(self, sim, rate_pps: float, burst: Optional[float] = None,
                 n_classes: int = 3, bus: Optional[BackpressureBus] = None,
                 high_watermark: float = 0.85, telemetry=None,
                 name: str = "admission"):
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        if n_classes < 1:
            raise ValueError("n_classes must be >= 1")
        if not 0.0 < high_watermark <= 1.0:
            raise ValueError("high_watermark must be in (0, 1]")
        self.sim = sim
        self.name = name
        self.base_rate_pps = rate_pps
        self.n_classes = n_classes
        self.bus = bus
        self.high_watermark = high_watermark
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        burst = burst if burst is not None else max(16.0, rate_pps * 2e-3)
        self.bucket = TokenBucket(rate_pps, burst)
        #: Reserve floors: class c only drains the bucket down to
        #: reserve[c].  Monotone decreasing => strict shed ordering.
        if n_classes == 1:
            self.reserve = [0.0]
        else:
            self.reserve = [0.5 * burst * (n_classes - 1 - c) / (n_classes - 1)
                            for c in range(n_classes)]
        #: Brownout throttle: effective rate = base * scale.
        self.scale = 1.0
        self.offered = 0
        self.admitted = 0
        self.offered_by_class = [0] * n_classes
        self.admitted_by_class = [0] * n_classes
        self.shed_by_class = [0] * n_classes
        self.shed_backpressure = 0
        self._prof = getattr(self.telemetry, "profiler", NULL_PROFILER)
        registry = self.telemetry.registry
        self._m_admitted = registry.counter(f"{name}/admitted")
        self._m_shed = registry.counter(f"drops/{name}")
        self._flight = self.telemetry.flight

    @property
    def shed(self) -> int:
        return sum(self.shed_by_class)

    def class_of(self, packet) -> int:
        prio = packet.meta.get("prio", self.n_classes - 1)
        return max(0, min(self.n_classes - 1, int(prio)))

    def set_scale(self, scale: float) -> None:
        """Brownout hook: throttle the refill rate to ``base * scale``."""
        self.scale = scale
        self.bucket.set_rate(self.base_rate_pps * scale, self.sim.now)

    def offer(self, packet) -> bool:
        """Gate one packet at ingress; True = admitted."""
        prof = self._prof
        prof_t0 = prof.t0()
        admitted = self._offer(packet)
        prof.add("admission/check", prof_t0)
        return admitted

    def _offer(self, packet) -> bool:
        now = self.sim.now
        cls = self.class_of(packet)
        self.offered += 1
        self.offered_by_class[cls] += 1
        pressure = self.bus.level() if self.bus is not None else 0.0
        if pressure >= self.high_watermark:
            # Hard stop: some queue downstream is nearly full.  Shed
            # every class -- admitting anything risks an in-chain drop,
            # which is the one thing this gate exists to prevent.
            return self._shed(packet, cls, now,
                              f"backpressure level {pressure:.2f}")
        floor = self.reserve[cls]
        if pressure > 0.0:
            # Credit coupling: pressure inflates every floor toward
            # the bucket depth, starving low classes first.
            floor += pressure * (self.bucket.burst - floor)
        if not self.bucket.take(now, floor):
            return self._shed(packet, cls, now,
                              f"tokens below class-{cls} floor")
        self.admitted += 1
        self.admitted_by_class[cls] += 1
        self._m_admitted.inc()
        return True

    def _shed(self, packet, cls: int, now: float, reason: str) -> bool:
        self.shed_by_class[cls] += 1
        if reason.startswith("backpressure"):
            self.shed_backpressure += 1
        self._m_shed.inc()
        if self._flight.enabled:
            self._flight.record(
                "admission", "shed", t=now, pid=packet.pid,
                detail=f"class {cls}: {reason}", chain=f"pid:{packet.pid}")
        return False

    def stats(self) -> Dict[str, object]:
        return {"offered": self.offered, "admitted": self.admitted,
                "shed": self.shed,
                "shed_by_class": list(self.shed_by_class),
                "shed_backpressure": self.shed_backpressure,
                "scale": self.scale}
