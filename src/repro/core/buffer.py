"""The buffer element at the chain egress (§5).

The buffer withholds a packet from release until the state updates of
every middlebox that processed it are replicated f+1 times.  For
middleboxes whose replication group wraps to the beginning of the
chain, the packet's logs are still unreplicated when it arrives here;
the buffer keeps those logs flowing by feeding them back to the
forwarder and releases the packet once later commit vectors cover its
dependency vectors.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from ..net.packet import FlowKey, Packet
from ..sim import Simulator
from ..telemetry import NULL_PROFILER, NULL_TELEMETRY
from .costs import CostModel, DEFAULT_COSTS
from .piggyback import CommitVector, PiggybackLog, PiggybackMessage

__all__ = ["Buffer"]

_FEEDBACK_FLOW = FlowKey(0x0A0000FD, 0x0A0000FC, 0, 0, 0)

#: Minimum spacing between feedback packets: under load many packets'
#: state shares one feedback message (real deployments batch exactly
#: like this to keep the 10 GbE dissemination link's pps down).
_FEEDBACK_MIN_INTERVAL_S = 0.5e-6

#: Packet ids remembered for duplicate suppression (PROTOCOL.md §8).
#: Sized far above any plausible in-flight population so a duplicate
#: arriving within the retransmission horizon is always caught.
_DEDUP_WINDOW = 65536

#: Default bound on the held set: past this the buffer sheds load
#: instead of growing without limit (a wedged commit path must not
#: exhaust memory; shed packets are counted, never silently lost).
_DEFAULT_MAX_HELD = 65536

#: Shared release-requirements value for the (common) packet carrying
#: no wrap-around logs; never mutated -- _satisfied only reads it.
_NO_REQUIREMENTS: Dict[str, Dict[int, int]] = {}


class Buffer:
    """Egress element: release gating, state feedback, commit tracking."""

    def __init__(self, sim: Simulator, deliver: Callable[[Packet], None],
                 send_feedback: Callable[[Packet], None],
                 costs: CostModel = DEFAULT_COSTS, name: str = "buffer",
                 telemetry=None, max_held: int = _DEFAULT_MAX_HELD):
        self.sim = sim
        self.deliver = deliver
        self.send_feedback = send_feedback
        self.costs = costs
        self.name = name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prof = getattr(self.telemetry, "profiler", NULL_PROFILER)
        registry = self.telemetry.registry
        self._m_hold = registry.histogram(f"{name}/hold_time_s")
        self._m_held = registry.gauge(f"{name}/held")
        self._m_released = registry.counter(f"{name}/released")
        self._m_feedback = registry.counter(f"{name}/feedback_packets")
        self._m_duplicates = registry.counter(f"{name}/duplicates_dropped")
        self._m_overflow = registry.counter(f"{name}/overflow_dropped")
        self._m_drop_site = registry.counter("drops/buffer-overflow")
        self._flight = self.telemetry.flight
        #: pid -> virtual time the packet entered the held queue (only
        #: populated while telemetry is enabled).
        self._hold_started: Dict[int, float] = {}
        self.commit_floor: Dict[str, Dict[int, int]] = {}
        #: Floors already disseminated to the forwarder; feedback
        #: packets carry only deltas so the 10 GbE path is not wasted
        #: re-sending full vectors (which saturates it at high f).
        self._commit_sent: Dict[str, Dict[int, int]] = {}
        self.held: List[Tuple[Packet, Dict[str, Dict[int, int]]]] = []
        self.feedback_logs: List[PiggybackLog] = []
        self._feedback_dirty = False
        self._feedback_kick = sim.event()
        self.released = 0
        self.packets_seen = 0
        self.cycles_spent = 0.0
        self.held_peak = 0
        self.max_held = max_held
        #: Minimum spacing between feedback packets; brownout's
        #: ack-batching action stretches this (PROTOCOL.md §12.3).
        self.feedback_min_interval_s = _FEEDBACK_MIN_INTERVAL_S
        self.propagating_consumed = 0
        #: Exactly-once egress (§8): duplicate deliveries (a retransmit
        #: that raced its ACK, a link-duplicated packet) are absorbed
        #: here -- their piggyback content is idempotent upstream, and
        #: the packet itself must not be released twice.
        self.duplicates_dropped = 0
        self.overflow_dropped = 0
        self._seen_pids: "OrderedDict[int, None]" = OrderedDict()
        #: Config-version boundary (PROTOCOL.md §11): while set,
        #: packets stamped with this version or newer park until
        #: :meth:`release_boundary` -- the quiesce barrier guarantees
        #: no new-config packet egresses before the switch commits.
        self._boundary: Optional[int] = None
        self._boundary_parked: List[Tuple[Packet, PiggybackMessage]] = []
        self._alive = True
        self._sender = sim.process(self._feedback_loop(), name=f"{name}/feedback")

    # -- per-packet handling (called by the last replica's worker) -----------

    def handle(self, packet: Packet, message: PiggybackMessage) -> float:
        """Process one packet at chain egress; returns CPU cycles spent."""
        prof = self._prof
        prof_t0 = prof.t0()
        cycles = self._handle(packet, message)
        prof.add("buffer/hold", prof_t0)
        return cycles

    def _handle(self, packet: Packet, message: PiggybackMessage) -> float:
        if (self._boundary is not None and packet.is_data
                and packet.meta.get("cfg", -1) >= self._boundary):
            self._boundary_parked.append((packet, message))
            return 0.0
        self.packets_seen += 1
        cycles = self.costs.buffer_cycles
        if packet.pid in self._seen_pids:
            # Duplicate delivery: everything this message carries was
            # already absorbed (log offers and commit merges are
            # idempotent), so the whole packet is a no-op -- and
            # releasing it again would break exactly-once egress.
            self.duplicates_dropped += 1
            self._m_duplicates.inc()
            if self._flight.enabled:
                self._flight.record(
                    "buffer", "dup-drop", t=self.sim.now, pid=packet.pid,
                    detail="duplicate delivery absorbed at egress",
                    chain=f"pid:{packet.pid}")
            self.cycles_spent += cycles
            return cycles
        self._seen_pids[packet.pid] = None
        if len(self._seen_pids) > _DEDUP_WINDOW:
            self._seen_pids.popitem(last=False)
        # 1. Absorb commit vectors (including any this packet carried
        #    from the final tail) before evaluating release conditions.
        for mbox, commit in message.commits.items():
            floor = self.commit_floor.setdefault(mbox, {})
            commit.merge_into(floor)
        if message.commits:
            self._feedback_dirty = True

        # 2. Any logs still aboard belong to wrap-around groups: they
        #    define this packet's release requirements and must be fed
        #    back to the forwarder to continue replication.  Most
        #    packets (any f < chain length run) carry none: share one
        #    immutable empty dict instead of allocating a fresh dict +
        #    key-list copy per packet.
        requirements: Dict[str, Dict[int, int]] = _NO_REQUIREMENTS
        if message.logs:
            requirements = {}
            for mbox in list(message.logs):
                for log in message.take_logs(mbox):
                    cycles += self.costs.piggyback_attach_cycles
                    if log.packet_id == packet.pid and not log.is_noop:
                        requirements[mbox] = dict(log.depvec)
                    self.feedback_logs.append(log)
                    self._feedback_dirty = True

        if self._feedback_dirty and not self._feedback_kick.triggered:
            self._feedback_kick.succeed()

        # 3. Release logic.
        if packet.kind == "propagating":
            self.propagating_consumed += 1
        elif self._satisfied(requirements):
            self._release(packet)
        elif len(self.held) >= self.max_held:
            # Backpressure floor: shed instead of growing unboundedly
            # when the commit path is wedged (counted, not silent).
            self.overflow_dropped += 1
            self._m_overflow.inc()
            self._m_drop_site.inc()
            if self._flight.enabled:
                self._flight.record(
                    "buffer", "shed", t=self.sim.now, pid=packet.pid,
                    detail=f"held set full ({self.max_held})",
                    chain=f"pid:{packet.pid}")
        else:
            self.held.append((packet, requirements))
            self.held_peak = max(self.held_peak, len(self.held))
            if self.telemetry.enabled:
                self._hold_started[packet.pid] = self.sim.now
                tracer = self.telemetry.tracer
                if tracer.wants(packet.pid):
                    tracer.begin_async(packet.pid, "buffer-hold", "buffer",
                                       self.sim.now,
                                       mboxes=sorted(requirements))
            if self._flight.enabled:
                self._flight.record(
                    "buffer", "hold", t=self.sim.now, pid=packet.pid,
                    detail=f"awaiting commits from {sorted(requirements)}",
                    chain=f"pid:{packet.pid}")
        prof = self._prof
        prof_t0 = prof.t0()
        self._scan_held()
        prof.add("buffer/release", prof_t0)
        if self.telemetry.enabled:
            self._m_held.set(len(self.held))
        self.cycles_spent += cycles
        return cycles

    # -- release machinery --------------------------------------------------------

    def _satisfied(self, requirements: Dict[str, Dict[int, int]]) -> bool:
        for mbox, depvec in requirements.items():
            floor = self.commit_floor.get(mbox)
            if floor is None:
                return False
            if not CommitVector(mbox, floor).covers(depvec):
                return False
        return True

    def _release(self, packet: Packet) -> None:
        packet.detach("ftc")
        self.released += 1
        if self.telemetry.enabled:
            self._m_released.inc()
            held_since = self._hold_started.pop(packet.pid, None)
            self._m_hold.observe(
                0.0 if held_since is None else self.sim.now - held_since,
                t=self.sim.now)
            tracer = self.telemetry.tracer
            if tracer.wants(packet.pid):
                if held_since is not None:
                    tracer.end_async(packet.pid, "buffer-hold", "buffer",
                                     self.sim.now)
                tracer.instant(packet.pid, "release", "buffer", self.sim.now)
        if self._flight.enabled:
            self._flight.record(
                "buffer", "release", t=self.sim.now, pid=packet.pid,
                detail="all dependency vectors covered f+1 times",
                chain=f"pid:{packet.pid}")
        self.deliver(packet)

    def _scan_held(self) -> None:
        """Release the FIFO prefix of held packets that is now covered.

        Commit vectors advance monotonically in packet order, so
        scanning from the front and stopping at the first unsatisfied
        packet is O(releases) amortized -- essential when most
        replication groups wrap (large f) and thousands of packets may
        be held at once.  A blocked front packet only ever delays later
        ones by (at most) the commit that unblocks it.
        """
        released_prefix = 0
        for packet, requirements in self.held:
            if not self._satisfied(requirements):
                break
            self._release(packet)
            released_prefix += 1
        if released_prefix:
            del self.held[:released_prefix]

    def hold_boundary(self, version: int) -> None:
        """Start parking packets stamped with ``version`` or newer."""
        self._boundary = version
        self._boundary_parked = []

    def release_boundary(self) -> None:
        """Replay boundary-parked packets in order; clear the boundary."""
        if self._boundary is None:
            return
        self._boundary = None
        parked, self._boundary_parked = self._boundary_parked, []
        for packet, message in parked:
            self.handle(packet, message)

    def discard_held(self) -> int:
        """Drop every held packet (a mid-chain failure orphaned them).

        Returns how many packets were discarded.
        """
        dropped = len(self.held)
        self.held.clear()
        self._hold_started.clear()
        return dropped

    # -- feedback to the forwarder ---------------------------------------------

    def stop(self) -> None:
        self._alive = False
        if not self._feedback_kick.triggered:
            self._feedback_kick.succeed()

    def _feedback_loop(self):
        while self._alive:
            if not self._feedback_dirty:
                self._feedback_kick = self.sim.event()
                yield self._feedback_kick
                if not self._alive:
                    return
            self._feedback_dirty = False
            packet = Packet(flow=_FEEDBACK_FLOW, size=64, kind="feedback",
                            created_at=self.sim.now)
            message = PiggybackMessage(self.costs)
            message.add_logs(self.feedback_logs)
            self.feedback_logs = []
            for mbox, floor in self.commit_floor.items():
                sent = self._commit_sent.setdefault(mbox, {})
                delta = {p: s for p, s in floor.items() if s != sent.get(p)}
                if delta:
                    message.set_commit(CommitVector(mbox, delta))
                    sent.update(delta)
            packet.attach("ftc", message)
            self._m_feedback.inc()
            self.send_feedback(packet)
            yield self.sim.timeout(max(
                self.feedback_min_interval_s,
                packet.wire_size * 8.0 / self.costs.feedback_bandwidth_bps))
