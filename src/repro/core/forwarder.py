"""The forwarder element at the chain ingress (§5).

The forwarder receives incoming packets from the outside world and
piggyback messages fed back from the buffer; it adds the pending state
updates (logs of the last f middleboxes) and commit vectors to
incoming packets before the first replica processes them.  When no
traffic arrives for a while, a timer emits a *propagating packet* so
state keeps flowing (§5.1).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

from ..net.packet import FlowKey, Packet
from ..sim import Simulator
from ..telemetry import NULL_PROFILER, NULL_TELEMETRY
from .costs import CostModel, DEFAULT_COSTS
from .piggyback import CommitVector, PiggybackLog, PiggybackMessage, value_bytes

__all__ = ["Forwarder"]

#: Flow key used by propagating packets (never hits a middlebox).
_PROPAGATING_FLOW = FlowKey(0x0A0000FE, 0x0A0000FF, 0, 0, 0)

#: Wire size of a propagating packet before its piggyback message.
_PROPAGATING_SIZE = 64


class Forwarder:
    """Ingress element: merges fed-back state onto incoming packets."""

    def __init__(self, sim: Simulator, inject: Callable[[Packet], None],
                 costs: CostModel = DEFAULT_COSTS, name: str = "forwarder",
                 telemetry=None):
        self.sim = sim
        self.inject = inject  # hands a propagating packet to replica 0
        self.costs = costs
        self.name = name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prof = getattr(self.telemetry, "profiler", NULL_PROFILER)
        registry = self.telemetry.registry
        self._m_attached = registry.counter(f"{name}/logs_attached")
        self._m_pending = registry.gauge(f"{name}/pending_logs")
        self._m_propagating = registry.counter(f"{name}/propagating_sent")
        self.pending_logs: List[PiggybackLog] = []
        self.pending_commits: Dict[str, Dict[int, int]] = {}
        self._dirty_commits: Set[str] = set()
        self.last_rx = 0.0
        self.packets_seen = 0
        self.cycles_spent = 0.0
        self.propagating_sent = 0
        self.feedback_received = 0
        #: Config version ingress stamps packets with (PROTOCOL.md §11);
        #: advanced by FTCChain.apply_config on every reconfig switch.
        self.config_epoch = 0
        self._alive = True
        self._timer = sim.process(self._timer_loop(), name=f"{name}/timer")

    # -- feedback ingestion (from the buffer, over the 10 GbE link) ----------

    def absorb_feedback(self, message: PiggybackMessage) -> None:
        self.feedback_received += 1
        for logs in message.logs.values():
            self.pending_logs.extend(logs)
        self._m_pending.set(len(self.pending_logs))
        for mbox, commit in message.commits.items():
            floor = self.pending_commits.setdefault(mbox, {})
            before = dict(floor)
            commit.merge_into(floor)
            if floor != before:
                self._dirty_commits.add(mbox)

    # -- per-packet attach (called by replica 0's worker) ----------------------

    def attach(self, message: PiggybackMessage) -> float:
        """Move pending state onto a packet's message; returns CPU cycles."""
        prof = self._prof
        prof_t0 = prof.t0()
        self.packets_seen += 1
        self.last_rx = self.sim.now
        cycles = self.costs.forwarder_cycles
        if self.pending_logs:
            self._m_attached.inc(len(self.pending_logs))
            for log in self.pending_logs:
                cycles += (self.costs.piggyback_attach_cycles +
                           self.costs.per_state_byte_cycles *
                           sum(value_bytes(v, self.costs)
                               for v in log.updates.values()))
                message.add_log(log)
            self.pending_logs = []
        self._m_pending.set(0)
        for mbox in self._dirty_commits:
            message.set_commit(CommitVector(mbox, dict(self.pending_commits[mbox])))
        self._dirty_commits.clear()
        self.cycles_spent += cycles
        prof.add("piggyback/append", prof_t0)
        return cycles

    # -- propagating packets (§5.1) -----------------------------------------------

    @property
    def has_pending(self) -> bool:
        return bool(self.pending_logs or self._dirty_commits)

    def stop(self) -> None:
        self._alive = False

    def _timer_loop(self):
        timeout = self.costs.propagation_timeout_s
        while self._alive:
            yield self.sim.timeout(timeout)
            if not self._alive:
                return
            idle = self.sim.now - self.last_rx
            if idle >= timeout and self.has_pending:
                self._send_propagating()

    def _send_propagating(self) -> None:
        packet = Packet(flow=_PROPAGATING_FLOW, size=_PROPAGATING_SIZE,
                        kind="propagating", created_at=self.sim.now)
        message = PiggybackMessage(self.costs)
        self.attach(message)
        packet.attach("ftc", message)
        self.propagating_sent += 1
        self._m_propagating.inc()
        self.inject(packet)
