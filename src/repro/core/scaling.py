"""Vertical scaling (§1, §4.3).

One of FTC's claimed advantages over thread-replay designs: because
dependency vectors order transactions by *state partition* rather than
by thread, "FTC can support vertical scaling by replacing a running
middlebox with a new instance with more CPU cores, or failing over to
a server with fewer CPU cores" -- and "a middlebox and its replicas
can run with a different number of threads."

:func:`rescale_position` is now a thin wrapper over the live
reconfiguration subsystem (PROTOCOL.md §11): the replacement is
spawned warm, traffic bound for the position parks in a FIFO hold
while the position drains to a quiesce point, state (store + MAX
vector + retained logs) transfers over bounded control RPCs, the route
switches under a config-version bump, and the held packets release in
arrival order -- zero drops, zero reorders, unlike the stop-and-copy
re-steering this function performed before §11.
"""

from __future__ import annotations

from dataclasses import dataclass

from .chain import FTCChain
from .reconfig import ReconfigOp, apply_reconfig

__all__ = ["rescale_position", "RescaleReport"]


@dataclass
class RescaleReport:
    """Timing of one vertical-scaling operation."""

    position: int
    old_threads: int
    new_threads: int
    transfer_s: float = 0.0
    total_s: float = 0.0
    bytes_transferred: int = 0


def rescale_position(chain: FTCChain, position: int, new_n_threads: int,
                     reroute_delay_s: float = 0.5e-3):
    """Generator (run as a sim process): replace a replica's server.

    Returns a :class:`RescaleReport`.  The replacement keeps the same
    chain position and middlebox; only the core/thread count changes.
    """
    if new_n_threads < 1:
        raise ValueError("need at least one thread")
    old_threads = len(chain.replica_at(position).server.nic.queues)
    op = ReconfigOp(kind="rescale", position=position,
                    n_threads=new_n_threads)
    report = yield from apply_reconfig(chain, op,
                                       reroute_delay_s=reroute_delay_s)
    return RescaleReport(position=position, old_threads=old_threads,
                         new_threads=new_n_threads,
                         transfer_s=report.transfer_s,
                         total_s=report.total_s,
                         bytes_transferred=report.bytes_transferred)
