"""Vertical scaling (§1, §4.3).

One of FTC's claimed advantages over thread-replay designs: because
dependency vectors order transactions by *state partition* rather than
by thread, "FTC can support vertical scaling by replacing a running
middlebox with a new instance with more CPU cores, or failing over to
a server with fewer CPU cores" -- and "a middlebox and its replicas
can run with a different number of threads."

:func:`rescale_position` performs a stop-and-copy replacement: the old
replica stops admitting packets, its state (store + MAX vector +
retained logs) transfers to a fresh server with the new thread count,
and traffic is re-steered.  Because the transfer source is alive, this
is much faster than failure recovery; packets in flight during the
switch are dropped exactly as during any re-steering event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .chain import FTCChain
from .replica import Replica

__all__ = ["rescale_position", "RescaleReport"]


@dataclass
class RescaleReport:
    """Timing of one vertical-scaling operation."""

    position: int
    old_threads: int
    new_threads: int
    transfer_s: float = 0.0
    total_s: float = 0.0
    bytes_transferred: int = 0


def rescale_position(chain: FTCChain, position: int, new_n_threads: int,
                     reroute_delay_s: float = 0.5e-3):
    """Generator (run as a sim process): replace a replica's server.

    Returns a :class:`RescaleReport`.  The replacement keeps the same
    chain position and middlebox; only the core/thread count changes.
    """
    if new_n_threads < 1:
        raise ValueError("need at least one thread")
    sim = chain.sim
    started = sim.now
    old_replica = chain.replica_at(position)
    report = RescaleReport(position=position,
                           old_threads=len(old_replica.server.nic.queues),
                           new_threads=new_n_threads)

    # 1. Spawn the replacement server with the new core count.
    saved_threads = chain.n_threads
    chain.n_threads = new_n_threads
    try:
        new_server = chain._new_server(position)
    finally:
        chain.n_threads = saved_threads
    new_replica = Replica(sim, chain, position, new_server,
                          old_replica.middlebox, costs=chain.costs,
                          streams=chain.streams, use_htm=chain.use_htm)

    # 2. Quiesce the old replica: stop admitting, freeze all groups so
    #    the exported snapshots are stable, then transfer each group.
    old_replica.stop()
    for state in old_replica.states.values():
        state.freeze()
    transfer_started = sim.now
    for mbox_index, mbox_name in chain.member_mboxes(position):
        state = old_replica.states[mbox_name]
        size = (state.store.state_bytes() +
                sum(log.byte_size(chain.costs) for log in state.retained))
        report.bytes_transferred += size
        contents, max_vector, retained = yield chain.net.control_call(
            new_server.name, chain.route[position],
            state.export_state, response_bytes=max(size, 64))
        target = new_replica.states[mbox_name]
        target.import_state(contents, max_vector, retained)
        if new_replica.runtime is not None and mbox_index == position:
            new_replica.runtime.depvec.load(max_vector)
    report.transfer_s = sim.now - transfer_started

    # 3. Re-steer traffic and retire the old instance.
    yield sim.timeout(reroute_delay_s)
    chain.route[position] = new_server.name
    chain.replicas[position] = new_replica
    if position > 0:
        chain.net.connect(chain.route[position - 1], chain.route[position])
    if position < chain.n_positions - 1:
        chain.net.connect(chain.route[position], chain.route[position + 1])
    new_replica.start()
    report.total_s = sim.now - started
    return report
