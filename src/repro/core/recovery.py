"""Failure recovery (§4.1, §5.2).

Recovery of a failed replica runs in three steps: initialization
(spawning a new replica at the failure position), state recovery
(fetching each replication group's state from an alive member), and
rerouting (steering traffic through the new replica).

Source selection follows the log propagation invariant: a failed
*head* recovers from its immediate successor (the successor's state is
the same or prior, and everything released went through it); any other
member recovers from its immediate predecessor.  With multiple
failures the walk continues to the nearest alive member, and the
orchestrator performs a single rerouting only after every new replica
has confirmed recovery.

The procedure is exception-safe and abortable: frozen source states
are always thawed, half-spawned replicas are released, and state
fetches ride the control-plane retry policy so a lost message costs a
timeout, not a hang.  A source that dies *mid-fetch* surfaces as
:class:`RecoveryError` -- the orchestrator re-enters with the union of
failed positions (§5.2), at which point the source walk skips the new
corpse.  Phase hooks let the chaos subsystem (`repro.chaos`) inject
failures at precisely the nastiest instants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..net.retry import DEFAULT_RETRY_POLICY, RetryPolicy, reliable_call
from ..sim import AllOf, CancelledError, Interrupt
from .chain import FTCChain
from .replica import Replica

__all__ = ["RecoveryReport", "recover_positions", "RecoveryError",
           "UnrecoverableError", "RECOVERY_PHASES"]

#: Phase-hook names, in firing order.
RECOVERY_PHASES = ("initializing", "spawned", "fetching", "fetched",
                   "rerouting", "committed")

#: Optional observer called as ``hooks(phase, positions)`` at each phase.
RecoveryHooks = Callable[[str, List[int]], None]


class UnrecoverableError(Exception):
    """More than f members of some replication group are gone."""


class RecoveryError(Exception):
    """A recovery attempt failed mid-flight (e.g. a fetch source died
    after source selection).  The chain is untouched -- the caller may
    re-enter ``recover_positions`` with an updated failed set."""


@dataclass
class RecoveryReport:
    """Timing breakdown of one recovery operation (Fig 13's metrics)."""

    positions: List[int]
    initialization_s: float = 0.0
    state_recovery_s: float = 0.0
    rerouting_s: float = 0.0
    bytes_transferred: int = 0
    fetches: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Control-plane retries performed by the state fetches.
    control_retries: int = 0

    @property
    def total_s(self) -> float:
        return self.initialization_s + self.state_recovery_s + self.rerouting_s


def _alive_source(chain: FTCChain, mbox_index: int, position: int,
                  failed: set) -> Optional[int]:
    """Pick the recovery source position for one replication group."""
    group = chain.group_positions(mbox_index)
    where = group.index(position)
    if where == 0:
        # Failed head: walk successors (closest first).
        candidates = group[1:]
    else:
        # Failed middle/tail: walk predecessors back toward the head.
        candidates = list(reversed(group[:where])) + group[where + 1:]
    for candidate in candidates:
        if candidate not in failed and not chain.server_at(candidate).failed:
            return candidate
    return None


def _fire(hooks: Optional[RecoveryHooks], phase: str,
          positions: List[int]) -> None:
    if hooks is not None:
        hooks(phase, list(positions))


def recover_positions(chain: FTCChain, positions: List[int],
                      init_delay_s: float = 1e-3,
                      reroute_delay_s: float = 0.5e-3,
                      retry_policy: Optional[RetryPolicy] = None,
                      hooks: Optional[RecoveryHooks] = None,
                      epoch: Optional[int] = None,
                      journal: Optional[Callable] = None):
    """Generator (run as a sim process): §5.2 recovery.

    Returns a :class:`RecoveryReport`.  ``init_delay_s`` models the
    orchestrator-to-region latency of spawning instances (Fig 13's
    initialization delay); ``reroute_delay_s`` the flow-rule update.

    Raises :class:`UnrecoverableError` when some replication group has
    no alive member left, and :class:`RecoveryError` when a state fetch
    exhausts its retries.  On any exit before the rerouting commit --
    exception or interrupt -- frozen sources are thawed and the
    half-spawned replicas are released, leaving the chain exactly as it
    was.

    Under a replicated control plane (PROTOCOL.md §9) the caller passes
    ``epoch`` and ``journal``: the journal generator is invoked --
    write-ahead, before the side effect -- at the ``spawn`` and
    ``re-steer`` steps, replicating the command to a quorum and fencing
    it by epoch.  A :class:`~repro.core.fencing.StaleEpochError` it
    raises aborts the attempt through the same exception-safe unwind,
    and the chain's :class:`~repro.core.fencing.EpochGate` records each
    committed re-steer so double recovery is auditable.  Both default
    to ``None``: an unreplicated orchestrator pays nothing.
    """
    sim = chain.sim
    gate = chain.gate
    policy = retry_policy or DEFAULT_RETRY_POLICY
    rng = chain.streams.stream("recovery-backoff")
    report = RecoveryReport(positions=list(positions))
    failed = set(positions)
    started = sim.now
    flight = chain.telemetry.flight

    def flight_phase(phase: str) -> None:
        # Recorded at the same virtual instant as the `_fire` that puts
        # the phase boundary into the RecoveryTimeline, so `repro
        # explain --recovery` can cross-check the two records for exact
        # timestamp equality.
        if flight.enabled:
            flight.record("recovery", phase, t=sim.now, epoch=epoch,
                          detail=f"positions={list(positions)}",
                          chain="ctrl")

    frozen: List = []
    fetch_procs: List = []
    new_servers: Dict[int, object] = {}
    committed = False
    try:
        # -- step 1: initialization ----------------------------------------------
        _fire(hooks, "initializing", positions)
        flight_phase("initializing")
        yield sim.timeout(init_delay_s)

        if journal is not None:
            # Write-ahead: the spawn command reaches a quorum (and the
            # epoch fence) before any instance exists.
            yield from journal("spawn", list(positions))
        new_replicas: Dict[int, Replica] = {}
        for position in positions:
            server = chain._new_server(position)
            middlebox = (chain.middleboxes[position]
                         if position < chain.n_mboxes else None)
            new_servers[position] = server
            new_replicas[position] = Replica(sim, chain, position, server,
                                             middlebox, costs=chain.costs,
                                             streams=chain.streams,
                                             use_htm=chain.use_htm)
        # Measured at the `spawned` boundary so it covers the journal
        # round trip too: the timeline's initialization span (spawned -
        # initializing) and this figure must agree exactly, and under a
        # replicated control plane the write-ahead quorum *is* part of
        # the initialization critical path.
        report.initialization_s = sim.now - started
        _fire(hooks, "spawned", positions)
        flight_phase("spawned")

        # -- step 2: state recovery (parallel fetches per group) ---------------------
        # Plan all sources first so an unrecoverable group surfaces
        # before anything is frozen or transferred.
        plans: List[Tuple[int, int, str, int]] = []
        for position in positions:
            for mbox_index, mbox_name in chain.member_mboxes(position):
                source_pos = _alive_source(chain, mbox_index, position, failed)
                if source_pos is None:
                    raise UnrecoverableError(
                        f"no alive replica left for middlebox {mbox_name!r}")
                plans.append((position, mbox_index, mbox_name, source_pos))

        fetch_started = sim.now
        for position, mbox_index, mbox_name, source_pos in plans:
            replica = new_replicas[position]
            source_state = chain.replica_at(source_pos).states[mbox_name]
            source_state.freeze()
            frozen.append(source_state)

            size = (source_state.store.state_bytes() +
                    sum(log.byte_size(chain.costs)
                        for log in source_state.retained))
            report.bytes_transferred += size
            report.fetches.append((mbox_name, source_pos, size))
            if flight.enabled:
                flight.record(
                    "recovery", "fetch-source", t=sim.now, epoch=epoch,
                    detail=f"{mbox_name} for p{position} from "
                           f"p{source_pos} {size}B "
                           f"positions={list(positions)}",
                    chain="ctrl")

            def fetch_one(source_state=source_state, replica=replica,
                          mbox_name=mbox_name, position=position,
                          mbox_index=mbox_index, size=size,
                          source_pos=source_pos):
                # §6: the control module opens a reliable TCP connection
                # per replication group, sends a fetch request, and
                # waits for the state -- a connect round trip plus a
                # request/response round trip, each under the retry
                # policy so a lost message or a dead source costs
                # bounded time.
                try:
                    connect = yield from reliable_call(
                        chain.net, new_servers[position].name,
                        chain.route[source_pos], lambda: True,
                        policy=policy, payload_bytes=64, response_bytes=64,
                        rng=rng)
                    report.control_retries += connect.retries
                    if not connect.ok:
                        raise RecoveryError(
                            f"connect to {mbox_name!r} source at position "
                            f"{source_pos} timed out")
                    response = yield from reliable_call(
                        chain.net, new_servers[position].name,
                        chain.route[source_pos], source_state.export_state,
                        policy=policy, payload_bytes=64,
                        response_bytes=max(size, 64), rng=rng)
                    report.control_retries += response.retries
                    if not response.ok:
                        raise RecoveryError(
                            f"state fetch of {mbox_name!r} from position "
                            f"{source_pos} timed out")
                    contents, max_vector, retained = response.value
                    state = replica.states[mbox_name]
                    state.import_state(contents, max_vector, retained)
                    if replica.runtime is not None and mbox_index == position:
                        # §5.2: restore the failed head's dependency matrix
                        # by setting each row to the retrieved MAX.
                        replica.runtime.depvec.load(max_vector)
                except (Interrupt, CancelledError):
                    return  # recovery aborted; the next attempt refetches

            fetch_procs.append(sim.process(fetch_one()))

        _fire(hooks, "fetching", positions)
        flight_phase("fetching")
        yield AllOf(sim, fetch_procs)
        report.state_recovery_s = sim.now - fetch_started
        _fire(hooks, "fetched", positions)
        flight_phase("fetched")

        # -- step 3: rerouting (single update after all confirmations, §5.2) ---------
        reroute_started = sim.now
        _fire(hooks, "rerouting", positions)
        flight_phase("rerouting")
        if journal is not None:
            # Write-ahead: journal the re-steer *before* the route
            # mutates, so a leader that dies inside the commit loop
            # leaves a journal a successor can resume from.
            yield from journal("re-steer", list(positions))
        yield sim.timeout(reroute_delay_s)
        if gate is not None:
            # Chain-side fencing, applied atomically before any route
            # mutation: a stale epoch unwinds the whole attempt (thaw +
            # release) instead of half-committing.  Each record names
            # the exact instance replaced, making double recovery (two
            # epochs both re-steering one server) auditable.
            for position in positions:
                gate.apply(epoch, "re-steer", [position],
                           detail=f"replace {chain.route[position]} with "
                                  f"{new_servers[position].name}")
        committed = True
        for position in positions:
            # Fence the old instance: a falsely-suspected (still alive)
            # server must stop processing before traffic moves, or its
            # workers would keep mutating state outside the group.
            if not chain.server_at(position).failed:
                chain.fail_position(position)
            old_name = chain.route[position]
            chain.route[position] = new_servers[position].name
            chain.replicas[position] = new_replicas[position]
            if position > 0:
                chain.net.connect(chain.route[position - 1], chain.route[position])
            if position < chain.n_positions - 1:
                chain.net.connect(chain.route[position], chain.route[position + 1])
            new_replicas[position].start()
            # Publish the re-steer: observers (the orchestrator's
            # monitored set) refresh, and any reconfiguration hold a
            # crash orphaned on this position flushes.
            chain.note_route_change(position, old_name,
                                    new_servers[position].name)
        report.rerouting_s = sim.now - reroute_started
        _fire(hooks, "committed", positions)
        flight_phase("committed")
        return report
    finally:
        # Always thaw sources -- a fetch failure or an abort must not
        # leave them frozen forever (they stop applying logs entirely).
        for state in frozen:
            state.thaw()
        if not committed:
            for proc in fetch_procs:
                if proc.is_alive:
                    proc.interrupt("recovery aborted")
            for server in new_servers.values():
                server.fail()  # release the half-spawned instance
