"""Failure recovery (§4.1, §5.2).

Recovery of a failed replica runs in three steps: initialization
(spawning a new replica at the failure position), state recovery
(fetching each replication group's state from an alive member), and
rerouting (steering traffic through the new replica).

Source selection follows the log propagation invariant: a failed
*head* recovers from its immediate successor (the successor's state is
the same or prior, and everything released went through it); any other
member recovers from its immediate predecessor.  With multiple
failures the walk continues to the nearest alive member, and the
orchestrator performs a single rerouting only after every new replica
has confirmed recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim import AllOf
from .chain import FTCChain
from .replica import Replica

__all__ = ["RecoveryReport", "recover_positions", "UnrecoverableError"]


class UnrecoverableError(Exception):
    """More than f members of some replication group are gone."""


@dataclass
class RecoveryReport:
    """Timing breakdown of one recovery operation (Fig 13's metrics)."""

    positions: List[int]
    initialization_s: float = 0.0
    state_recovery_s: float = 0.0
    rerouting_s: float = 0.0
    bytes_transferred: int = 0
    fetches: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def total_s(self) -> float:
        return self.initialization_s + self.state_recovery_s + self.rerouting_s


def _alive_source(chain: FTCChain, mbox_index: int, position: int,
                  failed: set) -> Optional[int]:
    """Pick the recovery source position for one replication group."""
    group = chain.group_positions(mbox_index)
    where = group.index(position)
    if where == 0:
        # Failed head: walk successors (closest first).
        candidates = group[1:]
    else:
        # Failed middle/tail: walk predecessors back toward the head.
        candidates = list(reversed(group[:where])) + group[where + 1:]
    for candidate in candidates:
        if candidate not in failed and not chain.server_at(candidate).failed:
            return candidate
    return None


def recover_positions(chain: FTCChain, positions: List[int],
                      init_delay_s: float = 1e-3,
                      reroute_delay_s: float = 0.5e-3):
    """Generator (run as a sim process): §5.2 recovery.

    Returns a :class:`RecoveryReport`.  ``init_delay_s`` models the
    orchestrator-to-region latency of spawning instances (Fig 13's
    initialization delay); ``reroute_delay_s`` the flow-rule update.
    """
    sim = chain.sim
    report = RecoveryReport(positions=list(positions))
    failed = set(positions)
    started = sim.now

    # -- step 1: initialization -------------------------------------------------
    yield sim.timeout(init_delay_s)
    report.initialization_s = sim.now - started

    new_replicas: Dict[int, Replica] = {}
    new_servers: Dict[int, object] = {}
    for position in positions:
        server = chain._new_server(position)
        middlebox = (chain.middleboxes[position]
                     if position < chain.n_mboxes else None)
        new_servers[position] = server
        new_replicas[position] = Replica(sim, chain, position, server,
                                         middlebox, costs=chain.costs,
                                         streams=chain.streams,
                                         use_htm=chain.use_htm)

    # -- step 2: state recovery (parallel fetches per group) ---------------------
    fetch_started = sim.now
    frozen: List = []
    fetch_events = []
    for position in positions:
        replica = new_replicas[position]
        for mbox_index, mbox_name in chain.member_mboxes(position):
            source_pos = _alive_source(chain, mbox_index, position, failed)
            if source_pos is None:
                raise UnrecoverableError(
                    f"no alive replica left for middlebox {mbox_name!r}")
            source_state = chain.replica_at(source_pos).states[mbox_name]
            source_state.freeze()
            frozen.append(source_state)

            size = (source_state.store.state_bytes() +
                    sum(log.byte_size(chain.costs)
                        for log in source_state.retained))
            report.bytes_transferred += size
            report.fetches.append((mbox_name, source_pos, size))

            def fetch_one(source_state=source_state, replica=replica,
                          mbox_name=mbox_name, position=position,
                          mbox_index=mbox_index, size=size,
                          source_pos=source_pos):
                # §6: the control module opens a reliable TCP connection
                # per replication group, sends a fetch request, and
                # waits for the state -- a connect round trip plus a
                # request/response round trip.
                yield chain.net.control_call(
                    new_servers[position].name, chain.route[source_pos],
                    lambda: True, payload_bytes=64, response_bytes=64)
                contents, max_vector, retained = yield chain.net.control_call(
                    new_servers[position].name, chain.route[source_pos],
                    source_state.export_state, response_bytes=max(size, 64))
                state = replica.states[mbox_name]
                state.import_state(contents, max_vector, retained)
                if replica.runtime is not None and mbox_index == position:
                    # §5.2: restore the failed head's dependency matrix
                    # by setting each row to the retrieved MAX.
                    replica.runtime.depvec.load(max_vector)

            fetch_events.append(sim.process(fetch_one()))

    yield AllOf(sim, fetch_events)
    report.state_recovery_s = sim.now - fetch_started

    # -- step 3: rerouting (single update after all confirmations, §5.2) ---------
    reroute_started = sim.now
    yield sim.timeout(reroute_delay_s)
    for position in positions:
        chain.route[position] = new_servers[position].name
        chain.replicas[position] = new_replicas[position]
        if position > 0:
            chain.net.connect(chain.route[position - 1], chain.route[position])
        if position < chain.n_positions - 1:
            chain.net.connect(chain.route[position], chain.route[position + 1])
        new_replicas[position].start()
    for state in frozen:
        state.thaw()
    report.rerouting_s = sim.now - reroute_started
    return report
