"""Data dependency vectors and ordered replication (§4.3).

The head tracks, per state partition, how many transactions have
touched it.  A transaction's piggyback log carries the *pre-increment*
sequence number of every partition it accessed ("don't care" for the
rest), defining a partial order.  A replica may apply a log as soon as
its own MAX vector matches the log's entries exactly -- logs over
disjoint partitions commute, which is what lets replicas replicate
concurrently.

:class:`ReplicationState` is one replica's view of one middlebox: the
state store, the MAX vector, a hold-back queue for out-of-order logs,
and a retained-log buffer for retransmission until commit vectors
prune it.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..stm.store import StateStore
from ..telemetry.registry import NULL_COUNTER, NULL_GAUGE
from .piggyback import CommitVector, PiggybackLog

__all__ = ["DependencyVector", "ReplicationState", "ProtocolError"]


class ProtocolError(Exception):
    """An invariant of the replication protocol was violated."""


class DependencyVector:
    """The head's per-partition transaction counter."""

    __slots__ = ("seq",)

    def __init__(self, n_partitions: int):
        self.seq: List[int] = [0] * n_partitions

    @property
    def n_partitions(self) -> int:
        return len(self.seq)

    def stamp(self, partitions: Iterable[int]) -> Dict[int, int]:
        """Record a transaction touching ``partitions``.

        Returns the sparse dependency vector (pre-increment values) to
        piggyback, and increments the touched entries -- callers must
        invoke this under the transaction's partition locks, which is
        how the head serializes vector accesses (§4.3).
        """
        vec = {p: self.seq[p] for p in partitions}
        for p in partitions:
            self.seq[p] += 1
        return vec

    def snapshot(self) -> Dict[int, int]:
        return {p: s for p, s in enumerate(self.seq) if s}

    def load(self, entries: Dict[int, int]) -> None:
        self.seq = [0] * len(self.seq)
        for partition, seq in entries.items():
            self.seq[partition] = seq

    def __repr__(self):
        return f"<DepVec {self.seq}>"


class ReplicationState:
    """One replica's replication machinery for one middlebox."""

    def __init__(self, mbox: str, n_partitions: int,
                 store: Optional[StateStore] = None, telemetry=None):
        self.mbox = mbox
        self.n_partitions = n_partitions
        self.store = store or StateStore(mbox)
        self.max: Dict[int, int] = {}        # partition -> applied count
        self.pending: List[PiggybackLog] = []
        self.retained: List[PiggybackLog] = []
        self.commit_floor: Dict[int, int] = {}
        self.applied = 0
        self.duplicates = 0
        self.frozen = False
        #: Telemetry instruments (shared across every replica of this
        #: middlebox: the counters aggregate chain-wide).
        if telemetry is not None:
            registry = telemetry.registry
            self._m_applied = registry.counter(f"repl/{mbox}/logs_applied")
            self._m_pruned = registry.counter(f"repl/{mbox}/logs_pruned")
            self._m_duplicates = registry.counter(f"repl/{mbox}/duplicates")
            self._m_commit_lag = registry.gauge(f"repl/{mbox}/commit_lag")
        else:
            self._m_applied = NULL_COUNTER
            self._m_pruned = NULL_COUNTER
            self._m_duplicates = NULL_COUNTER
            self._m_commit_lag = NULL_GAUGE

    # -- classification -------------------------------------------------------

    def _status(self, log: PiggybackLog) -> str:
        newer = older = exact = 0
        for partition, seq in log.depvec.items():
            current = self.max.get(partition, 0)
            if seq > current:
                newer += 1
            elif seq < current:
                older += 1
            else:
                exact += 1
        if older and (newer or exact):
            # An applied log's entries are all behind MAX; mixing
            # behind/ahead means sequence numbers were corrupted.
            raise ProtocolError(
                f"log {log!r} partially applied at {self.mbox}: MAX={self.max}")
        if newer:
            return "pending"
        if older:
            return "duplicate"
        return "ready"

    # -- ingestion ---------------------------------------------------------------

    def offer(self, log: PiggybackLog, now: float = 0.0) -> int:
        """Ingest one log; returns how many logs were applied (0+).

        Out-of-order logs are held back (stamped with ``now`` so the
        retransmission watchdog can age them); applying one log may
        unblock held ones, so the return value can exceed 1.
        """
        if self.frozen:
            return 0
        if log.is_noop:
            return 0
        status = self._status(log)
        if status == "duplicate":
            self.duplicates += 1
            self._m_duplicates.inc()
            return 0
        if status == "pending":
            log._held_at = now
            self.pending.append(log)
            return 0
        self._apply(log)
        return 1 + self._drain_pending()

    def offer_all(self, logs: Iterable[PiggybackLog], now: float = 0.0) -> int:
        return sum(self.offer(log, now) for log in logs)

    def _apply(self, log: PiggybackLog) -> None:
        self.store.apply_many(log.updates)
        for partition in log.depvec:
            self.max[partition] = self.max.get(partition, 0) + 1
        self.retained.append(log)
        self.applied += 1
        self._m_applied.inc()

    def record_local(self, log: PiggybackLog) -> None:
        """Register a log the co-located head just originated.

        The head's store was already updated by the packet transaction;
        only the MAX vector and the retransmission buffer need to move.
        """
        if log.is_noop:
            return
        for partition, seq in log.depvec.items():
            expected = self.max.get(partition, 0)
            if seq != expected:
                raise ProtocolError(
                    f"head log out of order on partition {partition}: "
                    f"stamped {seq}, expected {expected}")
            self.max[partition] = expected + 1
        self.retained.append(log)
        self.applied += 1
        self._m_applied.inc()

    def _drain_pending(self) -> int:
        applied = 0
        progress = True
        while progress:
            progress = False
            for log in list(self.pending):
                status = self._status(log)
                if status == "ready":
                    self.pending.remove(log)
                    self._apply(log)
                    applied += 1
                    progress = True
                elif status == "duplicate":
                    self.pending.remove(log)
                    self.duplicates += 1
                    self._m_duplicates.inc()
        return applied

    # -- commit vectors / pruning --------------------------------------------------

    def commit_vector(self, last_sent: Optional[Dict[int, int]] = None) -> CommitVector:
        """The tail's announcement; deltas only when ``last_sent`` given."""
        if last_sent is None:
            entries = dict(self.max)
        else:
            entries = {p: s for p, s in self.max.items()
                       if s != last_sent.get(p)}
        return CommitVector(self.mbox, entries)

    def absorb_commit(self, commit: CommitVector) -> None:
        """Merge a commit vector and prune replicated retained logs."""
        if commit.mbox != self.mbox:
            raise ProtocolError(
                f"commit for {commit.mbox} offered to {self.mbox}")
        commit.merge_into(self.commit_floor)
        floor = self.commit_floor
        before = len(self.retained)
        self.retained = [
            log for log in self.retained
            if not all(seq + 1 <= floor.get(partition, 0)
                       for partition, seq in log.depvec.items())
        ]
        if before != len(self.retained):
            self._m_pruned.inc(before - len(self.retained))
        self._m_commit_lag.set(len(self.retained))

    def unpruned_logs(self) -> List[PiggybackLog]:
        """Retained logs a successor might be missing (retransmission)."""
        return list(self.retained)

    # -- recovery --------------------------------------------------------------

    def freeze(self) -> None:
        """Stop admitting logs and discard out-of-order holds (§4.1).

        Called on the replica chosen as the source for state recovery,
        so the log propagation invariant holds during the transfer.
        """
        self.frozen = True
        self.pending.clear()

    def thaw(self) -> None:
        self.frozen = False

    def export_state(self) -> Tuple[Dict[Hashable, object], Dict[int, int],
                                    List[PiggybackLog]]:
        """(store contents, MAX vector, retained logs) for a new replica."""
        return self.store.snapshot(), dict(self.max), list(self.retained)

    def import_state(self, contents, max_vector, retained) -> None:
        self.store.load(contents)
        self.max = dict(max_vector)
        self.retained = list(retained)
        self.pending.clear()

    def __repr__(self):
        return (f"<ReplState {self.mbox} applied={self.applied} "
                f"pending={len(self.pending)} retained={len(self.retained)}>")
