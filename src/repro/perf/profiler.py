"""Per-stage cost attribution for the hot path (PROTOCOL.md §13).

The data plane is a Python object dance: every simulated packet pays
for engine event dispatch, an STM commit, dependency-vector merges,
piggyback append/trim, channel framing, buffer hold/release, and an
admission check.  Before any of that can be vectorized (ROADMAP item
1), the cost has to be *attributed*: this module provides the
:class:`StageProfiler` that the hot-path components report into, and
the exporters that turn its aggregates into a flame graph.

Design constraints, in order:

1. **Zero perturbation.**  The profiler reads only the wall clock
   (``time.perf_counter``); it never touches the simulation clock, an
   RNG stream, or any packet -- so a *profiled* run produces the same
   virtual-time results as an unprofiled one, and per-stage *call
   counts* are seed-deterministic even though wall seconds are not.
2. **Zero overhead when off.**  Every hook site holds
   :data:`NULL_PROFILER` (or ``None`` in the engine) by default; the
   disabled path is one no-op method call (the same pattern as
   ``NULL_TELEMETRY``), and fig5/fig13 stay byte-identical.
3. **Flat recording, hierarchical reporting.**  Hooks record into flat
   per-stage accumulators (two clock reads per instrumented segment);
   the known nesting of stages (everything runs inside an engine
   dispatch; the buffer's release scan runs inside its hold handling)
   is encoded once in :data:`STAGE_TREE` and applied at export time,
   so collapsed-stack / speedscope output shows exclusive self-time
   without any per-call stack bookkeeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

__all__ = [
    "STAGES",
    "STAGE_TREE",
    "StageProfiler",
    "NULL_PROFILER",
    "NullProfiler",
    "collapsed_lines",
    "speedscope_doc",
    "exclusive_seconds",
]

#: The stage taxonomy (PROTOCOL.md §13.1).  Every instrumented segment
#: of the per-packet pipeline reports under exactly one of these names.
STAGES = (
    "engine/dispatch",    # Simulator.step callback execution (the root)
    "admission/check",    # AdmissionControl.offer: bus level + token take
    "piggyback/append",   # Forwarder.attach: fed-back logs onto packets
    "depvec/merge",       # ReplicationState.offer walk at each replica
    "piggyback/trim",     # commit-vector absorb + retained-log pruning
    "stm/commit",         # transaction commit: apply writes + unlock
    "channel/frame",      # ReliableChannel send/receive framing
    "channel/ack",        # cumulative-ACK processing + window refill
    "buffer/hold",        # Buffer.handle: dedup, commits, release gating
    "buffer/release",     # the FIFO held-prefix scan + delivery
)

#: stage -> parent stage.  Measured intervals of a child are contained
#: in the parent's measured intervals; exports subtract children to get
#: self-time.  Stages absent here are children of the synthetic root.
STAGE_TREE: Dict[str, Optional[str]] = {
    "engine/dispatch": None,
    "admission/check": "engine/dispatch",
    "piggyback/append": "engine/dispatch",
    "depvec/merge": "engine/dispatch",
    "piggyback/trim": "engine/dispatch",
    "stm/commit": "engine/dispatch",
    "channel/frame": "engine/dispatch",
    "channel/ack": "engine/dispatch",
    "buffer/hold": "engine/dispatch",
    "buffer/release": "buffer/hold",
}


class StageProfiler:
    """Flat per-stage wall-time + call-count accumulators.

    The two-call protocol keeps hook sites branch-free::

        t0 = profiler.t0()
        ...  # the instrumented segment
        profiler.add("stm/commit", t0)

    ``clock`` is injectable for tests (a fake monotonic counter makes
    the seconds deterministic too).
    """

    __slots__ = ("_clock", "calls", "seconds")

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None):
        self._clock = clock if clock is not None else time.perf_counter
        self.calls: Dict[str, int] = {}
        self.seconds: Dict[str, float] = {}

    # -- recording (the hot-path API) ----------------------------------------

    def t0(self) -> float:
        return self._clock()

    def add(self, stage: str, t0: float, n: int = 1) -> None:
        """Close a segment opened at ``t0`` and attribute it to ``stage``."""
        dt = self._clock() - t0
        self.seconds[stage] = self.seconds.get(stage, 0.0) + dt
        self.calls[stage] = self.calls.get(stage, 0) + n

    def count(self, stage: str, n: int = 1) -> None:
        """Attribute ``n`` calls with no wall time (pure event counts)."""
        self.calls[stage] = self.calls.get(stage, 0) + n

    # -- reporting ------------------------------------------------------------

    def wall_s(self, stage: str) -> float:
        return self.seconds.get(stage, 0.0)

    def report(self, packets: int = 0) -> Dict[str, Dict[str, float]]:
        """Per-stage {calls, wall_s[, us_per_packet, calls_per_packet]}.

        Stages are reported in taxonomy order (unknown stages sorted at
        the end) so two same-seed reports are directly diffable.
        """
        known = [s for s in STAGES if s in self.calls or s in self.seconds]
        extra = sorted((set(self.calls) | set(self.seconds)) - set(STAGES))
        out: Dict[str, Dict[str, float]] = {}
        for stage in known + extra:
            entry: Dict[str, float] = {
                "calls": self.calls.get(stage, 0),
                "wall_s": round(self.seconds.get(stage, 0.0), 6),
            }
            if packets > 0:
                entry["us_per_packet"] = round(
                    self.seconds.get(stage, 0.0) * 1e6 / packets, 4)
                entry["calls_per_packet"] = round(
                    self.calls.get(stage, 0) / packets, 4)
            out[stage] = entry
        return out

    def publish(self, registry, packets: int = 0) -> None:
        """Mirror the aggregates into a :class:`MetricRegistry`.

        Counters carry call counts; gauges carry wall microseconds and
        (when ``packets`` is known) the per-packet amortized cost.
        """
        for stage, entry in self.report(packets=packets).items():
            registry.counter(f"perf/{stage}/calls").inc(int(entry["calls"]))
            registry.gauge(f"perf/{stage}/wall_us").set(
                entry["wall_s"] * 1e6)
            if packets > 0:
                registry.gauge(f"perf/{stage}/us_per_packet").set(
                    entry["us_per_packet"])

    def merge(self, other: "StageProfiler") -> None:
        """Fold another profiler's aggregates into this one."""
        for stage, n in other.calls.items():
            self.calls[stage] = self.calls.get(stage, 0) + n
        for stage, s in other.seconds.items():
            self.seconds[stage] = self.seconds.get(stage, 0.0) + s

    def __repr__(self):
        total = sum(self.seconds.values())
        return (f"<StageProfiler stages={len(self.calls)} "
                f"wall={total * 1e3:.1f}ms>")


class NullProfiler:
    """Profiling disabled: every hook is a no-op on a shared singleton."""

    __slots__ = ()

    enabled = False
    calls: Dict[str, int] = {}
    seconds: Dict[str, float] = {}

    def t0(self) -> float:
        return 0.0

    def add(self, stage: str, t0: float, n: int = 1) -> None:
        pass

    def count(self, stage: str, n: int = 1) -> None:
        pass

    def wall_s(self, stage: str) -> float:
        return 0.0

    def report(self, packets: int = 0) -> Dict[str, Dict[str, float]]:
        return {}

    def publish(self, registry, packets: int = 0) -> None:
        pass


NULL_PROFILER = NullProfiler()


# -- flame exports ------------------------------------------------------------

def _seconds_of(stages: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    return {name: float(entry.get("wall_s", 0.0))
            for name, entry in stages.items()}


def exclusive_seconds(stages: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Self-time per stage: measured time minus instrumented children.

    Input is a :meth:`StageProfiler.report`-shaped mapping.  Clock
    noise can make a parent's measured total marginally smaller than
    the sum of its children; self-time is clamped at zero.
    """
    inclusive = _seconds_of(stages)
    child_sum: Dict[str, float] = {}
    for stage, seconds in inclusive.items():
        parent = STAGE_TREE.get(stage, "engine/dispatch")
        if parent is not None and parent in inclusive:
            child_sum[parent] = child_sum.get(parent, 0.0) + seconds
    return {stage: max(0.0, seconds - child_sum.get(stage, 0.0))
            for stage, seconds in inclusive.items()}


def _stack_of(stage: str, stages: Dict[str, Dict[str, float]]) -> List[str]:
    """Root-first ancestor chain of a stage within the report."""
    stack = [stage]
    seen = {stage}
    parent = STAGE_TREE.get(stage, "engine/dispatch")
    while parent is not None and parent in stages and parent not in seen:
        stack.append(parent)
        seen.add(parent)
        parent = STAGE_TREE.get(parent, "engine/dispatch")
    return list(reversed(stack))


def collapsed_lines(stages: Dict[str, Dict[str, float]]) -> List[str]:
    """Brendan-Gregg collapsed-stack lines (value = self-µs, integer).

    Feed to any ``flamegraph.pl``-compatible renderer.  Zero-valued
    frames are kept when they have calls, so a stage that executed but
    measured below clock resolution still appears.
    """
    self_time = exclusive_seconds(stages)
    lines = []
    for stage in stages:
        micros = int(round(self_time.get(stage, 0.0) * 1e6))
        stack = ";".join(_stack_of(stage, stages))
        lines.append(f"{stack} {micros}")
    return lines


def speedscope_doc(stages: Dict[str, Dict[str, float]],
                   name: str = "repro.perf") -> Dict:
    """A speedscope (https://speedscope.app) sampled-profile document.

    Each stage contributes one weighted sample whose stack is its
    ancestor chain; weights are self-time in microseconds.
    """
    frames = [{"name": stage} for stage in stages]
    index = {stage: i for i, stage in enumerate(stages)}
    self_time = exclusive_seconds(stages)
    samples: List[List[int]] = []
    weights: List[float] = []
    for stage in stages:
        weight = self_time.get(stage, 0.0) * 1e6
        samples.append([index[s] for s in _stack_of(stage, stages)])
        weights.append(round(weight, 3))
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "exporter": "repro.perf",
        "name": name,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": name,
            "unit": "microseconds",
            "startValue": 0,
            "endValue": round(sum(weights), 3),
            "samples": samples,
            "weights": weights,
        }],
    }
