"""The ``repro perf`` subcommand family (PROTOCOL.md §13).

* ``repro perf bench``    -- run the scenario suite, write BENCH_*.json
* ``repro perf compare``  -- regression gate: current dir vs baselines
* ``repro perf profile``  -- one scenario with full attribution: stage
  table, Chrome trace with counter tracks, collapsed + speedscope flames
* ``repro perf flame``    -- re-export a BENCH report's stage breakdown
  as a flame graph (no simulation run)

Only ``add_perf_parser`` / ``cmd_perf`` are imported by the top-level
CLI; everything that pulls in the simulator is imported inside the
handler that needs it, so ``repro perf compare`` stays stdlib-light.
"""

from __future__ import annotations

import json
import os
import sys

__all__ = ["add_perf_parser", "cmd_perf"]

#: Kept in sync with repro.perf.scenarios.SCENARIOS (tested); listing
#: them statically lets argparse validate without importing the sim.
SCENARIO_CHOICES = (
    "baseline",
    "reliable-links",
    "lossy",
    "ctrlplane-failover",
    "reconfig-under-traffic",
    "overload",
)


def add_perf_parser(sub) -> None:
    """Register the ``perf`` subparser on the top-level subparsers."""
    perf = sub.add_parser(
        "perf", help="per-stage cost attribution and the benchmark suite")
    psub = perf.add_subparsers(dest="perf_command", required=True)

    bench = psub.add_parser(
        "bench", help="run the scenario benchmark suite")
    bench.add_argument("--scenario", action="append", default=None,
                       choices=SCENARIO_CHOICES, metavar="NAME",
                       help="run only NAME (repeatable; default: all)")
    bench.add_argument("--all", action="store_true",
                       help="run every scenario (the default when no "
                            "--scenario is given)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--quick", action="store_true",
                       help="shorter virtual duration (CI mode)")
    bench.add_argument("--out-dir", default=None, metavar="DIR",
                       help="write BENCH_<scenario>.json files here")

    compare = psub.add_parser(
        "compare", help="gate current BENCH reports against baselines")
    compare.add_argument("--baseline-dir", required=True, metavar="DIR")
    compare.add_argument("--current-dir", required=True, metavar="DIR")
    compare.add_argument("--tolerance", type=float, default=None,
                         help="relative headline slowdown tolerated "
                              "(default: repro.perf.DEFAULT_TOLERANCE)")
    compare.add_argument("--markdown", default=None, metavar="PATH",
                         help="also write the gate table as markdown "
                              "(e.g. $GITHUB_STEP_SUMMARY)")

    profile = psub.add_parser(
        "profile", help="run one scenario with full attribution")
    profile.add_argument("scenario", choices=SCENARIO_CHOICES)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--quick", action="store_true")
    profile.add_argument("--out-prefix", default=None, metavar="PREFIX",
                         help="write PREFIX.trace.json, PREFIX.collapsed "
                              "and PREFIX.speedscope.json")

    flame = psub.add_parser(
        "flame", help="re-export a BENCH report as a flame graph")
    flame.add_argument("report", metavar="BENCH_JSON",
                       help="a BENCH_<scenario>.json file")
    flame.add_argument("--format", choices=("collapsed", "speedscope"),
                       default="collapsed")
    flame.add_argument("--out", default=None, metavar="PATH",
                       help="output file (default: stdout)")


def cmd_perf(args) -> int:
    handler = {
        "bench": _cmd_bench,
        "compare": _cmd_compare,
        "profile": _cmd_profile,
        "flame": _cmd_flame,
    }[args.perf_command]
    return handler(args)


def _cmd_bench(args) -> int:
    from .bench import run_suite
    names = args.scenario  # None -> full suite, same as --all
    run_suite(names, seed=args.seed, quick=args.quick,
              out_dir=args.out_dir)
    return 0


def _cmd_compare(args) -> int:
    from .compare import DEFAULT_TOLERANCE, compare_dirs, render_markdown
    tolerance = (args.tolerance if args.tolerance is not None
                 else DEFAULT_TOLERANCE)
    outcome = compare_dirs(args.baseline_dir, args.current_dir,
                           tolerance=tolerance)
    markdown = render_markdown(outcome)
    print(markdown)
    if args.markdown:
        with open(args.markdown, "a") as handle:
            handle.write(markdown + "\n")
    return 1 if outcome["failed"] else 0


def _cmd_profile(args) -> int:
    from ..telemetry import Telemetry
    from .bench import stage_table
    from .counters import CounterSampler
    from .profiler import StageProfiler, collapsed_lines, speedscope_doc
    from .scenarios import run_scenario

    profiler = StageProfiler()
    telemetry = Telemetry(sample_every=1, max_trace_events=500_000,
                          profiler=profiler)
    samplers = []

    def on_chain(sim, chain):
        samplers.append(CounterSampler(sim, telemetry.tracer, chain))

    result = run_scenario(args.scenario, seed=args.seed, quick=args.quick,
                          profiler=profiler, telemetry=telemetry,
                          on_chain=on_chain)
    packets = result.get("released", 0)
    profiler.publish(telemetry.registry, packets=packets)
    stages = profiler.report(packets=packets)
    report = {"scenario": args.scenario, "results": result,
              "stages": stages}
    print(f"[profile] {args.scenario}: released {packets} "
          f"(offered {result.get('offered', 0)}), "
          f"{samplers[0].samples if samplers else 0} counter samples")
    print(stage_table(report))

    if args.out_prefix:
        trace_path = f"{args.out_prefix}.trace.json"
        telemetry.tracer.export(trace_path)
        collapsed_path = f"{args.out_prefix}.collapsed"
        with open(collapsed_path, "w") as handle:
            handle.write("\n".join(collapsed_lines(stages)) + "\n")
        speedscope_path = f"{args.out_prefix}.speedscope.json"
        with open(speedscope_path, "w") as handle:
            json.dump(speedscope_doc(
                stages, name=f"repro perf profile {args.scenario}"),
                handle, indent=2)
            handle.write("\n")
        for path in (trace_path, collapsed_path, speedscope_path):
            print(f"[profile] wrote {path}")
    return 0


def _cmd_flame(args) -> int:
    from .profiler import collapsed_lines, speedscope_doc
    with open(args.report) as handle:
        report = json.load(handle)
    stages = report.get("stages") or {}
    if not stages:
        print(f"error: {args.report} has no stage breakdown",
              file=sys.stderr)
        return 1
    name = report.get("scenario", os.path.basename(args.report))
    if args.format == "collapsed":
        text = "\n".join(collapsed_lines(stages)) + "\n"
    else:
        text = json.dumps(speedscope_doc(stages, name=name), indent=2) + "\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    return 0
