"""Continuous performance observability (PROTOCOL.md §13).

Three layers, used together by ``repro perf``:

* :mod:`.profiler` -- :class:`StageProfiler` per-stage cost attribution
  for the hot path, with collapsed-stack / speedscope flame exports;
* :mod:`.scenarios` / :mod:`.bench` -- the scenario benchmark suite
  emitting schema-versioned ``BENCH_<scenario>.json`` reports;
* :mod:`.compare` -- the regression gate CI runs against committed
  baselines.

Only the stdlib-leaf modules (profiler, compare) are imported here:
``repro.telemetry`` imports :data:`NULL_PROFILER` from this package, so
anything that pulls in the simulator (scenarios, bench, counters) must
stay lazily imported -- the same leaf-only discipline as
``repro.flight.recorder``.
"""

from .profiler import (
    NULL_PROFILER,
    NullProfiler,
    STAGES,
    STAGE_TREE,
    StageProfiler,
    collapsed_lines,
    exclusive_seconds,
    speedscope_doc,
)
from .compare import (
    DEFAULT_TOLERANCE,
    compare_dirs,
    compare_reports,
    headline_pps,
    load_reports,
    render_markdown,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "NULL_PROFILER",
    "NullProfiler",
    "STAGES",
    "STAGE_TREE",
    "StageProfiler",
    "collapsed_lines",
    "compare_dirs",
    "compare_reports",
    "exclusive_seconds",
    "headline_pps",
    "load_reports",
    "render_markdown",
    "speedscope_doc",
]
