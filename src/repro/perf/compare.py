"""Benchmark regression gate (PROTOCOL.md §13.3).

Compares a directory of current ``BENCH_<scenario>.json`` reports
against committed baselines and decides whether the build regressed.
Pure stdlib on purpose: the CI gate must not import the simulator.

Gate semantics, per scenario:

* scenario present in the baselines but missing from the current run
  -- **failure** (a deleted benchmark hides regressions);
* baseline headline missing or zero -- **warning**, never a failure
  (there is nothing sound to divide by; the new number becomes the
  baseline on the next commit);
* ``current < baseline * (1 - tolerance)`` -- **failure**;
* faster than baseline beyond tolerance -- ``improved`` (informational;
  commit the new baseline so the gate tightens);
* otherwise -- ``ok``.

Per-stage ``us_per_packet`` deltas are annotations, not gates: wall
time per stage is noisy on shared CI runners, but a stage that doubles
while the headline stays flat is exactly the early warning the
ROADMAP's vectorization work needs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

__all__ = [
    "DEFAULT_TOLERANCE",
    "compare_reports",
    "compare_dirs",
    "load_reports",
    "render_markdown",
    "headline_pps",
]

#: Relative slowdown tolerated before the gate fails.  Local
#: like-for-like comparisons use this; CI passes a looser value
#: (runner variance; see PROTOCOL.md §13.3).
DEFAULT_TOLERANCE = 0.15

#: Stage deltas smaller than this (relative) are not worth printing.
_STAGE_NOTE_THRESHOLD = 0.25


def headline_pps(report: Dict) -> float:
    """The gated number: simulated packets per wall-clock second."""
    results = report.get("results", {})
    if isinstance(results, dict):
        return float(results.get("sim_pps_per_wall_s", 0.0) or 0.0)
    return 0.0


def _stage_notes(baseline: Dict, current: Dict) -> List[str]:
    notes = []
    base_stages = baseline.get("stages") or {}
    cur_stages = current.get("stages") or {}
    for stage, cur in cur_stages.items():
        base = base_stages.get(stage)
        if not base:
            continue
        b = float(base.get("us_per_packet", 0.0) or 0.0)
        c = float(cur.get("us_per_packet", 0.0) or 0.0)
        if b <= 0.0:
            continue
        rel = (c - b) / b
        if abs(rel) >= _STAGE_NOTE_THRESHOLD:
            notes.append(f"{stage} {rel:+.0%} ({b:.2f} -> {c:.2f} us/pkt)")
    return notes


def compare_reports(scenario: str, baseline: Optional[Dict],
                    current: Optional[Dict],
                    tolerance: float = DEFAULT_TOLERANCE) -> Dict:
    """One comparison row; ``status`` decides the gate."""
    if current is None:
        return {"scenario": scenario, "status": "missing",
                "baseline_pps": headline_pps(baseline) if baseline else None,
                "current_pps": None, "ratio": None,
                "notes": ["scenario present in baselines but not in "
                          "the current run"]}
    if baseline is None:
        return {"scenario": scenario, "status": "new",
                "baseline_pps": None,
                "current_pps": headline_pps(current), "ratio": None,
                "notes": ["no committed baseline; commit this report"]}
    base_pps = headline_pps(baseline)
    cur_pps = headline_pps(current)
    if base_pps <= 0.0:
        return {"scenario": scenario, "status": "warning",
                "baseline_pps": base_pps, "current_pps": cur_pps,
                "ratio": None,
                "notes": ["baseline headline is zero/absent; cannot gate"]}
    ratio = cur_pps / base_pps
    notes = _stage_notes(baseline, current)
    if ratio < 1.0 - tolerance:
        status = "regression"
        notes.insert(0, f"headline {ratio - 1.0:+.1%} exceeds "
                        f"-{tolerance:.0%} tolerance")
    elif ratio > 1.0 + tolerance:
        status = "improved"
    else:
        status = "ok"
    return {"scenario": scenario, "status": status,
            "baseline_pps": base_pps, "current_pps": cur_pps,
            "ratio": round(ratio, 4), "notes": notes}


def load_reports(directory: str) -> Dict[str, Dict]:
    """scenario -> report for every ``BENCH_*.json`` in ``directory``."""
    reports: Dict[str, Dict] = {}
    if not os.path.isdir(directory):
        return reports
    for entry in sorted(os.listdir(directory)):
        if not (entry.startswith("BENCH_") and entry.endswith(".json")):
            continue
        with open(os.path.join(directory, entry)) as handle:
            report = json.load(handle)
        scenario = report.get("scenario") or entry[len("BENCH_"):-len(".json")]
        reports[scenario] = report
    return reports


def compare_dirs(baseline_dir: str, current_dir: str,
                 tolerance: float = DEFAULT_TOLERANCE) -> Dict:
    """Compare two report directories; ``failed`` gates the build."""
    baselines = load_reports(baseline_dir)
    currents = load_reports(current_dir)
    rows = [compare_reports(s, baselines.get(s), currents.get(s), tolerance)
            for s in sorted(set(baselines) | set(currents))]
    return {
        "tolerance": tolerance,
        "rows": rows,
        "failed": any(r["status"] in ("regression", "missing")
                      for r in rows),
    }


_STATUS_MARKS = {"ok": "✓", "improved": "▲", "new": "＋",
                 "warning": "⚠", "regression": "✗", "missing": "✗"}


def render_markdown(outcome: Dict) -> str:
    """The CI step-summary table for one :func:`compare_dirs` outcome."""
    lines = ["### Perf regression gate",
             "",
             f"tolerance: -{outcome['tolerance']:.0%} on headline "
             "simulated pps / wall s",
             "",
             "| scenario | status | baseline pps | current pps | Δ |"
             " notes |",
             "|---|---|---:|---:|---:|---|"]
    for row in outcome["rows"]:
        mark = _STATUS_MARKS.get(row["status"], "?")
        base = ("-" if row["baseline_pps"] is None
                else f"{row['baseline_pps']:,.0f}")
        cur = ("-" if row["current_pps"] is None
               else f"{row['current_pps']:,.0f}")
        delta = ("-" if row["ratio"] is None
                 else f"{row['ratio'] - 1.0:+.1%}")
        notes = "; ".join(row["notes"]) or "-"
        lines.append(f"| {row['scenario']} | {mark} {row['status']} "
                     f"| {base} | {cur} | {delta} | {notes} |")
    verdict = "**FAILED**" if outcome["failed"] else "passed"
    lines += ["", f"gate {verdict}"]
    return "\n".join(lines)
