"""Scenario bench runner and the ``BENCH_<scenario>.json`` schema (v2).

Schema version 2 (PROTOCOL.md §13.2)::

    {
      "schema_version": 2,
      "benchmark": "perfscope scenario suite",
      "scenario": "<name>",
      "env": {"python": "3.12.1", "platform": "Linux-...-x86_64",
              "git_sha": "<sha or null>", "seed": 0, "quick": false},
      "config": {...scenario knobs...},
      "results": {"offered": N, "released": N, "wall_s": F,
                  "sim_pps_per_wall_s": N, ...scenario extras...},
      "stages": {"<stage>": {"calls": N, "wall_s": F,
                             "us_per_packet": F, "calls_per_packet": F}}
    }

Schema v1 (the original ``BENCH_throughput.json``) had no
``schema_version``, no ``env``, and a ``results`` *list* of modes; the
retrofitted writer in ``benchmarks/bench_throughput.py`` keeps v1's
top-level mode list under v2 metadata so the trajectory of committed
datapoints stays comparable (see the migration note there).

Each scenario runs **twice**: an unprofiled pass whose wall time is
the headline (``sim_pps_per_wall_s``), then a profiled pass for the
per-stage breakdown -- so profiling overhead never pollutes the gated
number.  Both passes use the same seed; virtual-time results are
asserted identical across the two (a free determinism check).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from typing import Dict, Iterable, List, Optional

from .profiler import StageProfiler
from .scenarios import run_scenario, scenario_names

__all__ = [
    "SCHEMA_VERSION",
    "bench_scenario",
    "run_suite",
    "write_report",
    "env_metadata",
    "git_sha",
]

SCHEMA_VERSION = 2


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def env_metadata(seed: int, quick: bool) -> Dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "git_sha": git_sha(),
        "seed": seed,
        "quick": quick,
    }


def bench_scenario(name: str, seed: int = 0, quick: bool = False) -> Dict:
    """Run one scenario (unprofiled headline + profiled breakdown)."""
    t0 = time.perf_counter()
    plain = run_scenario(name, seed=seed, quick=quick, profiler=None)
    wall_s = time.perf_counter() - t0

    profiler = StageProfiler()
    profiled = run_scenario(name, seed=seed, quick=quick, profiler=profiler)
    if (profiled["offered"], profiled["released"]) != (
            plain["offered"], plain["released"]):
        raise AssertionError(
            f"{name}: profiling perturbed the simulation "
            f"(unprofiled offered/released {plain['offered']}/"
            f"{plain['released']}, profiled {profiled['offered']}/"
            f"{profiled['released']})")

    packets = plain["released"]
    results = {key: value for key, value in plain.items() if key != "config"}
    results["wall_s"] = round(wall_s, 4)
    results["sim_pps_per_wall_s"] = round(plain["released"] / wall_s)
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "perfscope scenario suite "
                     "(simulated packets / wall s, per-stage attribution)",
        "scenario": name,
        "env": env_metadata(seed, quick),
        "config": plain["config"],
        "results": results,
        "stages": profiler.report(packets=packets),
    }


def write_report(report: Dict, out_dir: str) -> str:
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{report['scenario']}.json")
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return path


def run_suite(names: Optional[Iterable[str]] = None, seed: int = 0,
              quick: bool = False, out_dir: Optional[str] = None,
              echo=print) -> List[Dict]:
    """Run the suite; writes ``BENCH_<scenario>.json`` per scenario."""
    names = list(names) if names is not None else scenario_names()
    reports = []
    for name in names:
        echo(f"[bench] {name} (seed={seed}{', quick' if quick else ''}) ...")
        report = bench_scenario(name, seed=seed, quick=quick)
        reports.append(report)
        results = report["results"]
        echo(f"[bench]   {results['sim_pps_per_wall_s']:,} sim pps/wall s "
             f"({results['released']}/{results['offered']} released, "
             f"{results['wall_s']:.2f}s wall)")
        if out_dir is not None:
            path = write_report(report, out_dir)
            echo(f"[bench]   wrote {path}")
    return reports


def stage_table(report: Dict) -> str:
    """Plain-text per-stage table for one report (CLI output)."""
    stages = report.get("stages") or {}
    if not stages:
        return "(no stage data)"
    lines = [f"{'stage':<22}{'calls':>10}{'wall ms':>10}"
             f"{'us/pkt':>10}{'calls/pkt':>11}"]
    for stage, entry in stages.items():
        lines.append(
            f"{stage:<22}{entry.get('calls', 0):>10}"
            f"{entry.get('wall_s', 0.0) * 1e3:>10.2f}"
            f"{entry.get('us_per_packet', 0.0):>10.2f}"
            f"{entry.get('calls_per_packet', 0.0):>11.3f}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """``python -m repro.perf.bench`` convenience entry point."""
    import argparse
    parser = argparse.ArgumentParser(description="perfscope bench suite")
    parser.add_argument("--scenario", action="append", default=None,
                        choices=scenario_names())
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out-dir", default=".")
    args = parser.parse_args(argv)
    run_suite(args.scenario, seed=args.seed, quick=args.quick,
              out_dir=args.out_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
