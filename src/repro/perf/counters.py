"""Chrome-trace counter tracks for queue depth and backpressure.

A :class:`CounterSampler` is a sim process that periodically samples
the chain's bounded queues -- total NIC receive-queue depth, the
buffer's held set -- and, when an overload stack is wired, the
:class:`~repro.core.admission.BackpressureBus` utilization, emitting
Chrome ``C`` (counter) events on a dedicated ``tid`` so the series
render as stacked counter tracks aligned with the packet/control-plane
spans already in the trace (PROTOCOL.md §13.2).

Sampling reads state only; it never perturbs the data plane.  The
process touches the virtual-time queue, so it is for *tracing* runs --
never wire it into a figure run that must stay byte-identical.
"""

from __future__ import annotations

__all__ = ["CounterSampler", "COUNTER_TID"]

#: Trace lane for perf counter tracks (control plane uses 9998/9999).
COUNTER_TID = 9997

#: Default sampling cadence in virtual seconds.
DEFAULT_INTERVAL_S = 0.5e-3


class CounterSampler:
    """Samples chain queue depths into a tracer's counter track."""

    def __init__(self, sim, tracer, chain, interval_s: float = DEFAULT_INTERVAL_S,
                 tid: int = COUNTER_TID, name: str = "perf/counters"):
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.sim = sim
        self.tracer = tracer
        self.chain = chain
        self.interval_s = interval_s
        self.tid = tid
        self.samples = 0
        self._alive = True
        tracer.set_thread_name(tid, "perf counters")
        self._process = sim.process(self._loop(), name=name)

    def stop(self) -> None:
        self._alive = False

    # -- sampling -------------------------------------------------------------

    def _nic_depth(self) -> int:
        total = 0
        for replica in self.chain.replicas:
            server = replica.server
            if server is not None and not getattr(server, "failed", False):
                total += server.nic.depth()
        return total

    def sample_once(self) -> None:
        now = self.sim.now
        self.samples += 1
        self.tracer.counter(
            "queue-depth", "perf", now, tid=self.tid,
            nic_queued=self._nic_depth(),
            buffer_held=len(self.chain.buffer.held))
        admission = getattr(self.chain, "admission", None)
        bus = getattr(admission, "bus", None) if admission is not None else None
        if bus is not None:
            self.tracer.counter(
                "backpressure", "perf", now, tid=self.tid,
                bus_utilization=round(bus.level(), 4))

    def _loop(self):
        from ..sim import CancelledError, Interrupt
        try:
            while self._alive:
                self.sample_once()
                yield self.sim.timeout(self.interval_s)
        except (Interrupt, CancelledError):
            return
