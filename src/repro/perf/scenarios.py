"""The scenario benchmark suite (PROTOCOL.md §13.2).

Each scenario builds the same kind of FTC chain the protocol tests
exercise, drives a fixed-seed workload through a scripted timeline,
and reports what was offered and released plus the wall-clock time the
simulation took.  The scenarios cover the regimes where per-packet
cost differs structurally:

==================== =====================================================
baseline             raw links, no overload machinery (the fig5 fast path)
reliable-links       per-hop ReliableChannel framing/ACK (§8), clean wire
lossy                reliable links over impaired wire: retransmit path
ctrlplane-failover   3-member ensemble recovers a mid-chain crash (§9)
reconfig-under-traffic  live rescale of a mid-chain position (§11)
overload             flash crowd through admission + backpressure (§12)
==================== =====================================================

Every scenario accepts a ``profiler``; when given, it is installed on
both the simulator (``engine/dispatch``) and the chain's telemetry
bundle (every other stage), so per-stage costs attribute to the same
run that produced the headline.  Wall time is measured by the caller
(:mod:`.bench`) around :func:`run_scenario`.

Determinism: for a given (scenario, seed, quick) the virtual-time
outcome -- offered, released, and per-stage *call counts* -- is exactly
reproducible; only wall seconds vary run to run.
"""

from __future__ import annotations

from typing import Callable, Dict

__all__ = ["SCENARIOS", "run_scenario", "scenario_names"]

#: Offered rate for the data-plane scenarios (pps).
RATE_PPS = 2e5

#: Virtual run length: traffic window + drain runway, full vs --quick.
DURATION_S = 30e-3
QUICK_DURATION_S = 10e-3


def _new_telemetry(profiler, telemetry=None):
    """A metrics-only bundle carrying the profiler to every component.

    An externally built bundle (``repro perf profile`` passes one with
    a live tracer) wins; otherwise profiling runs get a trace-less
    Telemetry and unprofiled runs stay on NULL_TELEMETRY.
    """
    if telemetry is not None:
        return telemetry
    from ..telemetry import NULL_TELEMETRY, Telemetry
    if profiler is None:
        return NULL_TELEMETRY
    return Telemetry(max_trace_events=0, profiler=profiler)


def _install(sim, profiler) -> None:
    if profiler is not None:
        sim.profiler = profiler


def _drain(sim, generator, duration: float, runway: float) -> None:
    sim.run(until=duration)
    generator.stop()
    sim.run(until=duration + runway)


def _result(generator, egress, chain, config: Dict) -> Dict:
    return {
        "config": config,
        "offered": generator.sent,
        "released": egress.count,
        "buffer_held_peak": chain.buffer.held_peak,
    }


def _simple_chain(seed: int, profiler, reliable: bool, n_mboxes: int = 2,
                  admission=None, telemetry=None, on_chain=None):
    from ..core import FTCChain
    from ..metrics import EgressRecorder
    from ..middlebox import ch_n
    from ..sim import Simulator
    sim = Simulator()
    _install(sim, profiler)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(n_mboxes, n_threads=2), f=1, deliver=egress,
                     n_threads=2, seed=seed, reliable_links=reliable,
                     admission=admission,
                     telemetry=_new_telemetry(profiler, telemetry))
    chain.start()
    if on_chain is not None:
        on_chain(sim, chain)
    return sim, chain, egress


def _scenario_baseline(seed: int, quick: bool, profiler,
                       telemetry=None, on_chain=None) -> Dict:
    from ..net import TrafficGenerator, balanced_flows
    duration = QUICK_DURATION_S if quick else DURATION_S
    sim, chain, egress = _simple_chain(seed, profiler, reliable=False,
                                       telemetry=telemetry,
                                       on_chain=on_chain)
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=RATE_PPS,
                                 flows=balanced_flows(8, 2))
    _drain(sim, generator, duration, runway=5e-3)
    return _result(generator, egress, chain,
                   {"chain": "ch2", "f": 1, "rate_pps": RATE_PPS,
                    "duration_s": duration})


def _scenario_reliable(seed: int, quick: bool, profiler,
                       telemetry=None, on_chain=None) -> Dict:
    from ..net import TrafficGenerator, balanced_flows
    duration = QUICK_DURATION_S if quick else DURATION_S
    sim, chain, egress = _simple_chain(seed, profiler, reliable=True,
                                       telemetry=telemetry,
                                       on_chain=on_chain)
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=RATE_PPS,
                                 flows=balanced_flows(8, 2))
    _drain(sim, generator, duration, runway=5e-3)
    return _result(generator, egress, chain,
                   {"chain": "ch2", "f": 1, "rate_pps": RATE_PPS,
                    "duration_s": duration, "reliable_links": True})


def _scenario_lossy(seed: int, quick: bool, profiler,
                    telemetry=None, on_chain=None) -> Dict:
    from ..net import TrafficGenerator, balanced_flows
    duration = QUICK_DURATION_S if quick else DURATION_S
    rate = RATE_PPS / 2
    sim, chain, egress = _simple_chain(seed, profiler, reliable=True,
                                       telemetry=telemetry,
                                       on_chain=on_chain)
    chain.net.impair_data(drop_rate=0.02, dup_rate=0.01, reorder_rate=0.01,
                          corrupt_rate=0.005, seed=seed)
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=rate,
                                 flows=balanced_flows(8, 2))
    sim.run(until=duration)
    generator.stop()
    # Heal before the runway so retransmission tails converge.
    chain.net.clear_data_impairment()
    sim.run(until=duration + 30e-3)
    result = _result(generator, egress, chain,
                     {"chain": "ch2", "f": 1, "rate_pps": rate,
                      "duration_s": duration, "reliable_links": True,
                      "impairment": "drop=0.02,dup=0.01,reorder=0.01,"
                                    "corrupt=0.005"})
    result["retransmissions"] = chain.channel_stats().get(
        "retransmissions", 0)
    return result


def _scenario_ctrlplane(seed: int, quick: bool, profiler,
                        telemetry=None, on_chain=None) -> Dict:
    from ..chaos.soak import CTRLPLANE_ELECTION
    from ..core import FTCChain
    from ..metrics import EgressRecorder
    from ..middlebox import ch_n
    from ..net import TrafficGenerator, balanced_flows
    from ..orchestration import OrchestratorEnsemble
    from ..sim import Simulator
    duration = QUICK_DURATION_S if quick else DURATION_S
    rate = 5e4
    t_fail = duration * 0.4
    sim = Simulator()
    _install(sim, profiler)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                     n_threads=2, seed=seed,
                     telemetry=_new_telemetry(profiler, telemetry))
    chain.start()
    if on_chain is not None:
        on_chain(sim, chain)
    ensemble = OrchestratorEnsemble(sim, chain, n=3,
                                    election=CTRLPLANE_ELECTION,
                                    telemetry=chain.telemetry)
    ensemble.start()
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=rate,
                                 flows=balanced_flows(8, 2))
    sim.schedule_callback(t_fail, lambda: chain.fail_position(1))
    sim.run(until=duration)
    generator.stop()
    # Recovery runway: detection + election-held lease + respawn.
    sim.run(until=duration + 50e-3)
    ensemble.stop()
    result = _result(generator, egress, chain,
                     {"chain": "ch3", "f": 1, "rate_pps": rate,
                      "duration_s": duration, "orchestrators": 3,
                      "fail_position": 1, "t_fail_s": t_fail})
    result["recoveries"] = len(ensemble.history)
    return result


def _scenario_reconfig(seed: int, quick: bool, profiler,
                       telemetry=None, on_chain=None) -> Dict:
    from ..core import FTCChain
    from ..core.reconfig import ReconfigOp, apply_reconfig
    from ..metrics import EgressRecorder
    from ..middlebox import ch_n
    from ..net import TrafficGenerator, balanced_flows
    from ..sim import Simulator
    duration = QUICK_DURATION_S if quick else DURATION_S
    rate = RATE_PPS / 2
    sim = Simulator()
    _install(sim, profiler)
    egress = EgressRecorder(sim)
    chain = FTCChain(sim, ch_n(3, n_threads=2), f=1, deliver=egress,
                     n_threads=2, seed=seed, reliable_links=True,
                     telemetry=_new_telemetry(profiler, telemetry))
    chain.start()
    if on_chain is not None:
        on_chain(sim, chain)
    generator = TrafficGenerator(sim, chain.ingress, rate_pps=rate,
                                 flows=balanced_flows(8, 2))
    outcome: Dict = {}

    def drive():
        op = ReconfigOp(kind="rescale", position=1, n_threads=4)
        report = yield from apply_reconfig(chain, op)
        outcome["committed"] = report.committed

    sim.schedule_callback(duration * 0.4,
                          lambda: sim.process(drive(), name="perf-reconfig"))
    sim.run(until=duration)
    generator.stop()
    sim.run(until=duration + 30e-3)
    result = _result(generator, egress, chain,
                     {"chain": "ch3", "f": 1, "rate_pps": rate,
                      "duration_s": duration, "reliable_links": True,
                      "op": "rescale@1->4threads"})
    result["reconfig_committed"] = bool(outcome.get("committed"))
    return result


def _scenario_overload(seed: int, quick: bool, profiler,
                       telemetry=None, on_chain=None) -> Dict:
    from ..core.admission import AdmissionControl, BackpressureBus
    from ..net import WorkloadGenerator, WorkloadSpec
    from ..net.flowgen import FlashCrowd
    from ..sim import RandomStreams, Simulator
    from ..core import FTCChain
    from ..metrics import EgressRecorder
    from ..middlebox import ch_n
    duration = QUICK_DURATION_S if quick else DURATION_S
    base_pps = 1e5
    sim = Simulator()
    _install(sim, profiler)
    egress = EgressRecorder(sim)
    telemetry = _new_telemetry(profiler, telemetry)
    admission = AdmissionControl(sim, rate_pps=base_pps * 0.6,
                                 bus=BackpressureBus(), telemetry=telemetry)
    chain = FTCChain(sim, ch_n(2, n_threads=2), f=1, deliver=egress,
                     n_threads=2, seed=seed, admission=admission,
                     telemetry=telemetry)
    chain.start()
    if on_chain is not None:
        on_chain(sim, chain)
    spec = WorkloadSpec(
        base_pps=base_pps,
        flashes=(FlashCrowd(at_s=duration * 0.3, duration_s=duration * 0.3,
                            multiplier=4.0),),
        n_flows=64, n_classes=3)
    generator = WorkloadGenerator(sim, chain.ingress, spec, n_queues=2,
                                  streams=RandomStreams(seed))
    _drain(sim, generator, duration, runway=10e-3)
    result = _result(generator, egress, chain,
                     {"chain": "ch2", "f": 1, "base_pps": base_pps,
                      "duration_s": duration, "flash_multiplier": 4.0,
                      "admission_pps": base_pps * 0.6})
    result["admitted"] = admission.admitted
    result["shed"] = admission.shed
    return result


#: name -> runner(seed, quick, profiler, telemetry=, on_chain=) -> dict.
SCENARIOS: Dict[str, Callable[..., Dict]] = {
    "baseline": _scenario_baseline,
    "reliable-links": _scenario_reliable,
    "lossy": _scenario_lossy,
    "ctrlplane-failover": _scenario_ctrlplane,
    "reconfig-under-traffic": _scenario_reconfig,
    "overload": _scenario_overload,
}


def scenario_names():
    return list(SCENARIOS)


def run_scenario(name: str, seed: int = 0, quick: bool = False,
                 profiler=None, telemetry=None, on_chain=None) -> Dict:
    """Run one scenario; returns its result dict (no wall timing here).

    ``telemetry`` overrides the scenario's internal bundle (e.g. to
    capture a Chrome trace); ``on_chain(sim, chain)`` fires after the
    chain starts (e.g. to attach a :class:`~.counters.CounterSampler`).
    """
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {', '.join(SCENARIOS)}")
    return runner(seed, quick, profiler, telemetry=telemetry,
                  on_chain=on_chain)
