"""Measurement instruments: throughput meters and latency samplers.

These play the role of the paper's pktgen (throughput) and MoonGen
(latency) measurement sides.  Following §7.1's methodology, throughput
is reported as the mean of per-interval maxima over a measurement
window, and latency as the average of samples in an interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..net.packet import Packet
from ..sim import Simulator
from .stats import cdf_points, mean, percentile

__all__ = ["ThroughputMeter", "LatencySampler", "EgressRecorder"]


class ThroughputMeter:
    """Counts packets and reports rates over virtual-time windows."""

    def __init__(self, sim: Simulator, name: str = "tput"):
        self.sim = sim
        self.name = name
        self.count = 0
        self.bytes = 0
        self._window_start: Optional[float] = None
        self._marks: List[Tuple[float, int]] = []

    def record(self, packet: Packet) -> None:
        if self._window_start is None:
            self._window_start = self.sim.now
        self.count += 1
        self.bytes += packet.size

    def start_window(self) -> None:
        """Begin measuring from now (discard warm-up packets)."""
        self._window_start = self.sim.now
        self.count = 0
        self.bytes = 0
        # Stale marks would make interval_rates_pps() span the warm-up
        # boundary (and go negative once count resets).
        self._marks.clear()

    def mark(self) -> None:
        """Record an intermediate (time, count) sample."""
        self._marks.append((self.sim.now, self.count))

    @property
    def elapsed(self) -> float:
        if self._window_start is None:
            return 0.0
        return self.sim.now - self._window_start

    def rate_pps(self, until: Optional[float] = None) -> float:
        end = self.sim.now if until is None else until
        if self._window_start is None or end <= self._window_start:
            return 0.0
        return self.count / (end - self._window_start)

    def rate_mpps(self, until: Optional[float] = None) -> float:
        return self.rate_pps(until) / 1e6

    def rate_gbps(self) -> float:
        if self.elapsed <= 0:
            return 0.0
        return self.bytes * 8.0 / self.elapsed / 1e9

    def interval_rates_pps(self) -> List[float]:
        """Rates between consecutive marks (for max-of-intervals reporting)."""
        rates = []
        for (t0, c0), (t1, c1) in zip(self._marks, self._marks[1:]):
            if t1 > t0:
                rates.append((c1 - c0) / (t1 - t0))
        return rates


class LatencySampler:
    """Collects per-packet one-way latency samples at chain egress."""

    def __init__(self, sim: Simulator, name: str = "latency"):
        self.sim = sim
        self.name = name
        self.samples: List[float] = []
        self._accept_after = 0.0

    def start_after(self, time: float) -> None:
        """Ignore packets created before ``time`` (warm-up)."""
        self._accept_after = time

    def record(self, packet: Packet) -> None:
        if packet.created_at < self._accept_after:
            return
        self.samples.append(self.sim.now - packet.created_at)

    def __len__(self) -> int:
        return len(self.samples)

    def mean_us(self) -> float:
        """Mean latency in µs; NaN when no samples survived warm-up."""
        if not self.samples:
            return float("nan")
        return mean(self.samples) * 1e6

    def percentile_us(self, q: float) -> float:
        """Percentile latency in µs; NaN when no samples survived warm-up."""
        if not self.samples:
            return float("nan")
        return percentile(self.samples, q) * 1e6

    def cdf_us(self, n_points: int = 100):
        if not self.samples:
            return []
        return [(v * 1e6, frac) for v, frac in cdf_points(self.samples, n_points)]


class EgressRecorder:
    """A chain egress sink combining throughput + latency measurement.

    Use as the ``deliver`` callable of a chain; packets are counted,
    latency-sampled, and optionally retained for content checks.
    """

    def __init__(self, sim: Simulator, keep_packets: bool = False,
                 name: str = "egress"):
        self.sim = sim
        self.name = name
        self.throughput = ThroughputMeter(sim, name=f"{name}/tput")
        self.latency = LatencySampler(sim, name=f"{name}/lat")
        self.keep_packets = keep_packets
        self.packets: List[Packet] = []
        self.by_flow: Dict = {}

    def __call__(self, packet: Packet) -> None:
        self.throughput.record(packet)
        self.latency.record(packet)
        if self.keep_packets:
            self.packets.append(packet)
        self.by_flow[packet.flow] = self.by_flow.get(packet.flow, 0) + 1

    @property
    def count(self) -> int:
        return self.throughput.count
