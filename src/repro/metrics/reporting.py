"""Plain-text table/series rendering for experiment output.

Every benchmark prints the same rows/series the paper reports; these
helpers keep that output consistent and diff-friendly.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str = "") -> str:
    """Render an aligned monospace table."""
    columns = [[str(h)] for h in headers]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            columns[i].append(_fmt(cell))
    widths = [max(len(cell) for cell in col) for col in columns]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(cell).ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence,
                  x_label: str = "x", y_label: str = "y") -> str:
    """Render one figure series as aligned x/y pairs."""
    if len(xs) != len(ys):
        raise ValueError("series length mismatch")
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {_fmt(x):>10}  {_fmt(y):>12}")
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
