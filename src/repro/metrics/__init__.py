"""Measurement: meters, statistics, and report formatting."""

from .meters import EgressRecorder, LatencySampler, ThroughputMeter
from .reporting import format_series, format_table
from .stats import (
    cdf_points,
    confidence_interval95,
    mean,
    percentile,
    stdev,
)

__all__ = [
    "EgressRecorder",
    "LatencySampler",
    "ThroughputMeter",
    "cdf_points",
    "confidence_interval95",
    "format_series",
    "format_table",
    "mean",
    "percentile",
    "stdev",
]
