"""Small statistics helpers (percentiles, CDFs, confidence intervals).

Pure-Python and dependency-free so the core library stays importable
without numpy; the benchmark harness may still use numpy for speed.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

__all__ = ["mean", "stdev", "percentile", "cdf_points", "confidence_interval95"]


def mean(samples: Sequence[float]) -> float:
    if not samples:
        raise ValueError("mean of empty sample set")
    return sum(samples) / len(samples)


def stdev(samples: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator)."""
    if len(samples) < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((x - mu) ** 2 for x in samples) / (len(samples) - 1))


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile, ``q`` in [0, 100]."""
    if not samples:
        raise ValueError("percentile of empty sample set")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q!r} out of range")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    # Clamp: with subnormal/extreme floats the rounded interpolation
    # can escape [ordered[low], ordered[high]] (e.g. both half-terms
    # of 5e-324 round to zero), and a percentile must stay in range.
    value = ordered[low] * (1 - frac) + ordered[high] * frac
    return min(max(value, ordered[low]), ordered[high])


def cdf_points(samples: Sequence[float],
               n_points: int = 100) -> List[Tuple[float, float]]:
    """(value, cumulative fraction) pairs for plotting a CDF."""
    if not samples:
        raise ValueError("cdf of empty sample set")
    if n_points < 1:
        raise ValueError(f"cdf needs n_points >= 1, got {n_points}")
    ordered = sorted(samples)
    total = len(ordered)
    if n_points >= total:
        return [(value, (i + 1) / total) for i, value in enumerate(ordered)]
    if n_points == 1:
        return [(ordered[-1], 1.0)]
    points = []
    for j in range(n_points):
        idx = round(j * (total - 1) / (n_points - 1))
        points.append((ordered[idx], (idx + 1) / total))
    return points


def confidence_interval95(samples: Sequence[float]) -> Tuple[float, float]:
    """(mean, half-width) of a normal-approximation 95% CI."""
    mu = mean(samples)
    if len(samples) < 2:
        return mu, 0.0
    half = 1.96 * stdev(samples) / math.sqrt(len(samples))
    return mu, half
