"""Remote-datastore baseline (StatelessNF / CHC style, §2.2).

The second class of existing approaches "redesigns middleboxes to
separate and push state into a fault tolerant backend data store",
paying at least a round trip per state access and an acknowledged
write before packet release.  The paper cites ~60% throughput drops
for this design; we include it for the §2.2 comparison and the design
ablations, not for any specific figure.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..core.costs import CostModel, DEFAULT_COSTS
from ..middlebox.base import DROP, Middlebox
from ..net.packet import Packet
from ..net.topology import Network
from ..sim import CancelledError, Interrupt, Process, RandomStreams, Simulator
from ..stm.store import StateStore
from ..stm.transaction import TransactionContext

__all__ = ["RemoteStoreChain"]

#: Datastore-side service cost per operation (get/put on a kv store).
STORE_OP_CYCLES = 400.0


class RemoteStoreChain:
    """Stateless middleboxes + a replicated remote state store."""

    def __init__(self, sim: Simulator, middleboxes: Sequence[Middlebox],
                 deliver: Callable[[Packet], None] = lambda p: None,
                 costs: CostModel = DEFAULT_COSTS,
                 net: Optional[Network] = None, n_threads: int = 8,
                 seed: int = 0, name: str = "rstore"):
        if not middleboxes:
            raise ValueError("a chain needs at least one middlebox")
        self.sim = sim
        self.middleboxes = list(middleboxes)
        self.deliver = deliver
        self.costs = costs
        self.n_threads = n_threads
        self.name = name
        self.streams = RandomStreams(seed)
        self.net = net or Network(sim, hop_delay_s=costs.hop_delay_s,
                                  bandwidth_bps=costs.bandwidth_bps)
        self.servers = []
        self.stores: List[StateStore] = []
        for index, mbox in enumerate(middleboxes):
            server = self.net.add_server(
                f"{name}-s{index}", n_cores=n_threads, cpu_hz=costs.cpu_hz,
                nic_pps=costs.nic_pps, nic_queues=n_threads,
                nic_queue_depth=costs.nic_queue_depth)
            self.servers.append(server)
            self.stores.append(StateStore(mbox.name))
        self.datastore = self.net.add_server(f"{name}-ds", n_cores=n_threads,
                                             cpu_hz=costs.cpu_hz,
                                             nic_pps=costs.nic_pps)
        for index in range(len(middleboxes) - 1):
            self.net.connect(self.servers[index].name,
                             self.servers[index + 1].name)
        for server in self.servers:
            self.net.connect(server.name, self.datastore.name)
            self.net.connect(self.datastore.name, server.name)
        self.workers: List[Process] = []
        self.released = 0
        self.packets_in = 0
        self.store_round_trips = 0

    def start(self) -> None:
        for index, server in enumerate(self.servers):
            for tid, queue in enumerate(server.nic.queues):
                self.workers.append(self.sim.process(
                    self._worker(index, tid, queue)))

    def stop(self) -> None:
        for worker in self.workers:
            if worker.is_alive:
                worker.interrupt("stopped")
        self.workers = []

    def ingress(self, packet: Packet) -> None:
        if packet.created_at == 0.0:
            packet.created_at = self.sim.now
        self.packets_in += 1
        self.net.deliver_external(self.servers[0].name, packet)

    def total_released(self) -> int:
        return self.released

    def store_of(self, index: int):
        return self.stores[index]

    def _worker(self, index: int, thread_id: int, queue):
        mbox = self.middleboxes[index]
        store = self.stores[index]
        server = self.servers[index].name
        is_last = index == len(self.middleboxes) - 1
        try:
            while True:
                packet = yield queue.get()
                processing = (self.costs.processing_cycles +
                              self.costs.per_wire_byte_cycles * packet.wire_size)
                yield self.sim.timeout(
                    self.costs.cycles_to_seconds(processing))
                ctx = TransactionContext(store, flow=packet.flow,
                                         thread_id=thread_id, now=self.sim.now)
                verdict = mbox.process(packet, ctx)
                operations = len(ctx.reads) + len(ctx.writes)
                for _ in range(operations):
                    # Each state access is a synchronous round trip to
                    # the datastore; writes are acked before release.
                    self.store_round_trips += 1
                    yield self.net.control_call(
                        server, self.datastore.name,
                        lambda: None, payload_bytes=64, response_bytes=64)
                    yield self.sim.timeout(self.costs.cycles_to_seconds(
                        STORE_OP_CYCLES))
                store.apply_many(ctx.writes)
                if verdict is DROP:
                    continue
                out = verdict if isinstance(verdict, Packet) else packet
                if is_last:
                    self.released += 1
                    self.deliver(out)
                else:
                    self.net.send(server, self.servers[index + 1].name, out)
        except (Interrupt, CancelledError):
            return
