"""FTMB baseline: our re-implementation of Rollback-Recovery for
Middleboxes [51], as the paper's evaluation builds it (§7.1).

Per middlebox, FTMB dedicates the middlebox server (master, M) plus a
logger server hosting the input logger (IL) and output logger (OL) on
its two NICs.  Packets traverse IL -> M -> OL.  M records packet
access logs (PALs) for every shared-state access -- reads included --
and transmits them to OL in separate messages; OL releases a data
packet only once its PAL has arrived.

Following the paper's prototype simplifications: PALs are assumed
delivered on the first attempt, OL keeps only the latest PALs, and no
snapshots are taken (making this an upper bound on FTMB performance).
:class:`FTMBChain` with ``snapshots=True`` adds §7.4's
FTMB+Snapshot behaviour: every ``snapshot_period`` each master stalls
for ``snapshot_stall`` while a consistent snapshot is captured.

The famous consequence of per-packet PAL messages: the OL NIC's packet
engine handles two messages per data packet, halving the sustainable
rate to ~5.26 Mpps (§7.3) -- in this model that ceiling *emerges* from
the shared NIC rate limiter rather than being hard-coded.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..core.costs import CostModel, DEFAULT_COSTS
from ..core.depvec import ReplicationState
from ..core.runtime import MiddleboxRuntime
from ..middlebox.base import DROP, Middlebox
from ..net.packet import Packet
from ..net.topology import Network
from ..sim import CancelledError, Interrupt, Process, RandomStreams, Simulator

__all__ = ["FTMBChain"]

#: Cycles the IL/OL spend per message (receive, log, forward).
LOGGER_CYCLES = 120.0

#: Wire size of one PAL message (header + a few access records).
PAL_BASE_BYTES = 64
PAL_ENTRY_BYTES = 16


class _PALTracker:
    """OL-side bookkeeping: hold data packets until their PAL arrives."""

    def __init__(self):
        self.seen: set = set()
        self.waiting: Dict[int, Packet] = {}

    def pal_arrived(self, pid: int) -> Optional[Packet]:
        self.seen.add(pid)
        return self.waiting.pop(pid, None)

    def data_arrived(self, packet: Packet) -> bool:
        """True if the packet may be forwarded immediately."""
        if packet.pid in self.seen:
            self.seen.discard(packet.pid)  # "only the last PAL" kept
            return True
        self.waiting[packet.pid] = packet
        return False


class FTMBChain:
    """A chain of FTMB-protected middleboxes (IL -> M -> OL each)."""

    def __init__(self, sim: Simulator, middleboxes: Sequence[Middlebox],
                 deliver: Callable[[Packet], None] = lambda p: None,
                 costs: CostModel = DEFAULT_COSTS,
                 net: Optional[Network] = None, n_threads: int = 8,
                 seed: int = 0, snapshots: bool = False, name: str = "ftmb"):
        if not middleboxes:
            raise ValueError("a chain needs at least one middlebox")
        self.sim = sim
        self.middleboxes = list(middleboxes)
        self.deliver = deliver
        self.costs = costs
        self.n_threads = n_threads
        self.snapshots = snapshots
        self.name = name
        self.streams = RandomStreams(seed)
        self.net = net or Network(sim, hop_delay_s=costs.hop_delay_s,
                                  bandwidth_bps=costs.bandwidth_bps)

        self.il_servers = []
        self.master_servers = []
        self.ol_servers = []
        self.runtimes: List[MiddleboxRuntime] = []
        self.trackers: List[Dict[int, _PALTracker]] = []
        self.pals_sent = 0
        self.released = 0
        self.packets_in = 0
        self._snapshot_offset: List[float] = []

        for index, mbox in enumerate(middleboxes):
            il = self.net.add_server(f"{name}-il{index}", n_cores=n_threads,
                                     cpu_hz=costs.cpu_hz, nic_pps=costs.nic_pps,
                                     nic_queues=n_threads,
                                     nic_queue_depth=costs.nic_queue_depth)
            master = self.net.add_server(f"{name}-m{index}", n_cores=n_threads,
                                         cpu_hz=costs.cpu_hz,
                                         nic_pps=costs.nic_pps,
                                         nic_queues=n_threads,
                                         nic_queue_depth=costs.nic_queue_depth)
            ol = self.net.add_server(f"{name}-ol{index}", n_cores=n_threads,
                                     cpu_hz=costs.cpu_hz, nic_pps=costs.nic_pps,
                                     nic_queues=n_threads,
                                     nic_queue_depth=costs.nic_queue_depth)
            self.il_servers.append(il)
            self.master_servers.append(master)
            self.ol_servers.append(ol)
            state = ReplicationState(mbox.name, costs.n_partitions)
            self.runtimes.append(MiddleboxRuntime(
                sim, mbox, state, costs=costs, streams=self.streams,
                replicate=False,
                extra_critical_cycles=costs.ftmb_pal_crit_cycles))
            self.trackers.append({tid: _PALTracker()
                                  for tid in range(n_threads)})
            self.net.connect(il.name, master.name)
            self.net.connect(master.name, ol.name)
            if index > 0:
                self.net.connect(self.ol_servers[index - 1].name, il.name)
            # Stagger snapshot phases across masters (§7.4: snapshots at
            # different middleboxes do not align).
            self._snapshot_offset.append(self.streams.uniform(
                f"snapshot-offset/{index}", 0.0, costs.snapshot_period_s))

        self.workers: List[Process] = []

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> None:
        for index in range(len(self.middleboxes)):
            for tid in range(self.n_threads):
                self.workers.append(self.sim.process(
                    self._il_worker(index, tid), name=f"{self.name}-il{index}"))
                self.workers.append(self.sim.process(
                    self._master_worker(index, tid),
                    name=f"{self.name}-m{index}"))
                self.workers.append(self.sim.process(
                    self._ol_worker(index, tid), name=f"{self.name}-ol{index}"))

    def stop(self) -> None:
        for worker in self.workers:
            if worker.is_alive:
                worker.interrupt("stopped")
        self.workers = []

    def ingress(self, packet: Packet) -> None:
        if packet.created_at == 0.0:
            packet.created_at = self.sim.now
        self.packets_in += 1
        self.net.deliver_external(self.il_servers[0].name, packet)

    def total_released(self) -> int:
        return self.released

    def store_of(self, index: int):
        return self.runtimes[index].state.store

    # -- workers ----------------------------------------------------------------

    def _logger_cost(self, packet: Packet) -> float:
        cycles = LOGGER_CYCLES + self.costs.per_wire_byte_cycles * packet.wire_size
        return self.costs.cycles_to_seconds(cycles)

    def _il_worker(self, index: int, thread_id: int):
        """Input logger: record the packet, forward to the master."""
        queue = self.il_servers[index].nic.queues[thread_id]
        master = self.master_servers[index].name
        il = self.il_servers[index].name
        try:
            while True:
                packet = yield queue.get()
                yield self.sim.timeout(self._logger_cost(packet))
                self.net.send(il, master, packet)
        except (Interrupt, CancelledError):
            return

    def _master_worker(self, index: int, thread_id: int):
        """The middlebox master: process, emit PALs, forward to OL."""
        queue = self.master_servers[index].nic.queues[thread_id]
        master = self.master_servers[index].name
        ol = self.ol_servers[index].name
        runtime = self.runtimes[index]
        try:
            while True:
                packet = yield queue.get()
                if self.snapshots:
                    yield from self._maybe_snapshot_stall(index)
                wire = self.costs.per_wire_byte_cycles * packet.wire_size
                yield self.sim.timeout(self.costs.cycles_to_seconds(wire))
                verdict, _log, result = yield from runtime.process(
                    packet, thread_id, want_result=True)
                if verdict is DROP:
                    continue
                out = verdict if isinstance(verdict, Packet) else packet
                if result is not None:
                    # One PAL message per packet that touched shared
                    # state (reads included -- FTMB logs them, §7.3).
                    accesses = len(result.read_keys | set(result.writes))
                    if accesses:
                        yield self.sim.timeout(self.costs.cycles_to_seconds(
                            self.costs.ftmb_pal_tx_cycles))
                        pal = Packet(flow=out.flow,
                                     size=PAL_BASE_BYTES +
                                     PAL_ENTRY_BYTES * accesses,
                                     kind="pal", created_at=self.sim.now)
                        pal.meta["pal_for"] = out.pid
                        pal.meta["mbox_index"] = index
                        self.pals_sent += 1
                        self.net.send(master, ol, pal)
                    else:
                        out.meta["no_pal"] = True
                else:
                    out.meta["no_pal"] = True  # stateless middlebox
                self.net.send(master, ol, out)
        except (Interrupt, CancelledError):
            return

    def _maybe_snapshot_stall(self, index: int):
        """FTMB+Snapshot: stall while a snapshot is captured (§7.4).

        Snapshot windows repeat every ``snapshot_period_s`` for
        ``snapshot_stall_s``; every master thread entering processing
        during a window waits until the window closes (no packet is
        processed during a snapshot).
        """
        period = self.costs.snapshot_period_s
        stall = self.costs.snapshot_stall_s
        phase = (self.sim.now - self._snapshot_offset[index]) % period
        if phase < stall:
            yield self.sim.timeout(stall - phase)
        return

    def _ol_worker(self, index: int, thread_id: int):
        """Output logger: release data only after its PAL arrived."""
        queue = self.ol_servers[index].nic.queues[thread_id]
        ol = self.ol_servers[index].name
        tracker = self.trackers[index][thread_id]
        is_last = index == len(self.middleboxes) - 1
        try:
            while True:
                packet = yield queue.get()
                yield self.sim.timeout(self._logger_cost(packet))
                if packet.kind == "pal":
                    freed = tracker.pal_arrived(packet.meta["pal_for"])
                    if freed is not None:
                        self._ol_forward(index, is_last, ol, freed)
                    continue
                if packet.meta.pop("no_pal", None) or tracker.data_arrived(packet):
                    self._ol_forward(index, is_last, ol, packet)
        except (Interrupt, CancelledError):
            return

    def _ol_forward(self, index: int, is_last: bool, ol: str,
                    packet: Packet) -> None:
        if is_last:
            self.released += 1
            self.deliver(packet)
        else:
            self.net.send(ol, self.il_servers[index + 1].name, packet)
