"""NF: the non-fault-tolerant baseline chain (§7.1).

One server per middlebox, transactional packet processing for thread
safety (real multithreaded middleboxes lock shared state too -- NF
pays Table 2's processing + locking costs), but no replication, no
piggybacking, no forwarder/buffer.  This is the performance ceiling
FTC is compared against in every figure.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from ..core.costs import CostModel, DEFAULT_COSTS
from ..core.depvec import ReplicationState
from ..core.runtime import MiddleboxRuntime
from ..middlebox.base import DROP, Middlebox
from ..net.packet import Packet
from ..net.topology import Network
from ..sim import CancelledError, Interrupt, Process, RandomStreams, Simulator

__all__ = ["NFChain"]


class NFChain:
    """A plain service function chain without fault tolerance."""

    def __init__(self, sim: Simulator, middleboxes: Sequence[Middlebox],
                 deliver: Callable[[Packet], None] = lambda p: None,
                 costs: CostModel = DEFAULT_COSTS,
                 net: Optional[Network] = None, n_threads: int = 8,
                 seed: int = 0, name: str = "nf"):
        if not middleboxes:
            raise ValueError("a chain needs at least one middlebox")
        self.sim = sim
        self.middleboxes = list(middleboxes)
        self.deliver = deliver
        self.costs = costs
        self.n_threads = n_threads
        self.name = name
        self.streams = RandomStreams(seed)
        self.net = net or Network(sim, hop_delay_s=costs.hop_delay_s,
                                  bandwidth_bps=costs.bandwidth_bps)
        self.servers = []
        self.runtimes: List[MiddleboxRuntime] = []
        for index, mbox in enumerate(middleboxes):
            server = self.net.add_server(
                f"{name}-s{index}", n_cores=n_threads, cpu_hz=costs.cpu_hz,
                nic_pps=costs.nic_pps, nic_queues=n_threads,
                nic_queue_depth=costs.nic_queue_depth)
            self.servers.append(server)
            state = ReplicationState(mbox.name, costs.n_partitions)
            self.runtimes.append(MiddleboxRuntime(
                sim, mbox, state, costs=costs, streams=self.streams,
                replicate=False))
        for index in range(len(middleboxes) - 1):
            self.net.connect(self.servers[index].name,
                             self.servers[index + 1].name)
        self.workers: List[Process] = []
        self.released = 0
        self.packets_in = 0

    def start(self) -> None:
        for index, server in enumerate(self.servers):
            for tid, queue in enumerate(server.nic.queues):
                self.workers.append(self.sim.process(
                    self._worker(index, tid, queue),
                    name=f"{self.name}-s{index}/w{tid}"))

    def stop(self) -> None:
        for worker in self.workers:
            if worker.is_alive:
                worker.interrupt("stopped")
        self.workers = []

    def ingress(self, packet: Packet) -> None:
        if packet.created_at == 0.0:
            packet.created_at = self.sim.now
        self.packets_in += 1
        self.net.deliver_external(self.servers[0].name, packet)

    def store_of(self, index: int):
        return self.runtimes[index].state.store

    def total_released(self) -> int:
        return self.released

    def _worker(self, index: int, thread_id: int, queue):
        runtime = self.runtimes[index]
        is_last = index == len(self.middleboxes) - 1
        try:
            while True:
                packet = yield queue.get()
                wire = self.costs.per_wire_byte_cycles * packet.wire_size
                yield self.sim.timeout(self.costs.cycles_to_seconds(wire))
                verdict, _log = yield from runtime.process(packet, thread_id)
                if verdict is DROP:
                    continue
                out = verdict if isinstance(verdict, Packet) else packet
                if is_last:
                    self.released += 1
                    self.deliver(out)
                else:
                    self.net.send(self.servers[index].name,
                                  self.servers[index + 1].name, out)
        except (Interrupt, CancelledError):
            return
