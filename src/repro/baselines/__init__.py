"""Comparison systems: NF (no FT), FTMB [51], FTMB+Snapshot, remote store."""

from .ftmb import FTMBChain
from .nf import NFChain
from .remote_store import RemoteStoreChain

__all__ = ["FTMBChain", "NFChain", "RemoteStoreChain"]
