"""Recovery timelines: chaos + orchestrator events, stitched.

A :class:`RecoveryTimeline` accumulates the structured event stream a
failure produces -- ``fault-injected`` (chaos monkey), ``suspected``
(first missed heartbeat), ``confirmed`` (detection), then the §5.2
recovery phase hooks (``initializing``, ``spawned``, ``fetching``,
``fetched``, ``rerouting``, ``committed``) -- and parses it back into
:class:`TimelineAttempt` records whose per-phase durations sum exactly
to the Fig 13 recovery time:

* ``initialization`` = spawned − initializing
* ``state_recovery`` = fetched − fetching
* ``rerouting``      = committed − rerouting

``recover_positions`` fires each pair back-to-back with no simulated
time in between, so the three durations partition the attempt span;
the soak auditor checks that invariant against every
:class:`~repro.core.recovery.RecoveryReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["TimelineEvent", "TimelineAttempt", "RecoveryTimeline",
           "NULL_TIMELINE", "NullTimeline", "TIMELINE_EVENT_KINDS"]

#: Every event kind a timeline may carry, in typical firing order.
TIMELINE_EVENT_KINDS = (
    "fault-injected", "suspected", "suspect-cleared", "confirmed",
    "initializing", "spawned", "fetching", "fetched",
    "rerouting", "committed", "abandoned",
    # Control-plane replication events (PROTOCOL.md §9).
    "leader-elected", "stepped-down", "leader-resumed", "fenced",
    "journal-replayed",
    # Live reconfiguration phases (PROTOCOL.md §11).  Prefixed so the
    # recovery-attempt parser above never mistakes them for §5.2 phases.
    "reconfig-preparing", "reconfig-prepared", "reconfig-draining",
    "reconfig-quiesced", "reconfig-switching", "reconfig-committed",
    "reconfig-aborted",
)

#: The per-phase duration names of one attempt (Fig 13's columns).
PHASE_NAMES = ("initialization", "state_recovery", "rerouting")


@dataclass(frozen=True)
class TimelineEvent:
    """One instant on the recovery timeline."""

    t: float
    kind: str
    positions: Tuple[int, ...] = ()
    detail: str = ""

    def __str__(self):
        where = f" p{list(self.positions)}" if self.positions else ""
        extra = f" ({self.detail})" if self.detail else ""
        return f"[{self.t * 1e3:.3f}ms] {self.kind}{where}{extra}"


@dataclass
class TimelineAttempt:
    """One pass through ``recover_positions``, parsed from events."""

    positions: Tuple[int, ...]
    started_at: float
    phases: Dict[str, float] = field(default_factory=dict)
    committed: bool = False
    ended_at: Optional[float] = None

    @property
    def total_s(self) -> float:
        """Sum of the per-phase durations (== RecoveryReport.total_s)."""
        return sum(self.phases.values())

    @property
    def span_s(self) -> Optional[float]:
        """Wall span initializing -> committed (None while in flight)."""
        if self.ended_at is None:
            return None
        return self.ended_at - self.started_at


class RecoveryTimeline:
    """Append-only event log + attempt parser."""

    def __init__(self):
        self.events: List[TimelineEvent] = []

    @property
    def enabled(self) -> bool:
        return True

    def record(self, kind: str, positions: Sequence[int] = (),
               detail: str = "", t: float = 0.0) -> None:
        if kind not in TIMELINE_EVENT_KINDS:
            raise ValueError(f"unknown timeline event kind {kind!r}")
        self.events.append(TimelineEvent(t=t, kind=kind,
                                         positions=tuple(positions),
                                         detail=detail))

    # -- parsing ---------------------------------------------------------------

    def attempts(self) -> List[TimelineAttempt]:
        """Recovery attempts in order; aborted ones have committed=False."""
        attempts: List[TimelineAttempt] = []
        current: Optional[TimelineAttempt] = None
        marks: Dict[str, float] = {}
        for event in self.events:
            if event.kind == "initializing":
                current = TimelineAttempt(positions=event.positions,
                                          started_at=event.t)
                attempts.append(current)
                marks = {"initializing": event.t}
            elif current is None:
                continue
            elif event.kind == "spawned":
                current.phases["initialization"] = \
                    event.t - marks.get("initializing", event.t)
            elif event.kind == "fetching":
                marks["fetching"] = event.t
            elif event.kind == "fetched":
                current.phases["state_recovery"] = \
                    event.t - marks.get("fetching", event.t)
            elif event.kind == "rerouting":
                marks["rerouting"] = event.t
            elif event.kind == "committed":
                current.phases["rerouting"] = \
                    event.t - marks.get("rerouting", event.t)
                current.committed = True
                current.ended_at = event.t
                current = None
        return attempts

    def committed_attempts(self) -> List[TimelineAttempt]:
        return [a for a in self.attempts() if a.committed]

    # -- export / rendering ------------------------------------------------------

    def as_dicts(self) -> List[Dict]:
        """JSON-friendly structured report (fig13 / soak consumption)."""
        return [{"t_s": e.t, "kind": e.kind, "positions": list(e.positions),
                 "detail": e.detail} for e in self.events]

    def chrome_events(self, tid: int = 9_999) -> List[Dict]:
        """The timeline as instant events for the Chrome trace export."""
        return [{"name": e.kind, "cat": "recovery", "ph": "i",
                 "ts": e.t * 1e6, "pid": 0, "tid": tid, "s": "g",
                 "args": {"positions": list(e.positions),
                          "detail": e.detail}}
                for e in self.events]

    def render(self) -> str:
        """An aligned text report of events + per-attempt durations."""
        from ..metrics.reporting import format_table
        rows = [(f"{e.t * 1e3:.3f}", e.kind,
                 ",".join(str(p) for p in e.positions) or "-",
                 e.detail or "-") for e in self.events]
        text = format_table(["t (ms)", "event", "positions", "detail"], rows,
                            title="recovery timeline")
        lines = [text]
        for i, attempt in enumerate(self.attempts()):
            status = "committed" if attempt.committed else "aborted"
            phases = "  ".join(
                f"{name}={attempt.phases.get(name, 0.0) * 1e3:.3f}ms"
                for name in PHASE_NAMES)
            lines.append(f"attempt {i} p{list(attempt.positions)} {status}: "
                         f"{phases}  total={attempt.total_s * 1e3:.3f}ms")
        return "\n".join(lines)


class NullTimeline:
    """Telemetry-disabled timeline: records nothing."""

    __slots__ = ()
    events: List[TimelineEvent] = []

    @property
    def enabled(self) -> bool:
        return False

    def record(self, kind: str, positions: Sequence[int] = (),
               detail: str = "", t: float = 0.0) -> None:
        pass

    def attempts(self) -> List[TimelineAttempt]:
        return []

    def committed_attempts(self) -> List[TimelineAttempt]:
        return []

    def as_dicts(self) -> List[Dict]:
        return []

    def chrome_events(self, tid: int = 9_999) -> List[Dict]:
        return []

    def render(self) -> str:
        return ""


NULL_TIMELINE = NullTimeline()
