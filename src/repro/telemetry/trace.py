"""Per-packet transaction tracing with Chrome ``trace_event`` export.

A :class:`PacketTracer` records *span events* -- enter/exit middlebox,
lock acquire, critical section, replicate, buffer-hold, release --
keyed by packet id.  Sampling is deterministic (``pid % sample_every
== 0``) so traced runs reproduce exactly, and a hard event cap bounds
memory under soak load.  Timestamps are virtual-time seconds at record
time and microseconds in the export, which is the unit
``chrome://tracing`` / Perfetto expect.

Export format (documented in PROTOCOL.md §7): the JSON object form of
the Chrome Trace Event spec --

* top level: ``{"traceEvents": [...], "displayTimeUnit": "ms"}``
* every event: ``name`` (str), ``cat`` (str), ``ph`` (one of ``X i b e
  M``), ``ts`` (µs, number), ``pid`` (the *packet* id; Chrome's
  "process" lane), ``tid`` (the chain position / thread lane)
* ``X`` (complete) events add ``dur`` (µs, >= 0)
* ``b``/``e`` (async begin/end) events add ``id``
* ``M`` (metadata) events name the pid/tid lanes
* ``C`` (counter) events carry an ``args`` object of numeric series
  values (rendered as stacked counter tracks by the viewer)
* optional ``args`` must be a JSON object

:func:`validate_chrome_trace` checks exactly this schema; CI runs it
against a fixed-seed export on every push.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["PacketTracer", "NULL_TRACER", "NullTracer",
           "validate_chrome_trace", "SPAN_PHASES"]

#: Phases a trace event may carry (subset of the Chrome spec we emit).
SPAN_PHASES = ("X", "i", "b", "e", "M", "C")

#: Default hard cap on retained events (soak safety).
DEFAULT_MAX_EVENTS = 200_000


class PacketTracer:
    """Records sampled per-packet span events in virtual time."""

    def __init__(self, sample_every: int = 1,
                 max_events: int = DEFAULT_MAX_EVENTS):
        if sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        self.sample_every = sample_every
        self.max_events = max_events
        self.events: List[Dict] = []
        self.dropped = 0
        self._thread_names: Dict[int, str] = {}

    @property
    def enabled(self) -> bool:
        return True

    # -- sampling ------------------------------------------------------------

    def wants(self, pid: int) -> bool:
        """Deterministic sampling decision for one packet id.

        ``max_events=0`` disables span sampling outright (metrics and
        timelines still collect) -- nothing could be retained anyway.
        """
        return self.max_events > 0 and pid % self.sample_every == 0

    # -- recording -----------------------------------------------------------

    def _emit(self, event: Dict) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def complete(self, pid: int, name: str, cat: str,
                 start_s: float, end_s: float, tid: int = 0, **args) -> None:
        """A span with known start and end (Chrome ``X`` event)."""
        self._emit({"name": name, "cat": cat, "ph": "X",
                    "ts": start_s * 1e6, "dur": max(0.0, end_s - start_s) * 1e6,
                    "pid": pid, "tid": tid, "args": args})

    def instant(self, pid: int, name: str, cat: str, t_s: float,
                tid: int = 0, **args) -> None:
        """A point-in-time marker (Chrome ``i`` event)."""
        self._emit({"name": name, "cat": cat, "ph": "i", "ts": t_s * 1e6,
                    "pid": pid, "tid": tid, "s": "t", "args": args})

    def begin_async(self, pid: int, name: str, cat: str, t_s: float,
                    tid: int = 0, **args) -> None:
        """Open an async span (overlapping holds; Chrome ``b`` event)."""
        self._emit({"name": name, "cat": cat, "ph": "b", "ts": t_s * 1e6,
                    "pid": pid, "tid": tid, "id": pid, "args": args})

    def end_async(self, pid: int, name: str, cat: str, t_s: float,
                  tid: int = 0, **args) -> None:
        self._emit({"name": name, "cat": cat, "ph": "e", "ts": t_s * 1e6,
                    "pid": pid, "tid": tid, "id": pid, "args": args})

    def counter(self, name: str, cat: str, t_s: float, tid: int = 0,
                **values: float) -> None:
        """A sampled counter point (Chrome ``C`` event).

        ``values`` become the event's ``args`` -- each key renders as
        one series on the counter track.  Counter events live on
        ``pid 0`` (they describe the system, not a packet).
        """
        self._emit({"name": name, "cat": cat, "ph": "C", "ts": t_s * 1e6,
                    "pid": 0, "tid": tid, "args": dict(values)})

    def set_thread_name(self, tid: int, name: str) -> None:
        """Label a ``tid`` lane (chain position) in the viewer."""
        self._thread_names[tid] = name

    # -- export ----------------------------------------------------------------

    def chrome_events(self) -> List[Dict]:
        """All events plus lane-naming metadata, ready for export."""
        meta = [{"name": "thread_name", "cat": "__metadata", "ph": "M",
                 "ts": 0, "pid": 0, "tid": tid, "args": {"name": label}}
                for tid, label in sorted(self._thread_names.items())]
        return meta + list(self.events)

    def export(self, path: Optional[str] = None,
               extra_events: Optional[List[Dict]] = None) -> Dict:
        """The Chrome trace object; written to ``path`` when given."""
        trace = {
            "traceEvents": self.chrome_events() + list(extra_events or []),
            "displayTimeUnit": "ms",
            "otherData": {
                "producer": "repro.telemetry",
                "sample_every": self.sample_every,
                "dropped_events": self.dropped,
            },
        }
        if path is not None:
            with open(path, "w") as handle:
                json.dump(trace, handle)
        return trace


class NullTracer:
    """Telemetry-disabled tracer: samples nothing, stores nothing."""

    __slots__ = ()
    sample_every = 0
    dropped = 0
    events: List[Dict] = []

    @property
    def enabled(self) -> bool:
        return False

    def wants(self, pid: int) -> bool:
        return False

    def complete(self, *args, **kwargs) -> None:
        pass

    def instant(self, *args, **kwargs) -> None:
        pass

    def begin_async(self, *args, **kwargs) -> None:
        pass

    def end_async(self, *args, **kwargs) -> None:
        pass

    def counter(self, *args, **kwargs) -> None:
        pass

    def set_thread_name(self, tid: int, name: str) -> None:
        pass

    def chrome_events(self) -> List[Dict]:
        return []

    def export(self, path: Optional[str] = None,
               extra_events: Optional[List[Dict]] = None) -> Dict:
        return {"traceEvents": [], "displayTimeUnit": "ms", "otherData": {}}


NULL_TRACER = NullTracer()


def validate_chrome_trace(trace: object) -> List[str]:
    """Check an export against the documented schema; returns problems.

    An empty list means the trace is valid.  This is the schema CI
    asserts on the fixed-seed smoke artifact.
    """
    problems: List[str] = []
    if not isinstance(trace, dict):
        return ["top level is not an object"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for key, kinds in (("name", str), ("cat", str), ("ph", str)):
            if not isinstance(event.get(key), kinds):
                problems.append(f"{where}: missing/invalid {key!r}")
        phase = event.get("ph")
        if phase not in SPAN_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        for key in ("ts", "pid", "tid"):
            if not isinstance(event.get(key), (int, float)):
                problems.append(f"{where}: missing/invalid {key!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        if phase in ("b", "e") and "id" not in event:
            problems.append(f"{where}: async event needs id")
        if "args" in event and not isinstance(event["args"], dict):
            problems.append(f"{where}: args is not an object")
        if phase == "C":
            series = event.get("args")
            if not isinstance(series, dict) or not series:
                problems.append(
                    f"{where}: C event needs a non-empty args object")
            elif not all(isinstance(v, (int, float))
                         for v in series.values()):
                problems.append(f"{where}: C event args must be numeric")
    return problems
