"""Chain-wide telemetry: metric registry, packet tracing, recovery timelines.

One :class:`Telemetry` object bundles the three observability surfaces
this reproduction exposes (PROTOCOL.md §7 documents the schema):

* :class:`MetricRegistry` -- named counters/gauges/histograms that the
  STM (lock waits, wounds, retries), the core data plane (piggyback
  bytes, pruning, buffer hold time, commit-vector lag), the network
  (control drops/dups/retries), and the orchestrator (detection and
  per-phase recovery latencies) register into.
* :class:`PacketTracer` -- sampled per-packet span events exported as
  Chrome ``trace_event`` JSON (open in ``chrome://tracing``/Perfetto).
* :class:`RecoveryTimeline` -- chaos + orchestrator events stitched
  into structured per-attempt phase durations (consumed by Fig 13 and
  the soak auditor).

Pass a ``Telemetry`` to :class:`~repro.core.FTCChain` and
:class:`~repro.orchestration.Orchestrator` to enable collection; the
default is :data:`NULL_TELEMETRY`, whose instruments are shared no-op
singletons -- instrumentation hooks then cost one no-op method call,
touch no simulation state, and leave results bit-identical to an
uninstrumented build.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .registry import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    NULL_REGISTRY,
    NullRegistry,
)
from .timeline import (
    NULL_TIMELINE,
    NullTimeline,
    RecoveryTimeline,
    TIMELINE_EVENT_KINDS,
    TimelineAttempt,
    TimelineEvent,
)
from .trace import (
    NULL_TRACER,
    NullTracer,
    PacketTracer,
    SPAN_PHASES,
    validate_chrome_trace,
)
from ..flight.recorder import NULL_FLIGHT  # no cycle: recorder is leaf-only
from ..perf.profiler import NULL_PROFILER  # no cycle: profiler is leaf-only

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_COUNTER",
    "NULL_FLIGHT",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_PROFILER",
    "NULL_REGISTRY",
    "NULL_TELEMETRY",
    "NULL_TIMELINE",
    "NULL_TRACER",
    "NullRegistry",
    "NullTelemetry",
    "NullTimeline",
    "NullTracer",
    "PacketTracer",
    "RecoveryTimeline",
    "SPAN_PHASES",
    "TIMELINE_EVENT_KINDS",
    "Telemetry",
    "TimelineAttempt",
    "TimelineEvent",
    "validate_chrome_trace",
]


class Telemetry:
    """The enabled bundle: registry + tracer + timeline."""

    def __init__(self, sample_every: int = 1,
                 max_trace_events: Optional[int] = None, flight=None,
                 profiler=None):
        self.registry = MetricRegistry()
        if max_trace_events is None:
            self.tracer = PacketTracer(sample_every=sample_every)
        else:
            self.tracer = PacketTracer(sample_every=sample_every,
                                       max_events=max_trace_events)
        self.timeline = RecoveryTimeline()
        #: Causal flight recorder (PR 5); NULL_FLIGHT unless a run opts
        #: in with ``--flight`` / ``SoakConfig.flight``.
        self.flight = flight if flight is not None else NULL_FLIGHT
        #: Per-stage cost attribution (PROTOCOL.md §13); NULL_PROFILER
        #: unless a perf run passes a StageProfiler.
        self.profiler = profiler if profiler is not None else NULL_PROFILER

    @property
    def enabled(self) -> bool:
        return True

    def start_window(self, now: float) -> None:
        """Cut histogram warm-up windows (mirrors the meters' cut)."""
        self.registry.start_window(now)

    def summary_table(self) -> str:
        """The post-run "top" text summary (``format_table``-based)."""
        from ..metrics.reporting import format_table
        rows = self.registry.rows()
        if not rows:
            return "telemetry: no metrics recorded"
        table = format_table(
            ["metric", "type", "count/value", "mean", "p50", "p99", "max"],
            rows, title="telemetry summary")
        traced = len(self.tracer.events)
        tail = (f"trace: {traced} span events recorded "
                f"(sampling 1/{self.tracer.sample_every}"
                f"{f', {self.tracer.dropped} dropped at cap' if self.tracer.dropped else ''})")
        return f"{table}\n{tail}"

    def export_chrome(self, path: Optional[str] = None,
                      include_timeline: bool = True) -> Dict:
        """Chrome ``trace_event`` JSON (spans + timeline instants)."""
        extra: List[Dict] = []
        if include_timeline:
            extra = self.timeline.chrome_events()
        return self.tracer.export(path, extra_events=extra)


class NullTelemetry:
    """Telemetry disabled: every surface is a shared no-op singleton."""

    __slots__ = ()
    registry = NULL_REGISTRY
    tracer = NULL_TRACER
    timeline = NULL_TIMELINE
    flight = NULL_FLIGHT
    profiler = NULL_PROFILER

    @property
    def enabled(self) -> bool:
        return False

    def start_window(self, now: float) -> None:
        pass

    def summary_table(self) -> str:
        return ""

    def export_chrome(self, path: Optional[str] = None,
                      include_timeline: bool = True) -> Dict:
        return self.tracer.export(path)


NULL_TELEMETRY = NullTelemetry()
