"""Metric registry: counters, gauges, and windowed histograms.

Subsystems register named instruments into one :class:`MetricRegistry`
per deployment; the registry renders the post-run "top" summary and
feeds the CI telemetry smoke.  Histograms live in *virtual time*: every
observation is stamped with the simulation clock, a
:meth:`Histogram.start_window` discards warm-up samples exactly the way
:class:`repro.metrics.ThroughputMeter` does, and percentiles come from
a bounded reservoir so a soak run cannot grow memory without bound.

The null variants (:data:`NULL_REGISTRY` and the shared null
instruments it hands out) make instrumentation hooks zero-overhead when
telemetry is disabled: every ``inc``/``set``/``observe`` is a no-op
method on a singleton, no sample is stored, and -- crucially -- nothing
touches the simulation clock or any RNG stream, so instrumented and
uninstrumented runs are bit-identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_REGISTRY",
    "NullRegistry",
]

#: Samples a histogram retains for percentile estimation (ring buffer).
DEFAULT_RESERVOIR = 4096


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self):
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that goes up and down (queue depths, pending work)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self):
        return f"<Gauge {self.name}={self.value}>"


class Histogram:
    """Distribution summary with virtual-time windowing.

    Running aggregates (count/sum/min/max) are exact; percentiles are
    estimated from a bounded ring-buffer reservoir of the most recent
    ``reservoir`` samples.  :meth:`start_window` resets everything so
    warm-up traffic never pollutes reported distributions.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_reservoir",
                 "_capacity", "_next", "window_start")

    def __init__(self, name: str, reservoir: int = DEFAULT_RESERVOIR):
        self.name = name
        self._capacity = reservoir
        self.window_start = 0.0
        self._reset()

    def _reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._reservoir: List[Tuple[float, float]] = []
        self._next = 0

    def observe(self, value: float, t: float = 0.0) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._reservoir) < self._capacity:
            self._reservoir.append((t, value))
        else:
            self._reservoir[self._next] = (t, value)
            self._next = (self._next + 1) % self._capacity

    def start_window(self, now: float) -> None:
        """Discard everything observed before ``now`` (warm-up cut)."""
        self.window_start = now
        self._reset()

    def mean(self) -> float:
        if self.count == 0:
            return math.nan
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Estimated percentile over the retained reservoir."""
        if not self._reservoir:
            return math.nan
        ordered = sorted(v for _, v in self._reservoir)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
        }

    def __repr__(self):
        return f"<Histogram {self.name} n={self.count} mean={self.mean():.3g}>"


class MetricRegistry:
    """Create-or-return named instruments; one per deployment."""

    def __init__(self):
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        return True

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  reservoir: int = DEFAULT_RESERVOIR) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, reservoir)
        return instrument

    def start_window(self, now: float) -> None:
        """Cut every histogram's warm-up window at ``now``."""
        for histogram in self.histograms.values():
            histogram.start_window(now)

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view (counters/gauges as numbers, hists as summaries)."""
        out: Dict[str, object] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, gauge in self.gauges.items():
            out[name] = gauge.value
        for name, histogram in self.histograms.items():
            out[name] = histogram.summary()
        return out

    def merge(self, other: "MetricRegistry") -> None:
        """Fold another registry into this one (soak aggregation).

        Counters add; gauges keep the latest (other wins); histograms
        merge aggregates exactly and concatenate reservoirs (truncated
        to capacity, so merged percentiles stay estimates).
        """
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, theirs in other.histograms.items():
            ours = self.histogram(name, reservoir=theirs._capacity)
            ours.count += theirs.count
            ours.total += theirs.total
            ours.min = min(ours.min, theirs.min)
            ours.max = max(ours.max, theirs.max)
            for t, value in theirs._reservoir:
                if len(ours._reservoir) < ours._capacity:
                    ours._reservoir.append((t, value))
                else:
                    ours._reservoir[ours._next] = (t, value)
                    ours._next = (ours._next + 1) % ours._capacity

    def rows(self) -> List[Tuple]:
        """(metric, type, count/value, mean, p50, p99, max) table rows."""
        rows: List[Tuple] = []
        for name in sorted(self.counters):
            rows.append((name, "counter", self.counters[name].value,
                         "", "", "", ""))
        for name in sorted(self.gauges):
            rows.append((name, "gauge", self.gauges[name].value,
                         "", "", "", ""))
        for name in sorted(self.histograms):
            s = self.histograms[name].summary()
            rows.append((name, "hist", s["count"], _fmt(s["mean"]),
                         _fmt(s["p50"]), _fmt(s["p99"]), _fmt(s["max"])))
        return rows


def _fmt(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    return f"{value:.4g}"


# -- null variants (telemetry disabled) -------------------------------------

class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0

    def observe(self, value: float, t: float = 0.0) -> None:
        pass

    def start_window(self, now: float) -> None:
        pass

    def mean(self) -> float:
        return math.nan

    def percentile(self, q: float) -> float:
        return math.nan

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "mean": math.nan, "p50": math.nan,
                "p99": math.nan, "min": math.nan, "max": math.nan}


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullRegistry:
    """Hands out shared no-op instruments; never stores anything."""

    __slots__ = ()

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str) -> _NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str,
                  reservoir: int = DEFAULT_RESERVOIR) -> _NullHistogram:
        return NULL_HISTOGRAM

    def start_window(self, now: float) -> None:
        pass

    def snapshot(self) -> Dict[str, object]:
        return {}

    def rows(self) -> List[Tuple]:
        return []


NULL_REGISTRY = NullRegistry()
