"""Post-mortem explain engine: walk a flight dump's causal chains.

``repro explain <dump.json>`` loads a :class:`FlightRecorder` dump and
reconstructs the causal chain behind one question:

* ``--packet PID`` -- one packet's journey: STM commits, piggyback
  append/apply hops, buffer hold/release, channel repairs;
* ``--recovery POS`` -- one recovery of chain position POS: suspicion,
  corroboration, (under an ensemble) election + journal writes, state
  fetches, journal replay, and the fenced re-steer -- cross-checked
  against the embedded RecoveryTimeline, whose phase-boundary
  timestamps must match the flight events *exactly*;
* ``--epoch E`` -- one leadership term: the election round that won
  epoch E, every command it journaled, and how it ended (step-down or
  fencing).

Reconstruction walks ``parent_ref`` links backwards from the terminal
event.  A ``parent_ref`` older than the oldest retained event means
the bounded ring shed that history; the walk reports the truncation
instead of silently pretending the chain starts there.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["load_dump", "walk_back", "explain_packet", "explain_recovery",
           "explain_epoch", "crosscheck_recovery"]

#: Flight kinds that mirror RecoveryTimeline phase boundaries 1:1.
PHASE_KINDS = ("initializing", "spawned", "fetching", "fetched",
               "rerouting", "committed")

_POSITIONS_RE = re.compile(r"positions=\[([0-9, ]*)\]")


def load_dump(path: str) -> Dict[str, Any]:
    """Load and minimally validate a flight dump file."""
    with open(path) as handle:
        dump = json.load(handle)
    if not isinstance(dump, dict) or "events" not in dump:
        raise ValueError(f"{path}: not a flight dump (no events)")
    return dump


def _index(dump: Dict[str, Any]) -> Dict[int, Dict[str, Any]]:
    return {event["ref"]: event for event in dump["events"]}


def _positions_of(event: Dict[str, Any]) -> List[int]:
    """Chain positions an event names in its detail (``positions=[...]``)."""
    match = _POSITIONS_RE.search(event.get("detail", ""))
    if not match:
        return []
    body = match.group(1).strip()
    return [int(item) for item in body.split(",")] if body else []


def walk_back(dump: Dict[str, Any],
              ref: int) -> Tuple[List[Dict[str, Any]], int]:
    """Follow ``parent_ref`` links from ``ref`` back to the chain root.

    Returns ``(events oldest-first, truncated_parent)`` where
    ``truncated_parent`` is the first parent ref that fell off the ring
    (-1 when the full chain was retained).
    """
    index = _index(dump)
    chain: List[Dict[str, Any]] = []
    truncated = -1
    seen = set()
    cursor: Optional[int] = ref
    while cursor is not None and cursor not in seen:
        seen.add(cursor)
        event = index.get(cursor)
        if event is None:
            truncated = cursor
            break
        chain.append(event)
        cursor = event.get("parent_ref")
    chain.reverse()
    return chain, truncated


def _format_event(event: Dict[str, Any], indent: str = "  ") -> str:
    t_ms = event["t"] * 1e3
    who = []
    if "pid" in event:
        who.append(f"pid={event['pid']}")
    if "epoch" in event:
        who.append(f"epoch={event['epoch']}")
    if "depvec" in event:
        vec = ",".join(f"{k}:{v}" for k, v in sorted(
            event["depvec"].items(), key=lambda kv: int(kv[0])))
        who.append(f"depvec={{{vec}}}")
    extra = f" [{' '.join(who)}]" if who else ""
    detail = f"  {event['detail']}" if event.get("detail") else ""
    return (f"{indent}#{event['ref']:<6d} {t_ms:10.3f}ms  "
            f"{event['component']}/{event['kind']}{extra}{detail}")


def _render_chain(title: str, chain: Sequence[Dict[str, Any]],
                  truncated: int, dump: Dict[str, Any]) -> List[str]:
    lines = [title]
    context = dump.get("context") or {}
    if context:
        ctx = " ".join(f"{key}={value}" for key, value in context.items())
        lines.append(f"  context: {ctx}")
    if truncated >= 0:
        lines.append(f"  ... causal chain truncated: parent #{truncated} "
                     f"was dropped from the ring "
                     f"({dump.get('dropped', 0)} events shed)")
    for event in chain:
        lines.append(_format_event(event))
    if not chain:
        lines.append("  (no events)")
    return lines


# -- --packet ----------------------------------------------------------------


def explain_packet(dump: Dict[str, Any], pid: int) -> str:
    """One packet's causal chain, walked back from its last event."""
    last = None
    for event in dump["events"]:
        if event.get("pid") == pid:
            last = event
    if last is None:
        return f"packet {pid}: no flight events (not sampled, or shed)"
    chain, truncated = walk_back(dump, last["ref"])
    # The pid chain may have been spliced onto another chain by an
    # explicit parent; keep the packet's own events plus any direct
    # causes that name no pid (e.g. a channel reset that delayed it).
    chain = [e for e in chain if e.get("pid") in (pid, None)]
    return "\n".join(_render_chain(f"packet {pid}: {len(chain)} events",
                                   chain, truncated, dump))


# -- --recovery ----------------------------------------------------------------


def _recovery_terminal(dump: Dict[str, Any],
                       position: int) -> Optional[Dict[str, Any]]:
    """The last committed/abandoned recovery event covering ``position``."""
    terminal = None
    for event in dump["events"]:
        if (event["component"] == "recovery"
                and event["kind"] in ("committed", "abandoned")
                and position in _positions_of(event)):
            terminal = event
    return terminal


def explain_recovery(dump: Dict[str, Any], position: int) -> str:
    """Reconstruct one recovery of chain position ``position``."""
    terminal = _recovery_terminal(dump, position)
    if terminal is None:
        return (f"recovery of p{position}: no committed or abandoned "
                f"recovery found in this dump")
    full, truncated = walk_back(dump, terminal["ref"])
    # Trim the control-plane chain to this recovery: start at the
    # earliest suspicion of the position still linked in the walk.
    start = 0
    for i, event in enumerate(full):
        if (event["kind"] == "suspected"
                and position in _positions_of(event)):
            start = i
            break
    chain = full[start:]
    status = terminal["kind"]
    lines = _render_chain(
        f"recovery of p{position}: {status} at "
        f"{terminal['t'] * 1e3:.3f}ms ({len(chain)} causal events)",
        chain, truncated if start == 0 else -1, dump)
    problems = crosscheck_recovery(dump, chain)
    if problems:
        lines.append("  timeline cross-check: MISMATCH")
        lines.extend(f"    {problem}" for problem in problems)
    else:
        boundaries = sum(1 for e in chain if e["kind"] in PHASE_KINDS)
        lines.append(f"  timeline cross-check: OK "
                     f"({boundaries} phase boundaries match the "
                     f"RecoveryTimeline exactly)")
    return "\n".join(lines)


def crosscheck_recovery(dump: Dict[str, Any],
                        chain: Sequence[Dict[str, Any]]) -> List[str]:
    """Verify the chain's phase events against the embedded timeline.

    Every flight event whose kind is a §5.2 phase boundary must have an
    exactly-equal timestamped twin in the RecoveryTimeline (same kind,
    same positions, bitwise-equal virtual time).  Returns problems; an
    empty list means the two records agree.
    """
    timeline = dump.get("timeline") or []
    problems: List[str] = []
    for event in chain:
        if event["kind"] not in PHASE_KINDS:
            continue
        positions = _positions_of(event)
        twins = [rec for rec in timeline
                 if rec["kind"] == event["kind"]
                 and list(rec.get("positions", [])) == positions
                 and rec["t_s"] == event["t"]]
        if not twins:
            problems.append(
                f"flight #{event['ref']} {event['kind']} "
                f"positions={positions} at {event['t']!r}s has no "
                f"exact timeline twin")
    return problems


# -- --epoch -------------------------------------------------------------------


def explain_epoch(dump: Dict[str, Any], epoch: int) -> str:
    """Reconstruct one leadership term: election, commands, demise."""
    marker = f"epoch {epoch}"
    events = [event for event in dump["events"]
              if event.get("epoch") == epoch
              or (event["component"] in ("election", "journal", "fencing",
                                         "orch")
                  and marker in event.get("detail", ""))]
    if not events:
        return f"epoch {epoch}: no flight events in this dump"
    won = next((e for e in events if e["kind"] == "elected"), None)
    ended = next((e for e in reversed(events)
                  if e["kind"] in ("stepped-down", "fenced")), None)
    title = f"epoch {epoch}: {len(events)} events"
    if won is not None:
        title += f"; won at {won['t'] * 1e3:.3f}ms"
    if ended is not None:
        title += (f"; ended by {ended['kind']} at "
                  f"{ended['t'] * 1e3:.3f}ms")
    return "\n".join(_render_chain(title, events, -1, dump))
