"""``repro report``: one markdown post-run report per run.

Aggregates the three observability planes this repo has grown --
metrics (PR 2's registry), the recovery timeline, and PR 5's flight
recorder + SLO watchdog -- into a single human-readable markdown
document: run configuration, data-plane results, SLO verdicts with
worst observed values, recovery attempts, control-plane activity, and
a flight-ring summary with any trips that fired.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["render_report"]


def _md_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    lines = ["| " + " | ".join(headers) + " |",
             "|" + "|".join("---" for _ in headers) + "|"]
    lines.extend("| " + " | ".join(str(cell) for cell in row) + " |"
                 for row in rows)
    return lines


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def render_report(title: str, config: Dict, egress=None, telemetry=None,
                  watchdog=None, flight=None,
                  notes: Optional[List[str]] = None) -> str:
    """Render the full markdown run report."""
    lines: List[str] = [f"# {title}", ""]

    if config:
        lines.append("## Run configuration")
        lines.append("")
        lines.extend(_md_table(
            ["parameter", "value"],
            [[key, _fmt(value)] for key, value in config.items()]))
        lines.append("")

    if egress is not None:
        lines.append("## Data plane")
        lines.append("")
        rows = [["released packets", str(egress.throughput.count)],
                ["goodput", f"{egress.throughput.rate_mpps():.3f} Mpps "
                            f"({egress.throughput.rate_gbps():.2f} Gbps)"]]
        if len(egress.latency):
            rows.append(["latency mean", f"{egress.latency.mean_us():.1f} us"])
            rows.append(["latency p50",
                         f"{egress.latency.percentile_us(50):.1f} us"])
            rows.append(["latency p99",
                         f"{egress.latency.percentile_us(99):.1f} us"])
        lines.extend(_md_table(["measure", "value"], rows))
        lines.append("")

    if watchdog is not None:
        lines.append("## SLO verdicts")
        lines.append("")
        rows = []
        for objective in watchdog.objectives:
            indicator = objective.indicator
            breaches = [b for b in watchdog.breaches
                        if b.objective.indicator == indicator]
            worst = watchdog.worst.get(indicator)
            rows.append([
                str(objective),
                "BREACHED" if breaches else "met",
                str(len(breaches)),
                _fmt(worst) if worst is not None else "-",
            ])
        lines.extend(_md_table(
            ["objective", "verdict", "breach ticks", "worst observed"], rows))
        lines.append("")
        if watchdog.breaches:
            lines.append(f"{len(watchdog.breaches)} breach tick(s) over "
                         f"{watchdog.evaluations} evaluations; first: "
                         f"{watchdog.breaches[0]}")
            lines.append("")

    timeline = getattr(telemetry, "timeline", None)
    attempts = timeline.attempts() if timeline is not None else []
    if attempts:
        lines.append("## Recovery attempts")
        lines.append("")
        rows = []
        for i, attempt in enumerate(attempts):
            phases = attempt.phases
            rows.append([
                str(i),
                "p" + ",".join(str(p) for p in attempt.positions),
                "committed" if attempt.committed else "aborted",
                f"{phases.get('initialization', 0.0) * 1e3:.3f}",
                f"{phases.get('state_recovery', 0.0) * 1e3:.3f}",
                f"{phases.get('rerouting', 0.0) * 1e3:.3f}",
                f"{attempt.total_s * 1e3:.3f}",
            ])
        lines.extend(_md_table(
            ["#", "positions", "status", "init (ms)", "fetch (ms)",
             "reroute (ms)", "total (ms)"], rows))
        lines.append("")

    registry = getattr(telemetry, "registry", None)
    metric_rows = registry.rows() if registry is not None else []
    if metric_rows:
        lines.append("## Metrics")
        lines.append("")
        lines.extend(_md_table(
            ["metric", "type", "count/value", "mean", "p50", "p99", "max"],
            [[str(cell) if cell != "" else "-" for cell in row]
             for row in metric_rows]))
        lines.append("")

    if flight is not None and flight.enabled:
        lines.append("## Flight recorder")
        lines.append("")
        lines.append(f"{len(flight)} events retained "
                     f"(capacity {flight.capacity}, {flight.dropped} shed), "
                     f"{len(flight.trips)} trip(s).")
        if flight.trips:
            lines.append("")
            lines.extend(f"- trip: {reason}" for reason in flight.trips)
        by_component: Dict[str, int] = {}
        for event in flight.events:
            by_component[event.component] = \
                by_component.get(event.component, 0) + 1
        if by_component:
            lines.append("")
            lines.extend(_md_table(
                ["component", "events"],
                [[name, str(count)]
                 for name, count in sorted(by_component.items())]))
        lines.append("")

    for note in notes or []:
        lines.append(note)
        lines.append("")

    while lines and lines[-1] == "":
        lines.pop()
    return "\n".join(lines) + "\n"
