"""The causal flight recorder (PROTOCOL.md §10).

A :class:`FlightRecorder` is the chain's always-on black box: a
bounded ring buffer of structured causal events recorded at every
decision point of the system -- STM wound/wait/commit, piggyback
append/apply, buffer hold/release/shed, channel retransmit/NACK/reset,
recovery phases, elections, journal writes, and epoch fencing.  Where
PR 2's telemetry answers "how much / how fast", the flight recorder
answers "what happened, and in what causal order".

Every event carries the §10 schema::

    (ref, t, component, kind, pid, epoch, depvec, parent_ref, detail)

``ref`` is a monotonically increasing event id, never reused; it keeps
counting across ring overflow, so a dangling ``parent_ref`` below the
oldest retained event tells the explain engine exactly how much
history was shed.  ``parent_ref`` is the causal link: callers either
pass an explicit ``parent`` or name a *chain* -- a per-key cursor
(``"ctrl"`` for the control plane, ``"pid:<N>"`` for one packet's
journey) that threads consecutive events on that key into a linear
causal chain :mod:`repro.flight.explain` can walk backwards.

Determinism: the recorder touches no RNG and schedules nothing;
events are a pure function of the simulation, so two runs of one seed
produce byte-identical dumps.  Disabled (the default,
:data:`NULL_FLIGHT`), every hook is a no-op attribute read plus a
truth test -- fig5/fig13 stay bit-identical.

On an invariant violation or an :class:`UnrecoverableError` the
recorder *trips*: the full ring (plus the recovery timeline and metric
rows, when a telemetry bundle is passed) is dumped to JSON at
``autodump_path`` -- the artifact CI uploads and ``repro explain``
consumes.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["FlightEvent", "FlightRecorder", "NullFlightRecorder",
           "NULL_FLIGHT", "FLIGHT_COMPONENTS", "DUMP_VERSION"]

#: Components an event may come from (PROTOCOL.md §10, §12).
FLIGHT_COMPONENTS = ("stm", "piggyback", "buffer", "channel", "recovery",
                     "fencing", "orch", "election", "journal", "slo",
                     "chaos", "flight",
                     # Overload layer (§12): drop sites + actuators.
                     "nic", "link", "net", "admission", "brownout")

#: Schema version stamped into every dump.
DUMP_VERSION = 1

#: Default ring capacity: enough for several full soak schedules while
#: bounding a wedged run's memory to a few MB.
DEFAULT_CAPACITY = 65536


class FlightEvent:
    """One structured causal event (the §10 record)."""

    __slots__ = ("ref", "t", "component", "kind", "pid", "epoch",
                 "depvec", "parent_ref", "detail")

    def __init__(self, ref: int, t: float, component: str, kind: str,
                 pid: Optional[int] = None, epoch: Optional[int] = None,
                 depvec: Optional[Dict[int, int]] = None,
                 parent_ref: Optional[int] = None, detail: str = ""):
        self.ref = ref
        self.t = t
        self.component = component
        self.kind = kind
        self.pid = pid
        self.epoch = epoch
        self.depvec = depvec
        self.parent_ref = parent_ref
        self.detail = detail

    def as_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (compact: None fields are omitted)."""
        out: Dict[str, Any] = {"ref": self.ref, "t": self.t,
                               "component": self.component,
                               "kind": self.kind}
        if self.pid is not None:
            out["pid"] = self.pid
        if self.epoch is not None:
            out["epoch"] = self.epoch
        if self.depvec is not None:
            out["depvec"] = {str(k): v for k, v in self.depvec.items()}
        if self.parent_ref is not None:
            out["parent_ref"] = self.parent_ref
        if self.detail:
            out["detail"] = self.detail
        return out

    def __repr__(self):
        who = f" pid={self.pid}" if self.pid is not None else ""
        return (f"<FlightEvent #{self.ref} [{self.t * 1e3:.3f}ms] "
                f"{self.component}/{self.kind}{who}>")


class FlightRecorder:
    """Bounded, deterministic ring buffer of causal events."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 autodump_path: Optional[str] = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.autodump_path = autodump_path
        self._events: List[FlightEvent] = []
        #: First retained slot: the ring drops oldest-first by moving
        #: this cursor instead of paying O(n) list deletions per event.
        self._head = 0
        self._next_ref = 0
        self.dropped = 0
        #: Per-chain cursors: the last ref recorded on each causal chain.
        self._cursors: Dict[str, int] = {}
        #: Run context stamped into dumps (seed, chain config, ...).
        self.context: Dict[str, Any] = {}
        #: Reasons this recorder tripped (auto-dumped), in order.
        self.trips: List[str] = []
        self._dump_written: Optional[str] = None

    @property
    def enabled(self) -> bool:
        return True

    @property
    def events(self) -> List[FlightEvent]:
        """Retained events, oldest first."""
        if self._head:
            # Compact lazily so hot-path appends stay O(1) amortized.
            self._events = self._events[self._head:]
            self._head = 0
        return self._events

    def __len__(self) -> int:
        return len(self._events) - self._head

    # -- recording -----------------------------------------------------------

    def record(self, component: str, kind: str, t: float,
               pid: Optional[int] = None, epoch: Optional[int] = None,
               depvec: Optional[Dict[int, int]] = None, detail: str = "",
               chain: Optional[str] = None,
               parent: Optional[int] = None) -> int:
        """Append one event; returns its ``ref``.

        ``parent`` links the event explicitly; otherwise ``chain`` links
        it to the previous event recorded on the same chain key (and
        advances that chain's cursor to this event).
        """
        ref = self._next_ref
        self._next_ref += 1
        parent_ref = parent
        if parent_ref is None and chain is not None:
            parent_ref = self._cursors.get(chain)
        if chain is not None:
            self._cursors[chain] = ref
        if len(self._events) - self._head >= self.capacity:
            self.dropped += 1
            self._head += 1
            if self._head > self.capacity:
                self._events = self._events[self._head:]
                self._head = 0
        self._events.append(FlightEvent(
            ref=ref, t=t, component=component, kind=kind, pid=pid,
            epoch=epoch, depvec=dict(depvec) if depvec else None,
            parent_ref=parent_ref, detail=detail))
        return ref

    def chain_cursor(self, chain: str) -> Optional[int]:
        """The ref of the last event recorded on ``chain``, if any."""
        return self._cursors.get(chain)

    def set_context(self, **fields: Any) -> None:
        """Merge run-identifying fields (seed, chain config) into dumps."""
        self.context.update(fields)

    # -- dumping -------------------------------------------------------------

    def as_dicts(self) -> List[Dict[str, Any]]:
        return [event.as_dict() for event in self.events]

    def dump(self, reason: str = "demand",
             telemetry=None) -> Dict[str, Any]:
        """The full post-mortem dump object (PROTOCOL.md §10).

        ``telemetry`` -- the run's bundle, when available -- embeds the
        recovery timeline and metric rows so one file is self-contained
        for ``repro explain`` / CI artifacts.
        """
        out: Dict[str, Any] = {
            "version": DUMP_VERSION,
            "reason": reason,
            "context": dict(self.context),
            "dropped": self.dropped,
            "next_ref": self._next_ref,
            "trips": list(self.trips),
            "events": self.as_dicts(),
        }
        if telemetry is not None:
            out["timeline"] = telemetry.timeline.as_dicts()
            out["metrics"] = [list(row) for row in telemetry.registry.rows()]
        else:
            out["timeline"] = []
            out["metrics"] = []
        return out

    def dump_json(self, path: str, reason: str = "demand",
                  telemetry=None) -> str:
        with open(path, "w") as handle:
            json.dump(self.dump(reason=reason, telemetry=telemetry), handle,
                      indent=1)
        return path

    def trip(self, reason: str, telemetry=None,
             t: Optional[float] = None) -> Optional[str]:
        """An anomaly fired (invariant violation, unrecoverable error).

        Records a ``flight/trip`` event, and writes the auto-dump on the
        *first* trip (the ring then still holds the history that led
        here; later trips would only overwrite it with less context).
        Returns the dump path when one was written.
        """
        self.trips.append(reason)
        self.record("flight", "trip",
                    t=self._last_t() if t is None else t,
                    detail=reason, chain="ctrl")
        if self.autodump_path is not None and self._dump_written is None:
            self._dump_written = self.dump_json(
                self.autodump_path, reason=reason, telemetry=telemetry)
            return self._dump_written
        return None

    def _last_t(self) -> float:
        """Timestamp for recorder-originated events: the newest seen."""
        if len(self._events) > self._head:
            return self._events[-1].t
        return 0.0

    def __repr__(self):
        return (f"<FlightRecorder {len(self)}/{self.capacity} events, "
                f"{self.dropped} dropped, {len(self.trips)} trips>")


class NullFlightRecorder:
    """Recording disabled: every surface is a shared no-op.

    Instrumented code caches ``telemetry.flight`` and guards argument
    construction with ``if flight.enabled:`` -- the disabled cost is
    one attribute read and a truth test, and results stay bit-identical
    to an uninstrumented build (the same contract as the NULL_*
    telemetry singletons).
    """

    __slots__ = ()
    capacity = 0
    dropped = 0
    context: Dict[str, Any] = {}
    trips: List[str] = []
    events: List[FlightEvent] = []

    @property
    def enabled(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def record(self, component: str, kind: str, t: float,
               pid: Optional[int] = None, epoch: Optional[int] = None,
               depvec: Optional[Dict[int, int]] = None, detail: str = "",
               chain: Optional[str] = None,
               parent: Optional[int] = None) -> int:
        return -1

    def chain_cursor(self, chain: str) -> Optional[int]:
        return None

    def set_context(self, **fields: Any) -> None:
        pass

    def as_dicts(self) -> List[Dict[str, Any]]:
        return []

    def dump(self, reason: str = "demand", telemetry=None) -> Dict[str, Any]:
        return {"version": DUMP_VERSION, "reason": reason, "context": {},
                "dropped": 0, "next_ref": 0, "trips": [], "events": [],
                "timeline": [], "metrics": []}

    def dump_json(self, path: str, reason: str = "demand",
                  telemetry=None) -> str:
        raise RuntimeError("flight recording is disabled; nothing to dump")

    def trip(self, reason: str, telemetry=None,
             t: Optional[float] = None) -> Optional[str]:
        return None


NULL_FLIGHT = NullFlightRecorder()
