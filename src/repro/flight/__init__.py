"""Always-on black box: causal flight recorder, explain engine, SLOs.

PR 5's observability subsystem (PROTOCOL.md §10):

* :mod:`repro.flight.recorder` -- the bounded deterministic ring of
  structured causal events, no-op when disabled;
* :mod:`repro.flight.explain` -- post-mortem reconstruction of causal
  chains from a dump (``repro explain``);
* :mod:`repro.flight.slo` -- windowed service-level objectives
  evaluated during runs, breaches recorded as flight events;
* :mod:`repro.flight.report` -- the ``repro report`` markdown run
  report aggregating metrics + breaches + timelines.
"""

from .recorder import (FLIGHT_COMPONENTS, NULL_FLIGHT, DUMP_VERSION,
                       FlightEvent, FlightRecorder, NullFlightRecorder)
from .explain import (crosscheck_recovery, explain_epoch, explain_packet,
                      explain_recovery, load_dump, walk_back)
from .slo import (SLOBreach, SLOObjective, SLOWatchdog, parse_slo_spec,
                  run_probes)
from .report import render_report

__all__ = [
    "FLIGHT_COMPONENTS", "NULL_FLIGHT", "DUMP_VERSION", "FlightEvent",
    "FlightRecorder", "NullFlightRecorder",
    "crosscheck_recovery", "explain_epoch", "explain_packet",
    "explain_recovery", "load_dump", "walk_back",
    "SLOBreach", "SLOObjective", "SLOWatchdog", "parse_slo_spec",
    "run_probes",
    "render_report",
]
