"""SLO watchdog: windowed objectives against declarative thresholds.

A :class:`SLOWatchdog` periodically evaluates a set of
:class:`SLOObjective` thresholds against *probes* -- zero-argument
callables returning the current value of a service-level indicator
(p99 latency, egress goodput, detection/recovery time, retransmit
rate) or ``None`` while no data exists.  Each breach becomes an
:class:`SLOBreach`, a ``slo/breach`` flight event, and an
``slo/breaches`` counter increment; ``repro report`` aggregates them
into the run report.

Probes own their windowing: rate-style indicators (goodput,
retransmit rate) are closures that difference their source counters
between watchdog ticks, so the watchdog itself stays a dumb evaluator
and determinism is trivial (evaluation rides ``schedule_callback`` at
a fixed cadence and mutates no simulation state).

Objectives are declarative and parseable: ``p99_latency_us<=250`` --
the grammar the CLI's ``--slo`` flag accepts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

__all__ = ["SLOObjective", "SLOBreach", "SLOWatchdog", "parse_slo_spec",
           "run_probes", "DEFAULT_EVAL_INTERVAL_S"]

#: Watchdog evaluation cadence (virtual seconds).
DEFAULT_EVAL_INTERVAL_S = 2e-3

_OPS = {
    "<=": lambda value, threshold: value <= threshold,
    ">=": lambda value, threshold: value >= threshold,
}


@dataclass(frozen=True)
class SLOObjective:
    """One declarative objective: ``indicator op threshold``."""

    indicator: str
    op: str
    threshold: float

    def __post_init__(self):
        if self.op not in _OPS:
            raise ValueError(f"unknown SLO operator {self.op!r} "
                             f"(use <= or >=)")

    def met_by(self, value: float) -> bool:
        return _OPS[self.op](value, self.threshold)

    def __str__(self):
        return f"{self.indicator}{self.op}{self.threshold:g}"


@dataclass(frozen=True)
class SLOBreach:
    """One evaluation tick where an objective was violated."""

    objective: SLOObjective
    observed: float
    t: float

    def as_dict(self) -> Dict:
        return {"objective": str(self.objective),
                "observed": self.observed, "t_s": self.t}

    def __str__(self):
        return (f"[{self.t * 1e3:.3f}ms] SLO breach: "
                f"{self.objective} (observed {self.observed:g})")


def parse_slo_spec(text: str) -> List[SLOObjective]:
    """Parse ``indicator<=value,indicator>=value,...`` (CLI ``--slo``)."""
    objectives: List[SLOObjective] = []
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        for op in ("<=", ">="):
            if op in item:
                indicator, _, threshold = item.partition(op)
                try:
                    value = float(threshold)
                except ValueError:
                    raise ValueError(f"bad SLO threshold in {item!r}")
                if not indicator.strip():
                    raise ValueError(f"bad SLO indicator in {item!r}")
                objectives.append(SLOObjective(indicator.strip(), op, value))
                break
        else:
            raise ValueError(
                f"bad SLO objective {item!r} (want indicator<=value "
                f"or indicator>=value)")
    if not objectives:
        raise ValueError("empty SLO spec")
    return objectives


class SLOWatchdog:
    """Evaluates objectives on a fixed virtual-time cadence."""

    def __init__(self, sim, objectives: List[SLOObjective],
                 probes: Dict[str, Callable[[], Optional[float]]],
                 telemetry=None, interval_s: float = DEFAULT_EVAL_INTERVAL_S,
                 until_s: Optional[float] = None):
        from ..telemetry import NULL_TELEMETRY
        self.sim = sim
        self.objectives = list(objectives)
        self.probes = dict(probes)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.interval_s = interval_s
        self.until_s = until_s
        self.breaches: List[SLOBreach] = []
        #: Actuator hook (PROTOCOL.md §12.3): each callable receives
        #: the list of breaches every evaluation produced -- an empty
        #: list is a *clean* tick, which brownout hysteresis needs to
        #: see just as much as the breaches themselves.
        self.listeners: List[Callable[[List[SLOBreach]], None]] = []
        self.evaluations = 0
        #: Last observed value per indicator (the report's "worst" column
        #: tracks extremes separately below).
        self.last: Dict[str, float] = {}
        self.worst: Dict[str, float] = {}
        self._m_breaches = self.telemetry.registry.counter("slo/breaches")
        self._m_evals = self.telemetry.registry.counter("slo/evaluations")
        self._flight = self.telemetry.flight
        self._stopped = False
        unknown = [o.indicator for o in self.objectives
                   if o.indicator not in self.probes]
        if unknown:
            raise ValueError(f"no probe for SLO indicator(s) {unknown}")

    def start(self) -> None:
        self.sim.schedule_callback(self.interval_s, self._tick)

    def stop(self) -> None:
        self._stopped = True

    def _tick(self) -> None:
        if self._stopped:
            return
        self.evaluate()
        if self.until_s is None or self.sim.now + self.interval_s <= self.until_s:
            self.sim.schedule_callback(self.interval_s, self._tick)

    def evaluate(self) -> List[SLOBreach]:
        """One evaluation pass; returns the breaches it produced."""
        self.evaluations += 1
        self._m_evals.inc()
        now = self.sim.now
        new: List[SLOBreach] = []
        for objective in self.objectives:
            value = self.probes[objective.indicator]()
            if value is None:
                continue
            self.last[objective.indicator] = value
            worst = self.worst.get(objective.indicator)
            if worst is None or (value > worst if objective.op == "<="
                                 else value < worst):
                self.worst[objective.indicator] = value
            if objective.met_by(value):
                continue
            breach = SLOBreach(objective=objective, observed=value, t=now)
            new.append(breach)
            self.breaches.append(breach)
            self._m_breaches.inc()
            if self._flight.enabled:
                self._flight.record(
                    "slo", "breach", t=now,
                    detail=f"{objective} observed={value:g}", chain="slo")
        for listener in self.listeners:
            listener(new)
        return new

    def as_dicts(self) -> List[Dict]:
        return [breach.as_dict() for breach in self.breaches]

    @property
    def ok(self) -> bool:
        return not self.breaches


def run_probes(egress, chain=None, orchestrator=None
               ) -> Dict[str, Callable[[], Optional[float]]]:
    """The standard probe set for a CLI run / soak schedule.

    Indicators (PROTOCOL.md §10.3):

    * ``p99_latency_us`` -- egress latency p99 over the sampler window;
    * ``goodput_pps`` -- released packets per virtual second since the
      previous watchdog tick (windowed by differencing);
    * ``detection_s`` / ``recovery_s`` -- the slowest detection and
      recovery seen so far (None until a failure happened);
    * ``retransmit_rate`` -- hop retransmissions per packet sent on the
      reliable channels since the previous tick.
    """
    state = {"released": 0, "t": None, "retx": 0, "sent": 0}

    def p99_latency_us() -> Optional[float]:
        sampler = egress.latency
        if len(sampler) == 0:
            return None
        return sampler.percentile_us(99)

    def goodput_pps() -> Optional[float]:
        released = egress.throughput.count
        now = egress.sim.now if hasattr(egress, "sim") else None
        last_t, last_released = state["t"], state["released"]
        state["t"], state["released"] = now, released
        if last_t is None or now is None or now <= last_t:
            return None
        return (released - last_released) / (now - last_t)

    probes: Dict[str, Callable[[], Optional[float]]] = {
        "p99_latency_us": p99_latency_us,
        "goodput_pps": goodput_pps,
    }

    if orchestrator is not None:
        def detection_s() -> Optional[float]:
            history = orchestrator.history
            if not history:
                return None
            return max(event.detection_delay_s for event in history)

        def recovery_s() -> Optional[float]:
            totals = [event.report.total_s for event in orchestrator.history
                      if event.report is not None]
            return max(totals) if totals else None

        probes["detection_s"] = detection_s
        probes["recovery_s"] = recovery_s

    if chain is not None:
        def retransmit_rate() -> Optional[float]:
            stats = chain.channel_stats()
            retx, sent = stats.get("retransmissions", 0), stats.get("sent", 0)
            d_retx = retx - state["retx"]
            d_sent = sent - state["sent"]
            state["retx"], state["sent"] = retx, sent
            if d_sent <= 0:
                return None
            return d_retx / d_sent

        probes["retransmit_rate"] = retransmit_rate

    return probes
