"""The central orchestrator (§3.2, §5.2).

A fault-tolerant SDN controller (ONOS in the paper's implementation)
deploys chains, reliably monitors them, detects fail-stop failures,
and initiates recovery.  After deployment it stays off the data path.

Failure detection uses heartbeat probing: the orchestrator pings every
replica's control module each interval and declares a failure after
``misses_allowed`` consecutive silent intervals.  Recovery then runs
the §5.2 procedure (``repro.core.recovery``), with the initialization
delay derived from the orchestrator-to-region control RTT -- exactly
the dependence Fig 13 measures.

Monitoring continues *during* recovery (§5.2: FTC tolerates failures
that strike while recovery is in progress): positions not currently
being recovered keep getting probed, and a crash detected mid-recovery
aborts the running attempt and re-enters ``recover_positions`` with
the union of failed positions.  Heartbeats and recovery fetches ride
the ``repro.net.retry`` policy, so a dropped control message costs a
bounded timeout, never a hang.  When more than f members of a group
are gone, the chain enters *degraded* mode (the failure event carries
the error, meters keep reporting) instead of killing the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set

from ..core.chain import FTCChain
from ..core.fencing import StaleConfigError, StaleEpochError
from ..core.reconfig import (
    ReconfigError,
    ReconfigOp,
    ReconfigReport,
    apply_reconfig,
)
from ..core.recovery import (
    RecoveryError,
    RecoveryReport,
    UnrecoverableError,
    recover_positions,
)
from ..net.retry import RetryPolicy, reliable_call
from ..sim import CancelledError, Interrupt, Simulator
from ..telemetry import NULL_TELEMETRY

__all__ = ["Orchestrator", "FailureEvent"]

#: Time to boot a replacement middlebox instance once the command
#: arrives in-region (container start, Click config load).
SPAWN_TIME_S = 0.3e-3

#: Installing updated flow rules at the affected switches.
REROUTE_DELAY_S = 0.5e-3


@dataclass
class FailureEvent:
    """One detected failure and its recovery outcome."""

    positions: List[int]
    detected_at: float
    detection_delay_s: float
    report: Optional[RecoveryReport] = None
    #: Set when recovery gave up (>f members of a group gone).
    error: Optional[str] = None
    #: recover_positions entries made while this event was open (>1
    #: means the attempt was re-entered, e.g. a crash during recovery).
    recovery_attempts: int = 0

    @property
    def recovery_s(self) -> float:
        return self.report.total_s if self.report else float("inf")

    @property
    def recovered(self) -> bool:
        return self.report is not None and self.error is None


class Orchestrator:
    """Heartbeat monitoring + recovery coordination for one chain."""

    def __init__(self, sim: Simulator, chain: FTCChain,
                 heartbeat_interval_s: float = 2e-3,
                 misses_allowed: int = 2,
                 region: Optional[str] = None,
                 heartbeat_retry: Optional[RetryPolicy] = None,
                 recovery_retry: Optional[RetryPolicy] = None,
                 max_recovery_attempts: int = 20,
                 corroborate_suspects: bool = False,
                 name: str = "orchestrator", telemetry=None):
        self.sim = sim
        self.chain = chain
        self.heartbeat_interval_s = heartbeat_interval_s
        self.misses_allowed = misses_allowed
        self.region = region
        self.name = name
        #: Defaults to the chain's telemetry so one bundle stitches the
        #: data plane and the control plane together.
        self.telemetry = (telemetry if telemetry is not None
                          else getattr(chain, "telemetry", NULL_TELEMETRY))
        registry = self.telemetry.registry
        self._m_detection = registry.histogram("orch/detection_delay_s")
        self._m_total = registry.histogram("orch/recovery_total_s")
        self._m_phase = {
            "initialization": registry.histogram("orch/phase_initialization_s"),
            "state_recovery": registry.histogram("orch/phase_state_recovery_s"),
            "rerouting": registry.histogram("orch/phase_rerouting_s"),
        }
        self._m_failures = registry.counter("orch/failures_detected")
        self._m_recoveries = registry.counter("orch/recoveries")
        self._m_abandoned = registry.counter("orch/abandoned")
        self._m_cleared = registry.counter("orch/suspects_cleared")
        self._m_cleared_self = registry.counter("orch/suspects_cleared_self")
        self._m_resumed = registry.counter("orch/resumed_positions")
        self._flight = self.telemetry.flight
        #: Two quick probes per round, fitting the classic 0.8*interval
        #: budget; no jitter so detection-delay bounds stay deterministic.
        self.heartbeat_retry = heartbeat_retry or RetryPolicy(
            timeout_s=heartbeat_interval_s * 0.4, max_attempts=2,
            backoff_base_s=0.0, jitter_frac=0.0)
        self.recovery_retry = recovery_retry or RetryPolicy()
        self.max_recovery_attempts = max_recovery_attempts
        #: PROTOCOL.md §8: before declaring a suspect failed, ask a
        #: *witness* (another alive position) to probe it over its own
        #: path with the patient recovery policy.  Distinguishes a
        #: lossy link eating heartbeats from a dead replica, so data-
        #: plane impairment alone never triggers spurious failover.
        #: Off by default: the extra probe shifts detection timing
        #: (fig13 measures it), so clean runs stay bit-identical.
        self.corroborate_suspects = corroborate_suspects
        self.suspects_cleared = 0
        #: Suspects cleared by a *self-probe* (no alive witness existed,
        #: so the second opinion rode the suspect's own control path) --
        #: counted apart because it is a strictly weaker signal.
        self.suspects_cleared_self = 0
        #: Control-plane replication (PROTOCOL.md §9).  An ensemble
        #: member sets ``epoch`` + ``command_guard`` when this
        #: orchestrator wins an election: the guard is a generator
        #: called as ``yield from command_guard(step, positions)``
        #: before every side-effecting command; it journals the step to
        #: a quorum and raises :class:`StaleEpochError` if this leader
        #: has been fenced.  All three default to off, so a standalone
        #: orchestrator runs the exact pre-ensemble code path.
        self.epoch: Optional[int] = None
        self.command_guard = None
        self.on_leadership_lost: Optional[Callable[[Exception], None]] = None
        #: Server the probes originate from (an ensemble member's own
        #: server, so partitions isolate its heartbeats too).  ``None``
        #: keeps the legacy in-region probe source.
        self.home: Optional[str] = None
        #: Observers called as ``hook(phase, positions)`` on every
        #: recovery phase -- the chaos subsystem injects
        #: failures-during-recovery through these.
        self.recovery_hooks: List[Callable[[str, List[int]], None]] = []
        #: Observers called as ``hook(phase, positions)`` on every live
        #: reconfiguration phase (PROTOCOL.md §11) -- chaos injects
        #: crash-during-reconfig through these.
        self.reconfig_hooks: List[Callable[[str, List[int]], None]] = []
        #: Completed (or aborted) reconfiguration reports, in order.
        self.reconfig_history: List[ReconfigReport] = []
        self.history: List[FailureEvent] = []
        self.heartbeats_sent = 0
        self.control_retries = 0
        self._misses: Dict[int, int] = {}
        self._last_seen_alive: Dict[int, float] = {}
        self._process = None
        self._recovering_positions: Set[int] = set()
        self._lost_positions: Set[int] = set()
        self._recovery_driver = None
        self._recovery_inner = None
        self._open_events: List[FailureEvent] = []
        self._reconfig_procs: Set = set()
        self._reconfig_active = False
        self._stopping = False
        # Satellite of §11: a route change (recovery re-steer or a
        # reconfiguration switch) replaces the monitored instance, so
        # accumulated misses against the *old* one must not count
        # toward declaring the *new* one dead -- and, conversely, the
        # new instance must be probed so a crash right after the
        # switch is detected.
        observers = getattr(chain, "route_observers", None)
        if observers is not None:
            observers.append(self._on_route_changed)

    # -- lifecycle ---------------------------------------------------------------

    def start(self, epoch: Optional[int] = None,
              resume_open: Optional[Set[int]] = None) -> None:
        """Begin monitoring.

        ``epoch`` stamps every subsequent command (ensemble leaders);
        ``resume_open`` -- positions the replicated journal shows as
        declared-but-uncommitted -- triggers one authoritative probe
        round first, so a new leader re-detects immediately and resumes
        the previous leader's in-flight recovery idempotently.
        """
        self._stopping = False
        if epoch is not None:
            self.epoch = epoch
        if resume_open is not None:
            # A fresh leadership term: recovery attempts of the previous
            # term were aborted, so rebuild the in-flight bookkeeping.
            self._recovering_positions.clear()
            self._open_events = []
            self._recovery_driver = None
            self._recovery_inner = None
        self._process = self.sim.process(
            self._monitor_loop(resume_open=resume_open), name=self.name)

    def reset_in_flight(self) -> None:
        """Forget in-flight recovery bookkeeping.

        A deposed ensemble member's running attempt was aborted; its
        successor re-detects and re-drives, so stale entries here must
        not leak into ``recovering_positions`` unions.
        """
        self._recovering_positions.clear()
        self._open_events = []
        self._recovery_driver = None
        self._recovery_inner = None

    def stop(self) -> None:
        self._stopping = True
        # stop() can re-enter from inside one of these very processes
        # (a fenced command deposes the leader, which stops its
        # orchestrator); the active process exits on its own and must
        # not be interrupted mid-stack.
        active = self.sim.active_process
        for process in ((self._process, self._recovery_inner,
                         self._recovery_driver)
                        + tuple(self._reconfig_procs)):
            if process is None or not process.is_alive:
                continue
            if process is active:
                # Deliver the interrupt at its next yield instead --
                # the wrapper below absorbs it once _stopping is set.
                self.sim.schedule_callback(
                    0.0, lambda p=process: (p.interrupt("stopped")
                                            if p.is_alive else None))
            else:
                process.interrupt("stopped")
        self._process = None

    # -- introspection (chaos / tests) -------------------------------------------------

    @property
    def recovering_positions(self) -> Set[int]:
        """Positions a recovery attempt currently covers."""
        return set(self._recovering_positions)

    @property
    def lost_positions(self) -> Set[int]:
        """Positions abandoned to degraded mode (>f group members gone)."""
        return set(self._lost_positions)

    @property
    def recovery_in_progress(self) -> bool:
        return self._recovery_driver is not None and self._recovery_driver.is_alive

    @property
    def reconfig_in_progress(self) -> bool:
        return any(p.is_alive for p in self._reconfig_procs)

    def _on_route_changed(self, position: int, old_name: str,
                          new_name: str) -> None:
        """A new instance serves ``position``: reset its health state."""
        self._misses[position] = 0
        self._last_seen_alive[position] = self.sim.now

    # -- orchestrator-to-region latency -----------------------------------------------

    def control_rtt_to(self, position: int) -> float:
        """RTT from the orchestrator to a chain position's region."""
        net = self.chain.net
        server = self.chain.route[position]
        if self.region is not None and hasattr(net, "region_rtt"):
            return net.region_rtt(self.region, net.region_of(server))
        return net.control_rtt(server, server) or 2 * net.hop_delay_s

    def init_delay_for(self, positions: List[int]) -> float:
        """Fig 13's initialization delay: command RTT + instance spawn.

        With several positions recovering, spawns run in parallel; the
        farthest region dominates.
        """
        return max(self.control_rtt_to(p) for p in positions) + SPAWN_TIME_S

    # -- monitoring ----------------------------------------------------------------------

    def _probe_src(self, position: int) -> str:
        """Where probes originate: the ensemble member's server, if any."""
        return self.home or self.chain.route[position]

    def _ping(self, position: int):
        """One heartbeat: an RPC that only an alive replica answers."""
        server = self.chain.server_at(position)
        self.heartbeats_sent += 1
        result = yield from reliable_call(
            self.chain.net, self._probe_src(position),
            self.chain.route[position], lambda: not server.failed,
            policy=self.heartbeat_retry, payload_bytes=64, response_bytes=64)
        self.control_retries += result.retries
        if result.ok and result.value:
            self._misses[position] = 0
            self._last_seen_alive[position] = self.sim.now
        else:
            self._misses[position] = self._misses.get(position, 0) + 1
            if self._misses[position] == 1:
                self.telemetry.timeline.record("suspected", [position],
                                               t=self.sim.now)
                if self._flight.enabled:
                    self._flight.record(
                        "orch", "suspected", t=self.sim.now,
                        epoch=self.epoch,
                        detail=f"heartbeat missed positions=[{position}]",
                        chain="ctrl")

    def _witness_for(self, position: int,
                     batch: Sequence[int] = ()) -> Optional[int]:
        """The nearest alive position to probe a suspect from.

        ``batch`` carries the round's other suspects: a co-suspect has
        by definition just missed its own heartbeats, so routing the
        second opinion through it would corroborate nothing.
        """
        skip = (self._recovering_positions | self._lost_positions |
                set(batch) | {position})
        candidates = [p for p in range(self.chain.n_positions)
                      if p not in skip and not self.chain.server_at(p).failed]
        if not candidates:
            return None
        return min(candidates, key=lambda p: (abs(p - position), p))

    def _corroborate(self, suspects: List[int]):
        """Probe each suspect from a witness; return the confirmed dead.

        Heartbeat misses alone cannot distinguish a dead replica from a
        path eating packets; a second opinion over a different source
        path with the patient (backed-off) recovery policy can.  A
        suspect that answers is cleared -- its misses reset -- and no
        failover happens.  With no alive witness left the probe falls
        back to the suspect's own control path (a *self-probe*): still
        worth the retry budget, but recorded and counted separately
        because it exercises the very path that went silent.
        """
        confirmed: List[int] = []
        for position in suspects:
            witness = self._witness_for(position, batch=suspects)
            server = self.chain.server_at(position)
            src = (self.chain.route[witness] if witness is not None
                   else self._probe_src(position))
            result = yield from reliable_call(
                self.chain.net, src, self.chain.route[position],
                lambda server=server: not server.failed,
                policy=self.recovery_retry, payload_bytes=64,
                response_bytes=64)
            self.control_retries += result.retries
            if result.ok and result.value:
                self._misses[position] = 0
                self._last_seen_alive[position] = self.sim.now
                self.suspects_cleared += 1
                self._m_cleared.inc()
                if witness is None:
                    self.suspects_cleared_self += 1
                    self._m_cleared_self.inc()
                self.telemetry.timeline.record(
                    "suspect-cleared", [position],
                    detail=(f"witness p{witness}" if witness is not None
                            else f"self-probe via {src}"),
                    t=self.sim.now)
                if self._flight.enabled:
                    self._flight.record(
                        "orch", "suspect-cleared", t=self.sim.now,
                        epoch=self.epoch,
                        detail=(f"witness p{witness}" if witness is not None
                                else f"self-probe via {src}") +
                               f" positions=[{position}]",
                        chain="ctrl")
            else:
                confirmed.append(position)
                if self._flight.enabled:
                    self._flight.record(
                        "orch", "corroborated", t=self.sim.now,
                        epoch=self.epoch,
                        detail=(f"witness "
                                f"{'p' + str(witness) if witness is not None else 'self'}"
                                f" confirmed silence positions=[{position}]"),
                        chain="ctrl")
        return confirmed

    def _monitor_loop(self, resume_open: Optional[Set[int]] = None):
        for position in range(self.chain.n_positions):
            self._misses[position] = 0
            self._last_seen_alive[position] = self.sim.now
        try:
            if resume_open is not None:
                yield from self._resume_probe(resume_open)
            while True:
                yield self.sim.timeout(self.heartbeat_interval_s)
                skip = self._recovering_positions | self._lost_positions
                active = [position for position in range(self.chain.n_positions)
                          if position not in skip]
                pings = [self.sim.process(self._ping(position))
                         for position in active]
                for ping in pings:
                    yield ping
                failed = [position for position in active
                          if self._misses.get(position, 0) > self.misses_allowed
                          and position not in self._recovering_positions]
                if failed and self.corroborate_suspects:
                    failed = yield from self._corroborate(failed)
                if failed:
                    yield from self._declare_failed(failed)
        except StaleEpochError as exc:
            self._leadership_lost(exc)
            return
        except (Interrupt, CancelledError):
            return

    def _resume_probe(self, open_positions: Set[int]):
        """New-leader takeover: rebuild monitor state authoritatively.

        One patient probe round over every non-lost position decides
        who is actually dead *now*; journal-open positions that answer
        were already recovered by the previous leader (its re-steer
        committed before it died) and are simply adopted.  The dead are
        declared immediately -- with this leader's epoch -- which
        resumes any in-flight recovery idempotently.
        """
        active = [p for p in range(self.chain.n_positions)
                  if p not in self._lost_positions]
        probes = [self.sim.process(self._probe_once(p)) for p in active]
        for probe in probes:
            yield probe
        dead = [p for p in active if self._misses.get(p, 0) > 0]
        for position in sorted(open_positions):
            if position in dead:
                self._m_resumed.inc()
                self.telemetry.timeline.record(
                    "journal-replayed", [position],
                    detail="resuming in-flight recovery", t=self.sim.now)
                if self._flight.enabled:
                    self._flight.record(
                        "orch", "journal-replayed", t=self.sim.now,
                        epoch=self.epoch,
                        detail=f"resuming in-flight recovery "
                               f"positions=[{position}]",
                        chain="ctrl")
            else:
                self.telemetry.timeline.record(
                    "journal-replayed", [position],
                    detail="already recovered", t=self.sim.now)
                if self._flight.enabled:
                    self._flight.record(
                        "orch", "journal-replayed", t=self.sim.now,
                        epoch=self.epoch,
                        detail=f"already recovered positions=[{position}]",
                        chain="ctrl")
        if dead:
            yield from self._declare_failed(dead)

    def _probe_once(self, position: int):
        """One patient (recovery-policy) aliveness probe."""
        server = self.chain.server_at(position)
        result = yield from reliable_call(
            self.chain.net, self._probe_src(position),
            self.chain.route[position],
            lambda server=server: not server.failed,
            policy=self.recovery_retry, payload_bytes=64, response_bytes=64)
        self.control_retries += result.retries
        if result.ok and result.value:
            self._misses[position] = 0
            self._last_seen_alive[position] = self.sim.now
        else:
            self._misses[position] = self.misses_allowed + 1

    def _leadership_lost(self, exc: Exception) -> None:
        """A command was fenced: this orchestrator is a stale leader."""
        self._stopping = True
        if self.on_leadership_lost is not None:
            self.on_leadership_lost(exc)

    # -- recovery coordination ---------------------------------------------------------

    def _declare_failed(self, positions: List[int]):
        """Open a failure event and (re-)drive recovery for the union.

        A generator: when a ``command_guard`` is installed the
        declaration is journaled to a quorum first and fenced by epoch
        (raising :class:`StaleEpochError` if leadership was lost).
        """
        if self.command_guard is not None:
            yield from self.command_guard("declare-failed", positions)
        detection_delay = max(
            self.sim.now - self._last_seen_alive[p] for p in positions)
        event = FailureEvent(positions=list(positions),
                             detected_at=self.sim.now,
                             detection_delay_s=detection_delay)
        self._m_failures.inc()
        self._m_detection.observe(detection_delay, t=self.sim.now)
        self.telemetry.timeline.record("confirmed", positions, t=self.sim.now)
        if self._flight.enabled:
            self._flight.record(
                "orch", "confirmed", t=self.sim.now, epoch=self.epoch,
                detail=f"detection delay "
                       f"{detection_delay * 1e3:.3f}ms "
                       f"positions={list(positions)}",
                chain="ctrl")
        self.history.append(event)
        self._open_events.append(event)
        self._recovering_positions |= set(positions)
        for proc in list(self._reconfig_procs):
            # §11: recovery preempts reconfiguration.  An operation
            # racing a confirmed failure aborts (closing its journal
            # with reconfig-abort); the operator re-requests it once
            # the chain is whole again.
            if proc.is_alive and proc is not self.sim.active_process:
                proc.interrupt(f"failures declared {positions}")
        if self._recovery_inner is not None and self._recovery_inner.is_alive:
            # §5.2: a failure during recovery aborts the running attempt;
            # the driver re-enters with the union of failed positions.
            self._recovery_inner.interrupt(f"additional failures {positions}")
        if self._recovery_driver is None or not self._recovery_driver.is_alive:
            self._recovery_driver = self.sim.process(
                self._recover_loop(), name=f"{self.name}/recovery")

    def _fire_recovery_hooks(self, phase: str, positions: List[int]) -> None:
        self.telemetry.timeline.record(phase, positions, t=self.sim.now)
        for hook in list(self.recovery_hooks):
            hook(phase, positions)

    def _recover_loop(self):
        attempts = 0
        try:
            while self._recovering_positions and not self._stopping:
                positions = sorted(self._recovering_positions)
                attempts += 1
                for event in self._open_events:
                    event.recovery_attempts += 1
                inner = self.sim.process(self._attempt(positions))
                self._recovery_inner = inner
                try:
                    report = yield inner
                except StaleEpochError as exc:
                    # A newer leader took over mid-recovery; the inner
                    # attempt already unwound (thaw + release).
                    self._leadership_lost(exc)
                    return
                except Interrupt:
                    if self._stopping:
                        return
                    continue  # union changed; re-enter immediately
                except UnrecoverableError as exc:
                    # Some suspects may be false positives (heartbeats
                    # lost to an impaired control plane): re-probe with
                    # the more patient recovery policy before giving up.
                    cleared = yield from self._reprobe_suspects()
                    if cleared:
                        if self._recovering_positions:
                            continue
                        for event in self._open_events:
                            event.error = "false suspicion cleared by re-probe"
                        self._open_events = []
                        return
                    if not (yield from self._guard_step("abandoned",
                                                        positions)):
                        return
                    self._abandon(positions, exc)
                    return
                except RecoveryError as exc:
                    if attempts >= self.max_recovery_attempts:
                        if not (yield from self._guard_step("abandoned",
                                                            positions)):
                            return
                        self._abandon(positions, exc)
                        return
                    # A source died (or the control plane is impaired)
                    # mid-fetch; give the next heartbeat round a chance
                    # to spot new corpses, then re-enter.
                    yield self.sim.timeout(self.heartbeat_interval_s)
                    continue
                if not (yield from self._guard_step("committed", positions)):
                    return
                self.control_retries += report.control_retries
                for position in positions:
                    self._misses[position] = 0
                    self._last_seen_alive[position] = self.sim.now
                self._recovering_positions -= set(positions)
                self._m_recoveries.inc()
                self._m_total.observe(report.total_s, t=self.sim.now)
                self._m_phase["initialization"].observe(
                    report.initialization_s, t=self.sim.now)
                self._m_phase["state_recovery"].observe(
                    report.state_recovery_s, t=self.sim.now)
                self._m_phase["rerouting"].observe(
                    report.rerouting_s, t=self.sim.now)
                if not self._recovering_positions:
                    for event in self._open_events:
                        event.report = report
                    self._open_events = []
        except (Interrupt, CancelledError):
            return
        finally:
            self._recovery_inner = None
            self._recovery_driver = None

    def _attempt(self, positions: List[int]):
        """One recovery attempt, orphan-safe.

        Teardown can start from *inside* this very process (a chaos
        hook crashes the leader, which deposes it, which calls
        ``stop()`` while this attempt is the active process).  The
        driver is then already dead, so any exception escaping here
        would hit the simulator undefused; once ``_stopping`` is set,
        absorb the unwind -- ``recover_positions``'s own finally has
        already thawed the chain and released the attempt.
        """
        try:
            return (yield from recover_positions(
                self.chain, positions,
                init_delay_s=self.init_delay_for(positions),
                reroute_delay_s=REROUTE_DELAY_S,
                retry_policy=self.recovery_retry,
                hooks=self._fire_recovery_hooks,
                epoch=self.epoch, journal=self.command_guard))
        except (StaleEpochError, Interrupt, CancelledError):
            if self._stopping:
                return None
            raise

    def _guard_step(self, step: str, positions: List[int], detail: str = ""):
        """Journal one recovery milestone through the command guard.

        Returns True to proceed; False -- after declaring leadership
        lost -- when the step was fenced by a newer epoch.
        """
        if self.command_guard is None:
            return True
        try:
            if detail:
                yield from self.command_guard(step, positions, detail)
            else:
                yield from self.command_guard(step, positions)
        except StaleEpochError as exc:
            self._leadership_lost(exc)
            return False
        return True

    # -- live reconfiguration (PROTOCOL.md §11) ----------------------------------------

    def request_reconfig(self, op: ReconfigOp, resumed: bool = False):
        """Drive one reconfiguration asynchronously; returns the process.

        The operation waits for any in-flight recovery to finish (and
        for earlier operations to commit -- requests serialize), then
        runs :func:`~repro.core.reconfig.apply_reconfig` under this
        orchestrator's epoch/journal.  The outcome is appended to
        ``reconfig_history``.
        """
        proc = self.sim.process(
            self._drive_reconfig(op, resumed=resumed),
            name=f"{self.name}/reconfig-{op.kind}")
        self._reconfig_procs.add(proc)
        return proc

    def resume_reconfigs(self, open_map: Dict) -> None:
        """Re-drive reconfigurations the journal shows as uncovered.

        ``open_map`` is :meth:`CommandJournal.open_reconfigs`:
        positions-tuple -> the prepare's ``detail`` descriptor.  Ops
        the descriptor can rebuild are re-run from scratch (prepare is
        idempotent: it spawns fresh resources each time); the rest --
        inserts and classifier updates, whose live objects a journal
        cannot carry -- are closed with a journaled ``reconfig-abort``
        so no entry dangles forever.
        """
        for positions, detail in sorted(open_map.items()):
            op = ReconfigOp.parse(detail)
            self.telemetry.timeline.record(
                "journal-replayed", list(positions),
                detail=(f"resuming reconfiguration: {detail}" if op
                        else f"closing unresumable reconfiguration: {detail}"),
                t=self.sim.now)
            if self._flight.enabled:
                self._flight.record(
                    "orch", "journal-replayed", t=self.sim.now,
                    epoch=self.epoch,
                    detail=(("resuming" if op else "closing") +
                            f" reconfiguration {detail} "
                            f"positions={list(positions)}"),
                    chain="ctrl")
            if op is not None:
                self.request_reconfig(op, resumed=True)
            else:
                self.sim.process(
                    self._close_reconfig(list(positions), detail),
                    name=f"{self.name}/reconfig-close")

    def _close_reconfig(self, positions: List[int], detail: str):
        yield from self._guard_step("reconfig-abort", positions, detail)
        self.reconfig_history.append(ReconfigReport(
            op=None, aborted=True, resumed=True,
            detail=f"closed open reconfiguration: {detail}"))

    def _drive_reconfig(self, op: ReconfigOp, resumed: bool = False):
        acquired = False
        try:
            while self._recovering_positions or self._reconfig_active:
                yield self.sim.timeout(self.heartbeat_interval_s)
            self._reconfig_active = True
            acquired = True
            try:
                report = yield from apply_reconfig(
                    self.chain, op, epoch=self.epoch,
                    journal=self.command_guard, hooks=self.reconfig_hooks,
                    reroute_delay_s=REROUTE_DELAY_S, resumed=resumed)
            except StaleEpochError as exc:
                self._leadership_lost(exc)
                return
            except (ReconfigError, StaleConfigError) as exc:
                # The op unwound (holds flushing, state thawed); close
                # its journal so no successor tries to resume it.
                yield from self._guard_step(
                    "reconfig-abort", list(op.journal_positions()),
                    op.describe())
                self.reconfig_history.append(ReconfigReport(
                    op=op, aborted=True, resumed=resumed, detail=str(exc)))
                return
            self.reconfig_history.append(report)
        except (Interrupt, CancelledError):
            if not self._stopping:
                # Preempted by recovery (or chaos): the apply's finally
                # blocks aborted it; close the journal entry.
                yield from self._guard_step(
                    "reconfig-abort", list(op.journal_positions()),
                    op.describe())
                self.reconfig_history.append(ReconfigReport(
                    op=op, aborted=True, resumed=resumed,
                    detail="interrupted"))
            return
        except StaleEpochError as exc:
            # A fence inside the journal-close path: leadership gone.
            self._leadership_lost(exc)
            return
        finally:
            if acquired:
                self._reconfig_active = False
            self._reconfig_procs.discard(self.sim.active_process)

    def _reprobe_suspects(self):
        """Re-ping every suspected position; un-suspect the live ones.

        Returns True if any suspect answered (it was a false positive;
        recovery can re-enter with a smaller, possibly empty, set).
        """
        cleared = False
        for position in sorted(self._recovering_positions):
            server = self.chain.server_at(position)
            result = yield from reliable_call(
                self.chain.net, self._probe_src(position),
                self.chain.route[position],
                lambda server=server: not server.failed,
                policy=self.recovery_retry, payload_bytes=64,
                response_bytes=64)
            self.control_retries += result.retries
            if result.ok and result.value:
                self._recovering_positions.discard(position)
                self._misses[position] = 0
                self._last_seen_alive[position] = self.sim.now
                cleared = True
        return cleared

    def _abandon(self, positions: List[int], exc: Exception) -> None:
        """Degrade gracefully: >f members of some group are gone."""
        self._m_abandoned.inc()
        self.telemetry.timeline.record("abandoned", positions,
                                       detail=str(exc), t=self.sim.now)
        if self._flight.enabled:
            self._flight.record(
                "recovery", "abandoned", t=self.sim.now, epoch=self.epoch,
                detail=f"{exc} positions={list(positions)}",
                chain="ctrl")
            self._flight.trip(f"unrecoverable: {exc}",
                              telemetry=self.telemetry, t=self.sim.now)
        self.chain.degraded = True
        self.chain.degraded_reason = str(exc)
        for event in self._open_events:
            event.error = str(exc)
        self._open_events = []
        self._lost_positions |= set(positions)
        self._recovering_positions.clear()
