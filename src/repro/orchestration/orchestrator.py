"""The central orchestrator (§3.2, §5.2).

A fault-tolerant SDN controller (ONOS in the paper's implementation)
deploys chains, reliably monitors them, detects fail-stop failures,
and initiates recovery.  After deployment it stays off the data path.

Failure detection uses heartbeat probing: the orchestrator pings every
replica's control module each interval and declares a failure after
``misses_allowed`` consecutive silent intervals.  Recovery then runs
the §5.2 procedure (``repro.core.recovery``), with the initialization
delay derived from the orchestrator-to-region control RTT -- exactly
the dependence Fig 13 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.chain import FTCChain
from ..core.recovery import RecoveryReport, recover_positions
from ..sim import AnyOf, CancelledError, Interrupt, Simulator

__all__ = ["Orchestrator", "FailureEvent"]

#: Time to boot a replacement middlebox instance once the command
#: arrives in-region (container start, Click config load).
SPAWN_TIME_S = 0.3e-3

#: Installing updated flow rules at the affected switches.
REROUTE_DELAY_S = 0.5e-3


@dataclass
class FailureEvent:
    """One detected failure and its recovery outcome."""

    positions: List[int]
    detected_at: float
    detection_delay_s: float
    report: Optional[RecoveryReport] = None

    @property
    def recovery_s(self) -> float:
        return self.report.total_s if self.report else float("inf")


class Orchestrator:
    """Heartbeat monitoring + recovery coordination for one chain."""

    def __init__(self, sim: Simulator, chain: FTCChain,
                 heartbeat_interval_s: float = 2e-3,
                 misses_allowed: int = 2,
                 region: Optional[str] = None,
                 name: str = "orchestrator"):
        self.sim = sim
        self.chain = chain
        self.heartbeat_interval_s = heartbeat_interval_s
        self.misses_allowed = misses_allowed
        self.region = region
        self.name = name
        self.history: List[FailureEvent] = []
        self.heartbeats_sent = 0
        self._misses: Dict[int, int] = {}
        self._last_seen_alive: Dict[int, float] = {}
        self._process = None
        self._recovering = False

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self._process = self.sim.process(self._monitor_loop(), name=self.name)

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stopped")
        self._process = None

    # -- orchestrator-to-region latency -----------------------------------------------

    def control_rtt_to(self, position: int) -> float:
        """RTT from the orchestrator to a chain position's region."""
        net = self.chain.net
        server = self.chain.route[position]
        if self.region is not None and hasattr(net, "region_rtt"):
            return net.region_rtt(self.region, net.region_of(server))
        return net.control_rtt(server, server) or 2 * net.hop_delay_s

    def init_delay_for(self, positions: List[int]) -> float:
        """Fig 13's initialization delay: command RTT + instance spawn.

        With several positions recovering, spawns run in parallel; the
        farthest region dominates.
        """
        return max(self.control_rtt_to(p) for p in positions) + SPAWN_TIME_S

    # -- monitoring ----------------------------------------------------------------------

    def _ping(self, position: int):
        """One heartbeat: an RPC that only an alive replica answers."""
        server = self.chain.server_at(position)
        self.heartbeats_sent += 1
        call = self.chain.net.control_call(
            self.chain.route[position], self.chain.route[position],
            lambda: not server.failed, payload_bytes=64, response_bytes=64)
        deadline = self.sim.timeout(self.heartbeat_interval_s * 0.8)
        yield AnyOf(self.sim, [call, deadline])
        alive = call.processed and call.ok and call.value
        if alive:
            self._misses[position] = 0
            self._last_seen_alive[position] = self.sim.now
        else:
            self._misses[position] = self._misses.get(position, 0) + 1

    def _monitor_loop(self):
        for position in range(self.chain.n_positions):
            self._misses[position] = 0
            self._last_seen_alive[position] = self.sim.now
        try:
            while True:
                yield self.sim.timeout(self.heartbeat_interval_s)
                if self._recovering:
                    continue
                pings = [self.sim.process(self._ping(position))
                         for position in range(self.chain.n_positions)]
                for ping in pings:
                    yield ping
                failed = [position for position, misses in self._misses.items()
                          if misses > self.misses_allowed]
                if failed:
                    yield from self._handle_failure(failed)
        except (Interrupt, CancelledError):
            return

    def _handle_failure(self, positions: List[int]):
        self._recovering = True
        detection_delay = max(
            self.sim.now - self._last_seen_alive[p] for p in positions)
        event = FailureEvent(positions=list(positions),
                             detected_at=self.sim.now,
                             detection_delay_s=detection_delay)
        self.history.append(event)
        report = yield self.sim.process(recover_positions(
            self.chain, positions,
            init_delay_s=self.init_delay_for(positions),
            reroute_delay_s=REROUTE_DELAY_S))
        event.report = report
        for position in positions:
            self._misses[position] = 0
            self._last_seen_alive[position] = self.sim.now
        self._recovering = False
