"""Replicated command journal (PROTOCOL.md §9).

Before every side-effecting step -- declare-failed, spawn, re-steer,
committed, abandoned -- the leader appends a :class:`JournalEntry` to
its local journal and replicates it to a majority of ensemble members
(write-ahead: the entry reaches a quorum *before* the side effect).
Entries are keyed by ``(epoch, seq)`` so duplicated control messages
append idempotently, and a peer rejects entries older than its highest
granted epoch -- the journal path doubles as a fencing probe, so a
leader that lost its majority discovers it on its next command, not
an unbounded time later.

A new leader quorum-reads peers' journals on takeover and computes
``open_positions()``: positions declared failed whose recovery no
entry shows committed or abandoned.  Those are the in-flight
recoveries it must resume (after probing -- the previous leader may
have died *after* the re-steer took effect but before journaling
``committed``, in which case the position answers probes and needs
nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set, Tuple

__all__ = ["JournalEntry", "CommandJournal", "JOURNAL_STEPS"]

#: Every step kind a journal may carry.  Recovery uses the first five;
#: live reconfiguration (PROTOCOL.md §11) journals its two-phase apply
#: through the same write-ahead quorum path.
JOURNAL_STEPS = ("declare-failed", "spawn", "re-steer", "committed",
                 "abandoned", "reconfig-prepare", "reconfig-switch",
                 "reconfig-commit", "reconfig-abort",
                 # Brownout transitions (PROTOCOL.md §12.3) go through
                 # the same quorum write-ahead path.
                 "brownout-enter", "brownout-escalate",
                 "brownout-deescalate", "brownout-exit")


@dataclass(frozen=True)
class JournalEntry:
    """One write-ahead command record."""

    epoch: int
    seq: int
    step: str
    positions: Tuple[int, ...]
    t: float
    detail: str = ""

    def key(self) -> Tuple[int, int]:
        return (self.epoch, self.seq)


class CommandJournal:
    """Idempotent, (epoch, seq)-ordered append-only command log."""

    def __init__(self):
        self._entries: Dict[Tuple[int, int], JournalEntry] = {}

    def append(self, entry: JournalEntry) -> bool:
        """Add one entry; returns False on an (idempotent) duplicate."""
        if entry.step not in JOURNAL_STEPS:
            raise ValueError(f"unknown journal step {entry.step!r}")
        if entry.key() in self._entries:
            return False
        self._entries[entry.key()] = entry
        return True

    def merge(self, entries: Iterable[JournalEntry]) -> int:
        """Union another journal's entries in; returns how many were new."""
        return sum(1 for entry in entries if self.append(entry))

    def entries(self) -> List[JournalEntry]:
        """All entries in (epoch, seq) order."""
        return [self._entries[key] for key in sorted(self._entries)]

    def __len__(self):
        return len(self._entries)

    def open_positions(self) -> Set[int]:
        """Declared positions with no later committed/abandoned cover."""
        open_set: Set[int] = set()
        for entry in self.entries():
            if entry.step == "declare-failed":
                open_set |= set(entry.positions)
            elif entry.step in ("committed", "abandoned"):
                open_set -= set(entry.positions)
        return open_set

    def open_reconfigs(self) -> Dict[Tuple[int, ...], str]:
        """Prepared reconfigurations with no later commit/abort cover.

        Keyed by the positions tuple; the value is the ``detail`` of
        the *latest* uncovered prepare, which carries the machine-
        readable operation descriptor a new leader needs to resume it.
        """
        open_map: Dict[Tuple[int, ...], str] = {}
        for entry in self.entries():
            if entry.step == "reconfig-prepare":
                open_map[entry.positions] = entry.detail
            elif entry.step in ("reconfig-commit", "reconfig-abort"):
                open_map.pop(entry.positions, None)
        return open_map

    def max_epoch(self) -> int:
        return max((epoch for epoch, _ in self._entries), default=0)
