"""Replicated orchestrator ensemble (PROTOCOL.md §9).

N orchestrator replicas, each on its own control-plane server, elect a
leader through :mod:`repro.orchestration.election`; only the leader
runs the monitor/recover loops.  Every side-effecting command is
journaled to a quorum (:mod:`repro.orchestration.journal`) and fenced
by epoch at the chain's :class:`~repro.core.fencing.EpochGate` before
it takes effect, so:

* a **crashed leader** is replaced after its lease lapses; the new
  leader quorum-reads the journal, probes every position, and resumes
  any in-flight recovery idempotently (including a recovery that was
  mid-fetch while a chain replica was also down);
* a **partitioned leader** loses its journal quorum on the next
  command and steps down before it can declare, spawn, or re-steer;
* a **paused ex-leader** that wakes up re-asserts its old epoch and is
  fenced the moment a successor exists -- split-brain double recovery
  is structurally impossible, and every fencing is counted.

With ``n=1`` callers should use a plain :class:`Orchestrator`; the
CLI's ``--orchestrators 1`` default never constructs this class, so
single-orchestrator runs allocate no ensemble machinery and stay
bit-identical with pre-ensemble builds.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..core.chain import FTCChain
from ..core.fencing import EpochGate, StaleEpochError
from ..net.retry import reliable_call
from ..sim import CancelledError, Interrupt, Simulator
from .election import ElectionConfig, ElectionMember
from .journal import CommandJournal, JournalEntry
from .orchestrator import FailureEvent, Orchestrator

__all__ = ["OrchestratorEnsemble", "EnsembleMember"]


class EnsembleMember(ElectionMember):
    """One replica: election state + journal + a leader-only orchestrator."""

    def __init__(self, ensemble: "OrchestratorEnsemble", index: int,
                 server_name: str, config: ElectionConfig, rng,
                 **orchestrator_kwargs):
        super().__init__(ensemble.sim, ensemble.chain.net, index,
                         server_name, config=config, rng=rng,
                         telemetry=ensemble.telemetry)
        self.ensemble = ensemble
        self.journal = CommandJournal()
        self._seq = 0
        self._takeover_proc = None
        self.orch = Orchestrator(
            ensemble.sim, ensemble.chain,
            name=f"{ensemble.name}/m{index}",
            telemetry=ensemble.telemetry, **orchestrator_kwargs)
        self.orch.home = server_name
        #: All members share the ensemble's hook lists, so chaos hooks
        #: armed once fire regardless of which member currently leads.
        self.orch.recovery_hooks = ensemble.recovery_hooks
        self.orch.reconfig_hooks = ensemble.reconfig_hooks
        self.orch.on_leadership_lost = self._command_fenced

    # -- journal replication (the orchestrator's command guard) ------------------

    def journal_step(self, step: str, positions, detail: str = "") -> object:
        """Write-ahead journal one command to a quorum; fence by epoch.

        A generator (the orchestrator runs it via ``yield from``).
        ``detail`` carries a machine-readable descriptor (reconfig ops
        journal their :meth:`~repro.core.reconfig.ReconfigOp.describe`
        string so a successor can rebuild and resume them).  Raises
        :class:`StaleEpochError` when this member's lease has lapsed, a
        peer has granted a newer epoch, or no majority acks -- any of
        which means leadership is gone and the side effect must not
        happen.
        """
        if not self.lease_valid:
            raise StaleEpochError(
                f"m{self.index} epoch {self.epoch}: lease expired before "
                f"{step!r}")
        epoch = self.epoch
        self._seq += 1
        entry = JournalEntry(epoch=epoch, seq=self._seq, step=step,
                             positions=tuple(positions), t=self.sim.now,
                             detail=detail)
        self.journal.append(entry)
        self.ensemble._m_journal.inc()
        if self._flight.enabled:
            self._flight.record(
                "journal", step, t=self.sim.now, epoch=epoch,
                detail=f"m{self.index} seq {self._seq} write-ahead "
                       f"positions={list(positions)}",
                chain="ctrl")
        acks, saw_newer = 1, False
        replications = [self.sim.process(self._replicate(peer, entry))
                        for peer in self._peers]
        for replication in replications:
            outcome = yield replication
            if outcome == "ok":
                acks += 1
            elif outcome == "stale":
                saw_newer = True
        if saw_newer:
            raise StaleEpochError(
                f"m{self.index} epoch {epoch}: a peer has granted a newer "
                f"epoch (step {step!r})")
        if acks < self.majority:
            raise StaleEpochError(
                f"m{self.index} epoch {epoch}: journal quorum lost "
                f"({acks}/{self.majority} acks for {step!r})")
        self.ensemble._m_quorum_writes.inc()
        if self.telemetry.enabled:
            self.telemetry.tracer.instant(
                0, f"journal:{step}", "ctrl", self.sim.now, tid=9998,
                epoch=epoch, member=self.index, acks=acks,
                positions=list(positions))
        # Chain-side fence last: the command is durable, now stamp it.
        self.ensemble.gate.check(epoch, step, positions)

    def _replicate(self, peer: "EnsembleMember", entry: JournalEntry):
        result = yield from reliable_call(
            self.net, self.server_name, peer.server_name,
            lambda: peer.accept_entry(entry),
            policy=self.config.retry, payload_bytes=128, response_bytes=64)
        if not result.ok or result.value is None:
            return "silent"
        return result.value

    def accept_entry(self, entry: JournalEntry) -> str:
        """Peer-side journal append (runs on this member's server)."""
        if entry.epoch < self.max_granted_epoch:
            return "stale"
        self.max_epoch_seen = max(self.max_epoch_seen, entry.epoch)
        self.journal.append(entry)
        return "ok"

    # -- leadership transitions ---------------------------------------------------

    def _on_elected(self, epoch: int) -> None:
        self.ensemble._note_elected(self, epoch)
        self._takeover_proc = self.sim.process(
            self._takeover(epoch), name=f"{self.orch.name}/takeover")

    def _takeover(self, epoch: int):
        """Fence the chain, quorum-read the journal, resume monitoring."""
        try:
            try:
                self.ensemble.gate.check(epoch, "assume-leadership")
            except StaleEpochError:
                # Epochs grow monotonically across elections, so this
                # only fires if a *later* leader won while we were
                # scheduled; yield gracefully.
                self.depose("fenced at takeover")
                return
            fetches = [self.sim.process(self._fetch_journal(peer))
                       for peer in self._peers]
            for fetch in fetches:
                entries = yield fetch
                if entries:
                    self.journal.merge(entries)
            open_positions = self.journal.open_positions()
            open_reconfigs = self.journal.open_reconfigs()
            if not self.is_leader:
                return  # deposed while reading journals
            self.orch.epoch = epoch
            self.orch.command_guard = self.journal_step
            self.orch.start(epoch=epoch, resume_open=open_positions)
            if open_reconfigs:
                self.orch.resume_reconfigs(open_reconfigs)
        except (Interrupt, CancelledError):
            return

    def _fetch_journal(self, peer: "EnsembleMember"):
        result = yield from reliable_call(
            self.net, self.server_name, peer.server_name,
            lambda: peer.journal.entries(),
            policy=self.config.retry, payload_bytes=64, response_bytes=512)
        return result.value if result.ok else None

    def _on_deposed(self, reason: str) -> None:
        self._stop_leading()
        self.ensemble._note_deposed(self, reason)

    def _on_paused(self) -> None:
        # A stalled VM's TCP connections die: the in-flight recovery
        # attempt unwinds (thaw + release), but the member still
        # *believes* it leads -- the dangerous half of a pause.
        self._stop_leading()

    def _on_resume_assert(self, epoch: int) -> None:
        # The woken ex-leader's first act: re-assert its old epoch
        # against the chain-side fence.  Raises StaleEpochError (and
        # counts the fencing) when a successor has moved the fence.
        self.ensemble.gate.check(epoch, "leader-resume")

    def _on_resumed(self, epoch: int) -> None:
        self.ensemble._note_resumed(self, epoch)
        self.orch.epoch = epoch
        self.orch.command_guard = self.journal_step
        self.orch.start(epoch=epoch,
                        resume_open=self.journal.open_positions())
        open_reconfigs = self.journal.open_reconfigs()
        if open_reconfigs:
            self.orch.resume_reconfigs(open_reconfigs)

    def _stop_leading(self) -> None:
        if (self._takeover_proc is not None and self._takeover_proc.is_alive
                and self._takeover_proc is not self.sim.active_process):
            self._takeover_proc.interrupt("deposed")
        self._takeover_proc = None
        self.orch.stop()
        self.orch.reset_in_flight()

    def _command_fenced(self, exc: Exception) -> None:
        """The orchestrator hit a fence: leadership is gone."""
        self.depose(f"command fenced: {exc}")

    def crash(self) -> None:
        super().crash()
        self.ensemble._update_gauges()

    def restart(self) -> None:
        super().restart()
        self.ensemble._update_gauges()


class OrchestratorEnsemble:
    """N replicated orchestrators with leader election + epoch fencing.

    Drop-in for :class:`Orchestrator` where chaos tooling is concerned:
    exposes ``recovering_positions`` / ``lost_positions`` / ``history``
    / ``recovery_hooks`` / ``telemetry`` as the union over members.
    """

    def __init__(self, sim: Simulator, chain: FTCChain, n: int = 3,
                 election: Optional[ElectionConfig] = None,
                 heartbeat_interval_s: float = 2e-3,
                 misses_allowed: int = 2,
                 corroborate_suspects: bool = False,
                 region: Optional[str] = None,
                 name: Optional[str] = None, telemetry=None):
        if n < 2:
            raise ValueError(
                "an ensemble needs n >= 2 members; use Orchestrator for "
                "an unreplicated control plane")
        self.sim = sim
        self.chain = chain
        self.n = n
        self.name = name or f"{chain.name}-ensemble"
        self.telemetry = (telemetry if telemetry is not None
                          else getattr(chain, "telemetry", None))
        if self.telemetry is None:
            from ..telemetry import NULL_TELEMETRY
            self.telemetry = NULL_TELEMETRY
        self.gate = EpochGate(sim, telemetry=self.telemetry)
        chain.gate = self.gate
        #: Shared by every member's orchestrator (chaos hooks survive
        #: leadership changes).
        self.recovery_hooks: List = []
        self.reconfig_hooks: List = []
        #: ``(epoch, member index)`` per election won, in order -- the
        #: auditor proves at-most-one-leader-per-epoch from this.
        self.election_log: List = []
        registry = self.telemetry.registry
        self._m_elections = registry.counter("ensemble/elections")
        self._m_stepdowns = registry.counter("ensemble/stepdowns")
        self._m_journal = registry.counter("ensemble/journal_appends")
        self._m_quorum_writes = registry.counter(
            "ensemble/journal_quorum_writes")
        self._m_epoch = registry.gauge("ensemble/epoch")
        self._m_leader = registry.gauge("ensemble/leader")
        self._m_alive = registry.gauge("ensemble/members_alive")
        self._flight = self.telemetry.flight
        if self.telemetry.enabled:
            self.telemetry.tracer.set_thread_name(9998, "control-plane")
        config = election or ElectionConfig()
        self.members: List[EnsembleMember] = []
        for index in range(n):
            server_name = f"{self.name}-orch{index}"
            server = chain.net.add_server(server_name, n_cores=1)
            if region is not None:
                server.region = region
            rng = chain.streams.stream(f"election-m{index}")
            member = EnsembleMember(
                self, index, server_name, config, rng,
                heartbeat_interval_s=heartbeat_interval_s,
                misses_allowed=misses_allowed,
                corroborate_suspects=corroborate_suspects,
                region=region)
            self.members.append(member)
        for member in self.members:
            member.set_peers(self.members)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        for member in self.members:
            member.start()
        self._update_gauges()

    def stop(self) -> None:
        for member in self.members:
            member.stop()
            member.orch.stop()

    # -- election bookkeeping -----------------------------------------------------

    def _note_elected(self, member: EnsembleMember, epoch: int) -> None:
        self.election_log.append((epoch, member.index))
        self._m_elections.inc()
        self.telemetry.timeline.record(
            "leader-elected", (), detail=f"m{member.index} epoch {epoch}",
            t=self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.tracer.begin_async(
                epoch, f"lead:m{member.index}", "ctrl", self.sim.now,
                tid=9998, member=member.index)
        if self._flight.enabled:
            self._flight.record(
                "election", "elected", t=self.sim.now, epoch=epoch,
                detail=f"m{member.index} epoch {epoch}", chain="ctrl")
        self._update_gauges()

    def _note_deposed(self, member: EnsembleMember, reason: str) -> None:
        self._m_stepdowns.inc()
        self.telemetry.timeline.record(
            "stepped-down", (),
            detail=f"m{member.index} epoch {member.epoch}: {reason}",
            t=self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.tracer.end_async(
                member.epoch, f"lead:m{member.index}", "ctrl", self.sim.now,
                tid=9998, reason=reason)
        if self._flight.enabled:
            self._flight.record(
                "election", "stepped-down", t=self.sim.now,
                epoch=member.epoch,
                detail=f"m{member.index} epoch {member.epoch}: {reason}",
                chain="ctrl")
        self._update_gauges()

    def _note_resumed(self, member: EnsembleMember, epoch: int) -> None:
        self.telemetry.timeline.record(
            "leader-resumed", (), detail=f"m{member.index} epoch {epoch}",
            t=self.sim.now)
        if self.telemetry.enabled:
            self.telemetry.tracer.begin_async(
                epoch, f"lead:m{member.index}", "ctrl", self.sim.now,
                tid=9998, member=member.index, resumed=True)
        if self._flight.enabled:
            self._flight.record(
                "election", "leader-resumed", t=self.sim.now, epoch=epoch,
                detail=f"m{member.index} epoch {epoch}", chain="ctrl")
        self._update_gauges()

    def _update_gauges(self) -> None:
        leader = self.leader
        self._m_leader.set(-1 if leader is None else leader.index)
        self._m_epoch.set(max((m.epoch for m in self.members), default=0))
        self._m_alive.set(sum(1 for m in self.members if not m.crashed))

    # -- introspection (chaos / auditor / tests) ---------------------------------

    @property
    def leader(self) -> Optional[EnsembleMember]:
        """The member currently *acting* as leader, if any."""
        actives = self.active_leaders()
        return actives[0] if actives else None

    def active_leaders(self) -> List[EnsembleMember]:
        """Members that believe they lead and are running (not paused)."""
        return [m for m in self.members
                if m.is_leader and not m.crashed and not m.paused]

    def leaders_with_valid_lease(self) -> List[EnsembleMember]:
        """Members entitled to issue commands right now (<= 1, always)."""
        return [m for m in self.active_leaders() if m.lease_valid]

    @property
    def alive_members(self) -> int:
        return sum(1 for m in self.members if not m.crashed)

    @property
    def has_quorum(self) -> bool:
        return self.alive_members >= self.members[0].majority

    @property
    def max_epoch(self) -> int:
        return max(self.gate.max_epoch,
                   max((m.max_epoch_seen for m in self.members), default=0))

    @property
    def recovering_positions(self) -> Set[int]:
        out: Set[int] = set()
        for member in self.members:
            out |= member.orch.recovering_positions
        return out

    @property
    def lost_positions(self) -> Set[int]:
        out: Set[int] = set()
        for member in self.members:
            out |= member.orch.lost_positions
        return out

    def request_reconfig(self, op, resumed: bool = False):
        """Submit a reconfiguration to the acting leader (§11)."""
        from ..core.reconfig import ReconfigError
        leader = self.leader
        if leader is None:
            raise ReconfigError("no acting leader to drive the "
                                "reconfiguration")
        return leader.orch.request_reconfig(op, resumed=resumed)

    @property
    def reconfig_history(self) -> List:
        return [r for m in self.members for r in m.orch.reconfig_history]

    @property
    def history(self) -> List[FailureEvent]:
        events = [e for m in self.members for e in m.orch.history]
        return sorted(events, key=lambda e: e.detected_at)

    @property
    def heartbeats_sent(self) -> int:
        return sum(m.orch.heartbeats_sent for m in self.members)

    @property
    def control_retries(self) -> int:
        return sum(m.orch.control_retries for m in self.members)

    @property
    def suspects_cleared(self) -> int:
        return sum(m.orch.suspects_cleared for m in self.members)

    def __repr__(self):
        leader = self.leader
        who = f"m{leader.index}@{leader.epoch}" if leader else "none"
        return (f"<OrchestratorEnsemble n={self.n} leader={who} "
                f"alive={self.alive_members}>")
