"""Orchestration: SDN-controller-style monitoring, placement, recovery."""

from .brownout import (
    BROWNOUT_STEPS,
    BrownoutController,
    BrownoutPolicy,
    BrownoutTransition,
)
from .cloud import CloudNetwork, SAVI_REGIONS, savi_rtt_matrix
from .election import ElectionConfig, ElectionMember
from .ensemble import EnsembleMember, OrchestratorEnsemble
from .journal import JOURNAL_STEPS, CommandJournal, JournalEntry
from .orchestrator import FailureEvent, Orchestrator
from .placement import place_chain, validate_isolation

__all__ = [
    "BROWNOUT_STEPS",
    "BrownoutController",
    "BrownoutPolicy",
    "BrownoutTransition",
    "CloudNetwork",
    "CommandJournal",
    "ElectionConfig",
    "ElectionMember",
    "EnsembleMember",
    "FailureEvent",
    "JOURNAL_STEPS",
    "JournalEntry",
    "Orchestrator",
    "OrchestratorEnsemble",
    "SAVI_REGIONS",
    "place_chain",
    "savi_rtt_matrix",
    "validate_isolation",
]
