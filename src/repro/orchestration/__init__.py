"""Orchestration: SDN-controller-style monitoring, placement, recovery."""

from .cloud import CloudNetwork, SAVI_REGIONS, savi_rtt_matrix
from .orchestrator import FailureEvent, Orchestrator
from .placement import place_chain, validate_isolation

__all__ = [
    "CloudNetwork",
    "FailureEvent",
    "Orchestrator",
    "SAVI_REGIONS",
    "place_chain",
    "savi_rtt_matrix",
    "validate_isolation",
]
