"""Lease-based leader election with epochs (PROTOCOL.md §9).

The orchestrator ensemble elects a single leader through sim-time
leases: a candidate picks ``epoch = max_epoch_seen + 1``, votes for
itself (durably -- a crash does not forget granted epochs), and asks
every peer for a grant over the control plane (``reliable_call``, so
drops, duplicates, partitions, and crashed peers cost bounded time).
A peer grants at most one candidate per epoch and refuses while it
holds an unexpired lease for a different leader; a majority of grants
makes the candidate leader with a lease anchored at the *start* of its
vote round (conservative: the leader's view of its lease always
expires no later than any granter's).

Leadership is kept alive by renewal rounds every ``renew_every_s``; a
majority of acks re-anchors the lease, a higher-epoch rejection or an
expired lease steps the leader down.  Because the simulation has one
global clock there is no skew term: *at most one member can hold an
unexpired lease at any instant*, and each epoch has at most one leader
ever (grants are monotonic).  Commands are additionally lease-checked
at issue time (see the ensemble's journal step), closing the window
between lease expiry and the renewal loop noticing it.

Randomized candidacy delays (per-member seeded streams) keep split
votes rare; a split round simply times out and re-runs with a fresh
epoch.  All timing is a pure function of the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..net.retry import RetryPolicy, reliable_call
from ..sim import CancelledError, Interrupt

__all__ = ["ElectionConfig", "ElectionMember"]

#: Quick, bounded vote/renew RPCs: two attempts, no jitter, so
#: election timing stays a deterministic function of the seed.
ELECTION_RETRY = RetryPolicy(timeout_s=1.5e-3, max_attempts=2,
                             backoff_base_s=0.5e-3, jitter_frac=0.0)


@dataclass(frozen=True)
class ElectionConfig:
    """Lease timing knobs (simulated seconds)."""

    #: How long a grant/renewal keeps a leader legitimate.
    lease_s: float = 10e-3
    #: Leader renewal cadence; must leave the lease several rounds of
    #: headroom so one dropped round does not depose a healthy leader.
    renew_every_s: float = 3e-3
    #: Base candidacy delay after a member sees the lease lapse; the
    #: actual delay is ``uniform(1.0, 2.0) * candidacy_base_s`` from the
    #: member's own seeded stream, staggering candidates.
    candidacy_base_s: float = 3e-3
    #: Retry policy for vote/renew RPCs.
    retry: RetryPolicy = ELECTION_RETRY


class ElectionMember:
    """One replica's view of the election state machine.

    Subclasses (the ensemble) override the ``_on_*`` hooks to attach
    and detach the orchestrator as leadership moves.  ``crash`` /
    ``restart`` / ``pause`` model the fault kinds chaos injects;
    election state (``max_granted_epoch``) survives a crash, mirroring
    a write-ahead vote record on disk.
    """

    def __init__(self, sim, net, index: int, server_name: str,
                 config: Optional[ElectionConfig] = None, rng=None,
                 telemetry=None):
        from ..telemetry import NULL_TELEMETRY
        self.sim = sim
        self.net = net
        self.index = index
        self.server_name = server_name
        self.config = config or ElectionConfig()
        self.rng = rng
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        registry = self.telemetry.registry
        self._m_rounds = registry.counter("election/rounds")
        self._m_renewals = registry.counter("election/lease_renewals")
        self._flight = self.telemetry.flight
        self._peers: List["ElectionMember"] = []
        # Durable election state (survives crash/restart).
        self.max_granted_epoch = 0
        self.max_epoch_seen = 0
        # Volatile views.
        self.leader_id: Optional[int] = None
        self.lease_expires_at = float("-inf")
        self.is_leader = False
        self.epoch = 0
        self.lease_deadline = float("-inf")
        self.crashed = False
        self.paused = False
        self.elections_won = 0
        self._paused_epoch: Optional[int] = None
        self._proc = None

    # -- wiring ------------------------------------------------------------------

    def set_peers(self, members: List["ElectionMember"]) -> None:
        self._peers = [m for m in members if m is not self]

    @property
    def majority(self) -> int:
        return (len(self._peers) + 1) // 2 + 1

    # -- overridable hooks (the ensemble wires the orchestrator here) -----------

    def _on_elected(self, epoch: int) -> None:
        pass

    def _on_deposed(self, reason: str) -> None:
        pass

    def _on_paused(self) -> None:
        pass

    def _on_resume_assert(self, epoch: int) -> None:
        """Re-assert leadership after a pause; may raise StaleEpochError."""

    def _on_resumed(self, epoch: int) -> None:
        pass

    # -- peer-side handlers (run on this member's server via control_call) -------

    def handle_vote(self, epoch: int, candidate: int) -> Tuple[str, int]:
        """Grant iff the epoch is fresh and no other lease is live."""
        now = self.sim.now
        if epoch <= self.max_granted_epoch:
            return ("reject", self.max_granted_epoch)
        if (self.lease_expires_at > now and self.leader_id is not None
                and self.leader_id != candidate):
            return ("reject", self.max_granted_epoch)
        self.max_granted_epoch = epoch
        self.max_epoch_seen = max(self.max_epoch_seen, epoch)
        self.leader_id = candidate
        self.lease_expires_at = now + self.config.lease_s
        return ("grant", epoch)

    def handle_renew(self, epoch: int, leader_id: int) -> Tuple[str, int]:
        """Extend the lease unless a newer epoch has been granted."""
        if epoch < self.max_granted_epoch:
            return ("reject", self.max_granted_epoch)
        self.max_granted_epoch = max(self.max_granted_epoch, epoch)
        self.max_epoch_seen = max(self.max_epoch_seen, epoch)
        self.leader_id = leader_id
        self.lease_expires_at = self.sim.now + self.config.lease_s
        return ("ack", epoch)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        self._proc = self.sim.process(self._run(),
                                      name=f"election/m{self.index}")

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stopped")
        self._proc = None

    def crash(self) -> None:
        """Fail-stop: the member's server goes silent; durable election
        state (granted epochs) survives for ``restart``."""
        if self.crashed:
            return
        self.crashed = True
        self.paused = False  # a reboot ends any freeze
        self.net.servers[self.server_name].fail()
        if self.is_leader:
            self._step_down("crashed")
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("crashed")
        self._proc = None

    def restart(self) -> None:
        if not self.crashed:
            return
        self.crashed = False
        self.net.servers[self.server_name].restore()
        self.start()

    def pause(self, duration_s: float) -> None:
        """Freeze the member (GC pause / live-migration stall).

        Unlike a crash the member *believes whatever it believed* --
        a paused leader still thinks it leads.  On resume it must
        re-assert leadership with its old epoch; if a successor was
        elected meanwhile, the assert is fenced and it steps down
        (the split-brain scenario epoch fencing exists for).

        A frozen machine answers nothing -- votes, renewals, journal
        fetches all time out against it for the duration -- so its
        server goes down with it (a paused member that kept granting
        votes could hand out a second lease inside its own).
        """
        if self.crashed or self.paused:
            return
        self.paused = True
        self.net.servers[self.server_name].fail()
        self._paused_epoch = self.epoch if self.is_leader else None
        if self.is_leader:
            self._on_paused()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("paused")
        self._proc = None
        self.sim.schedule_callback(duration_s, self._resume_from_pause)

    # -- internals ---------------------------------------------------------------

    def _resume_from_pause(self) -> None:
        if self.crashed or not self.paused:
            return
        self.paused = False
        self.net.servers[self.server_name].restore()
        if self._paused_epoch is not None and self.is_leader:
            self._proc = self.sim.process(
                self._stale_resume(self._paused_epoch),
                name=f"election/m{self.index}/resume")
        else:
            self.start()

    def _stale_resume(self, epoch: int):
        """First act after a pause: re-assert leadership at ``epoch``."""
        from ..core.fencing import StaleEpochError
        try:
            anchor = self.sim.now
            acks, saw_newer = yield from self._renew_round(epoch)
            fenced = False
            try:
                self._on_resume_assert(epoch)
            except StaleEpochError:
                fenced = True
            if fenced or saw_newer or acks < self.majority:
                self._step_down("fenced on resume" if fenced
                                else "lost lease during pause")
                self.start()
                return
            # No successor exists: the lease re-anchors and leadership
            # continues where it left off.
            self.lease_deadline = anchor + self.config.lease_s
            self.lease_expires_at = self.lease_deadline
            self._on_resumed(epoch)
            self._proc = self.sim.process(
                self._run(resume_lead=(epoch, anchor)),
                name=f"election/m{self.index}")
        except (Interrupt, CancelledError):
            return

    def _run(self, resume_lead: Optional[Tuple[int, float]] = None):
        while not self.crashed and not self.paused:
            try:
                if resume_lead is not None:
                    epoch, anchor = resume_lead
                    resume_lead = None
                    yield from self._lead(epoch, anchor, announce=False)
                yield from self._follower_wait()
                won, epoch, anchor = yield from self._campaign()
                if won:
                    yield from self._lead(epoch, anchor)
            except (Interrupt, CancelledError) as interrupted:
                cause = getattr(interrupted, "cause", None)
                if cause == "deposed":
                    continue  # rejoin the election as a follower
                return  # crashed / paused / stopped

    def _follower_wait(self):
        """Block until the known lease lapses, then stagger candidacy."""
        while True:
            now = self.sim.now
            if self.lease_expires_at > now:
                yield self.sim.timeout(self.lease_expires_at - now)
                continue
            delay = self.config.candidacy_base_s * (
                self.rng.uniform(1.0, 2.0) if self.rng is not None else 1.5)
            yield self.sim.timeout(delay)
            if self.lease_expires_at <= self.sim.now:
                return  # still leaderless: stand for election

    def _campaign(self):
        epoch = self.max_epoch_seen + 1
        if epoch <= self.max_granted_epoch:
            return False, epoch, self.sim.now
        anchor = self.sim.now
        # Durable self-vote: this member can never grant <= epoch again.
        self.max_epoch_seen = epoch
        self.max_granted_epoch = epoch
        self._m_rounds.inc()
        if self._flight.enabled:
            self._flight.record(
                "election", "campaign", t=self.sim.now, epoch=epoch,
                detail=f"m{self.index} stands for epoch {epoch}",
                chain="ctrl")
        state = {"votes": 1, "pending": len(self._peers)}
        decided = self.sim.event()

        def tally(granted: bool) -> None:
            state["pending"] -= 1
            if granted:
                state["votes"] += 1
            if (not decided.triggered
                    and (state["votes"] >= self.majority
                         or state["pending"] == 0)):
                decided.succeed(None)

        for peer in self._peers:
            self.sim.process(self._collect(self._request_vote(peer, epoch),
                                           tally))
        # Early quorum: a majority decides the election; a crashed or
        # partitioned peer's timed-out request finishes in the
        # background without stretching the round (the lease is
        # anchored at ``anchor``, so round latency eats lease headroom).
        if self._peers and state["votes"] < self.majority:
            yield decided
        if state["votes"] >= self.majority and self.max_epoch_seen == epoch:
            return True, epoch, anchor
        return False, epoch, anchor

    def _collect(self, request, tally):
        """Run one peer RPC generator; feed its result to ``tally``."""
        outcome = yield from request
        tally(outcome)

    def _request_vote(self, peer: "ElectionMember", epoch: int):
        result = yield from reliable_call(
            self.net, self.server_name, peer.server_name,
            lambda: peer.handle_vote(epoch, self.index),
            policy=self.config.retry, payload_bytes=64, response_bytes=64)
        if not result.ok or result.value is None:
            return False
        verdict, seen = result.value
        if verdict == "grant":
            return True
        self.max_epoch_seen = max(self.max_epoch_seen, seen)
        return False

    def _lead(self, epoch: int, anchor: float, announce: bool = True):
        self.is_leader = True
        self.epoch = epoch
        self.lease_deadline = anchor + self.config.lease_s
        # Record our own lease: handle_vote must refuse competing
        # candidates for as long as we legitimately hold it.
        self.leader_id = self.index
        self.lease_expires_at = self.lease_deadline
        if announce:
            self.elections_won += 1
            self._on_elected(epoch)
        reason = "lease expired"
        while True:
            yield self.sim.timeout(self.config.renew_every_s)
            if not self.is_leader:
                return  # deposed externally while sleeping
            round_anchor = self.sim.now
            acks, saw_newer = yield from self._renew_round(epoch)
            if saw_newer:
                reason = "granted away to a newer epoch"
                break
            if acks >= self.majority:
                self.lease_deadline = round_anchor + self.config.lease_s
                self.lease_expires_at = self.lease_deadline
            if self.sim.now >= self.lease_deadline:
                break
        self._step_down(reason)

    def _renew_round(self, epoch: int):
        """One round of renewals; returns (acks incl. self, saw_newer).

        Returns as soon as a majority acks (or any peer reports a newer
        epoch): waiting out a dead peer's full retry budget would make
        every round longer than ``renew_every_s`` and bleed the lease
        dry between re-anchors.  Stragglers complete in the background.
        """
        self._m_renewals.inc()
        state = {"acks": 1, "newer": False, "pending": len(self._peers)}
        decided = self.sim.event()

        def tally(outcome: str) -> None:
            state["pending"] -= 1
            if outcome == "ack":
                state["acks"] += 1
            elif outcome == "newer":
                state["newer"] = True
            if (not decided.triggered
                    and (state["newer"] or state["acks"] >= self.majority
                         or state["pending"] == 0)):
                decided.succeed(None)

        for peer in self._peers:
            self.sim.process(self._collect(self._renew_one(peer, epoch),
                                           tally))
        if self._peers and state["acks"] < self.majority:
            yield decided
        return state["acks"], state["newer"]

    def _renew_one(self, peer: "ElectionMember", epoch: int):
        result = yield from reliable_call(
            self.net, self.server_name, peer.server_name,
            lambda: peer.handle_renew(epoch, self.index),
            policy=self.config.retry, payload_bytes=64, response_bytes=64)
        if not result.ok or result.value is None:
            return "silent"
        verdict, seen = result.value
        if verdict == "ack":
            return "ack"
        self.max_epoch_seen = max(self.max_epoch_seen, seen)
        return "newer"

    def _step_down(self, reason: str) -> None:
        if not self.is_leader:
            return
        self.is_leader = False
        self._on_deposed(reason)

    def depose(self, reason: str) -> None:
        """External step-down (a command of ours was fenced)."""
        if not self.is_leader:
            return
        self._step_down(reason)
        if (self._proc is not None and self._proc.is_alive
                and self._proc is not self.sim.active_process):
            self._proc.interrupt("deposed")

    @property
    def lease_valid(self) -> bool:
        """Leader-side view: may this member still issue commands?"""
        return self.is_leader and self.sim.now < self.lease_deadline

    def __repr__(self):
        role = "leader" if self.is_leader else "follower"
        state = ("crashed" if self.crashed
                 else "paused" if self.paused else "up")
        return (f"<ElectionMember m{self.index} {role} "
                f"epoch={self.epoch} {state}>")
