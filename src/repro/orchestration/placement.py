"""Replica placement over a multi-region cloud.

§3.1: "replicas of a middlebox must be deployed on separate physical
servers" -- the chain already guarantees that.  This module assigns
chain positions to *regions* (Fig 13's setup spreads Ch-Rec across
SAVI regions) and validates isolation constraints.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.chain import FTCChain
from .cloud import CloudNetwork

__all__ = ["place_chain", "validate_isolation"]


def place_chain(chain: FTCChain, regions: Sequence[str]) -> None:
    """Pin each chain position to a region, now and across respawns."""
    if len(regions) != chain.n_positions:
        raise ValueError(
            f"need one region per position ({chain.n_positions}), "
            f"got {len(regions)}")
    net = chain.net
    if not isinstance(net, CloudNetwork):
        raise TypeError("placement requires a CloudNetwork")
    chain.region_plan = list(regions)
    for position, region in enumerate(regions):
        net.place(chain.route[position], region)


def validate_isolation(chain: FTCChain) -> List[str]:
    """Check replica isolation; returns a list of violations (empty = ok).

    Replicas of one replication group must sit on distinct servers,
    and any server may fail without taking down more than one group
    member.
    """
    violations = []
    for index, mbox in enumerate(chain.middleboxes):
        servers = [chain.route[pos] for pos in chain.group_positions(index)]
        if len(set(servers)) != len(servers):
            violations.append(
                f"group of {mbox.name!r} shares a server: {servers}")
    return violations
