"""SLO-driven brownout: the watchdog becomes an actuator (§12.3).

PR 5's :class:`~repro.flight.slo.SLOWatchdog` only *observed*.  The
:class:`BrownoutController` subscribes to its evaluation ticks and
turns sustained breaches into declarative protective actions:

* **tighten admission** -- scale the ingress token-bucket refill rate
  by ``admission_factor ** level``;
* **coarsen monitor sampling** -- multiply the watchdog's own
  evaluation interval by ``sampling_factor ** level`` (observing less
  while overloaded is itself load shedding);
* **batch piggyback acks** -- multiply the buffer's minimum feedback
  spacing by ``feedback_factor ** level`` so more packets' commit
  state shares one feedback message.

Transitions are *hysteretic*: the controller escalates one level only
after ``enter_after`` consecutive breach ticks and de-escalates only
after ``exit_after`` consecutive clean ticks, so a flapping indicator
cannot flap the actions.  At level 0 every knob is restored exactly
to its captured base value -- brownout always exits once pressure
clears.

Every transition is recorded in the flight ring, kept in
``self.transitions``, and (when a ``journal`` sink is wired) journaled
through the replicated control plane, so post-mortem tooling can
prove the enter/exit history matches what the control plane agreed
to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..telemetry import NULL_TELEMETRY

__all__ = ["BrownoutPolicy", "BrownoutTransition", "BrownoutController",
           "BROWNOUT_STEPS"]

#: Journal step names used when a transition goes through the
#: replicated control plane (mirrored into JOURNAL_STEPS).
BROWNOUT_STEPS = ("brownout-enter", "brownout-escalate",
                  "brownout-deescalate", "brownout-exit")


@dataclass(frozen=True)
class BrownoutPolicy:
    """Hysteresis thresholds and per-level action strengths."""

    enter_after: int = 2      # consecutive breach ticks to go up a level
    exit_after: int = 4       # consecutive clean ticks to come down one
    max_level: int = 3
    admission_factor: float = 0.5
    sampling_factor: float = 2.0
    feedback_factor: float = 4.0

    def __post_init__(self):
        if self.enter_after < 1 or self.exit_after < 1:
            raise ValueError("hysteresis thresholds must be >= 1")
        if self.max_level < 1:
            raise ValueError("max_level must be >= 1")
        if not 0.0 < self.admission_factor <= 1.0:
            raise ValueError("admission_factor must be in (0, 1]")
        if self.sampling_factor < 1.0 or self.feedback_factor < 1.0:
            raise ValueError("sampling/feedback factors must be >= 1")


@dataclass(frozen=True)
class BrownoutTransition:
    """One state-machine edge, as recorded and journaled."""

    t: float
    kind: str        # enter | escalate | deescalate | exit
    level: int       # level *after* the transition
    reason: str

    def describe(self) -> str:
        return f"{self.kind} level={self.level} {self.reason}"


class BrownoutController:
    """Hysteretic overload governor driven by SLO evaluations.

    Args:
        sim: the simulator (timestamps only; schedules nothing itself).
        watchdog: the :class:`SLOWatchdog` to subscribe to and whose
            sampling interval the coarsening action stretches.
        admission: optional :class:`AdmissionControl` to throttle.
        buffer: optional egress :class:`Buffer` whose feedback spacing
            the ack-batching action stretches.
        journal: optional sink called with each
            :class:`BrownoutTransition`; the overload soak wires this
            to the replicated control plane's write-ahead journal.
    """

    def __init__(self, sim, watchdog, admission=None, buffer=None,
                 policy: Optional[BrownoutPolicy] = None,
                 journal: Optional[Callable[[BrownoutTransition], None]] = None,
                 telemetry=None, name: str = "brownout"):
        self.sim = sim
        self.watchdog = watchdog
        self.admission = admission
        self.buffer = buffer
        self.policy = policy or BrownoutPolicy()
        self.journal = journal
        self.name = name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.level = 0
        self.transitions: List[BrownoutTransition] = []
        #: Transitions successfully handed to the journal sink -- the
        #: auditor proves transitions == journaled 1:1.
        self.journaled: List[BrownoutTransition] = []
        self._breach_streak = 0
        self._clean_streak = 0
        self._base_interval_s = watchdog.interval_s
        self._base_feedback_s = (buffer.feedback_min_interval_s
                                 if buffer is not None else None)
        registry = self.telemetry.registry
        self._m_transitions = registry.counter(f"{name}/transitions")
        self._m_level = registry.gauge(f"{name}/level")
        self._flight = self.telemetry.flight
        watchdog.listeners.append(self._on_evaluate)

    @property
    def active(self) -> bool:
        return self.level > 0

    # -- state machine -------------------------------------------------------

    def _on_evaluate(self, breaches) -> None:
        if breaches:
            self._clean_streak = 0
            self._breach_streak += 1
            if (self._breach_streak >= self.policy.enter_after
                    and self.level < self.policy.max_level):
                self._breach_streak = 0
                worst = breaches[0]
                self._shift(+1, f"sustained breach: {worst.objective} "
                                f"observed={worst.observed:g}")
        else:
            self._breach_streak = 0
            self._clean_streak += 1
            if self._clean_streak >= self.policy.exit_after and self.level > 0:
                self._clean_streak = 0
                self._shift(-1, "pressure cleared")

    def _shift(self, delta: int, reason: str) -> None:
        previous = self.level
        self.level += delta
        if delta > 0:
            kind = "enter" if previous == 0 else "escalate"
        else:
            kind = "exit" if self.level == 0 else "deescalate"
        self._apply()
        transition = BrownoutTransition(t=self.sim.now, kind=kind,
                                        level=self.level, reason=reason)
        self.transitions.append(transition)
        self._m_transitions.inc()
        self._m_level.set(self.level)
        if self._flight.enabled:
            self._flight.record(
                "brownout", kind, t=self.sim.now,
                detail=transition.describe(), chain="brownout")
        if self.journal is not None:
            self.journal(transition)
            self.journaled.append(transition)

    def _apply(self) -> None:
        """Set every knob from the current level (level 0 = base)."""
        level = self.level
        if self.admission is not None:
            self.admission.set_scale(self.policy.admission_factor ** level)
        self.watchdog.interval_s = (self._base_interval_s *
                                    self.policy.sampling_factor ** level)
        if self.buffer is not None:
            self.buffer.feedback_min_interval_s = (
                self._base_feedback_s * self.policy.feedback_factor ** level)

    # -- introspection -------------------------------------------------------

    def timeline(self) -> List[str]:
        return [f"[{tr.t * 1e3:.3f}ms] brownout {tr.describe()}"
                for tr in self.transitions]

    def balanced(self) -> bool:
        """True iff every enter eventually paired with an exit."""
        return self.level == 0
