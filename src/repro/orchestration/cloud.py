"""Multi-region cloud model (the SAVI testbed of §7.1, §7.5).

The paper's recovery evaluation runs on the SAVI distributed cloud --
several datacenters across Canada -- where WAN round-trip times
dominate recovery delays (Fig 13).  :class:`CloudNetwork` extends the
flat :class:`~repro.net.topology.Network` with named regions, a
configurable inter-region RTT matrix, and WAN-limited control-plane
bandwidth.  Within one region the LAN numbers apply.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net.topology import Network
from ..sim import Simulator

__all__ = ["CloudNetwork", "SAVI_REGIONS", "savi_rtt_matrix"]

#: Region names loosely modelled on SAVI's deployment across Canada.
#: "core" hosts the orchestrator in the paper's setup.
SAVI_REGIONS = ["core", "neighbor", "remote", "far-remote"]


def savi_rtt_matrix() -> Dict[str, Dict[str, float]]:
    """Inter-region RTTs (seconds), shaped after the paper's delays.

    Fig 13's initialization delays (1.2 ms same-region, 5.3 ms
    neighboring, 49.8 ms remote) pin the orchestrator-to-region RTTs;
    its 114--271 ms state-recovery delays pin the inter-region pairs
    used by state fetches.
    """
    base = {
        ("core", "core"): 0.9e-3,
        ("core", "neighbor"): 5.0e-3,
        ("core", "remote"): 49.5e-3,
        ("core", "far-remote"): 80e-3,
        ("neighbor", "neighbor"): 0.9e-3,
        ("neighbor", "remote"): 55e-3,
        ("neighbor", "far-remote"): 85e-3,
        ("remote", "remote"): 0.9e-3,
        ("remote", "far-remote"): 110e-3,
        ("far-remote", "far-remote"): 0.9e-3,
    }
    matrix: Dict[str, Dict[str, float]] = {r: {} for r in SAVI_REGIONS}
    for (a, b), rtt in base.items():
        matrix[a][b] = rtt
        matrix[b][a] = rtt
    return matrix


class CloudNetwork(Network):
    """A Network whose control plane crosses WAN region boundaries."""

    def __init__(self, sim: Simulator,
                 rtt_matrix: Optional[Dict[str, Dict[str, float]]] = None,
                 wan_bandwidth_bps: float = 1e9,
                 rtt_jitter_frac: float = 0.15,
                 seed: int = 0, **kwargs):
        super().__init__(sim, **kwargs)
        self.rtt_matrix = rtt_matrix or savi_rtt_matrix()
        self.control_bandwidth_bps = wan_bandwidth_bps
        self.rtt_jitter_frac = rtt_jitter_frac
        from ..sim import RandomStreams
        self._streams = RandomStreams(seed)

    def place(self, server_name: str, region: str) -> None:
        if region not in self.rtt_matrix:
            raise ValueError(f"unknown region {region!r}")
        self.servers[server_name].region = region

    def region_of(self, server_name: str) -> str:
        region = self.servers[server_name].region
        return region if region is not None else SAVI_REGIONS[0]

    def region_rtt(self, region_a: str, region_b: str) -> float:
        return self.rtt_matrix[region_a][region_b]

    def control_rtt(self, src: str, dst: str) -> float:
        """WAN RTT between the servers' regions, with jitter.

        The paper's wide confidence intervals (§7.5: "due to latency
        variability in the wide area network") motivate the jitter.
        """
        if src == dst:
            return 0.0
        base = self.region_rtt(self.region_of(src), self.region_of(dst))
        if base <= 2e-3 or self.rtt_jitter_frac <= 0:
            return base
        return self._streams.gauss_clamped(
            "wan-rtt", base, base * self.rtt_jitter_frac, minimum=base * 0.5)
