"""Network substrate: packets, flows, links, NICs, servers, traffic."""

from .churn import FlowChurnGenerator
from .flowgen import FlowPool, TrafficGenerator, balanced_flows
from .link import Link, LossyLink
from .nic import DEFAULT_NIC_PPS, NIC
from .packet import FlowKey, Packet, format_ip, ip
from .retry import DEFAULT_RETRY_POLICY, CallResult, RetryPolicy, reliable_call
from .topology import (
    DEFAULT_CPU_HZ,
    DEFAULT_HOP_DELAY_S,
    ControlImpairment,
    Network,
    Server,
)

__all__ = [
    "CallResult",
    "ControlImpairment",
    "DEFAULT_CPU_HZ",
    "DEFAULT_HOP_DELAY_S",
    "DEFAULT_NIC_PPS",
    "DEFAULT_RETRY_POLICY",
    "FlowChurnGenerator",
    "FlowKey",
    "FlowPool",
    "Link",
    "LossyLink",
    "NIC",
    "Network",
    "Packet",
    "RetryPolicy",
    "Server",
    "TrafficGenerator",
    "balanced_flows",
    "format_ip",
    "ip",
    "reliable_call",
]
