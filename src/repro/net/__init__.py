"""Network substrate: packets, flows, links, NICs, servers, traffic."""

from .churn import FlowChurnGenerator
from .flowgen import FlowPool, TrafficGenerator, balanced_flows
from .link import Link, LossyLink
from .nic import DEFAULT_NIC_PPS, NIC
from .packet import FlowKey, Packet, format_ip, ip
from .topology import (
    DEFAULT_CPU_HZ,
    DEFAULT_HOP_DELAY_S,
    Network,
    Server,
)

__all__ = [
    "DEFAULT_CPU_HZ",
    "DEFAULT_HOP_DELAY_S",
    "DEFAULT_NIC_PPS",
    "FlowChurnGenerator",
    "FlowKey",
    "FlowPool",
    "Link",
    "LossyLink",
    "NIC",
    "Network",
    "Packet",
    "Server",
    "TrafficGenerator",
    "balanced_flows",
    "format_ip",
    "ip",
]
