"""Network substrate: packets, flows, links, NICs, servers, traffic."""

from .channel import DATA_RETRY_POLICY, Frame, ReliableChannel
from .churn import FlowChurnGenerator
from .flowgen import (
    FlashCrowd,
    FlowPool,
    TrafficGenerator,
    WorkloadGenerator,
    WorkloadSpec,
    balanced_flows,
)
from .impairment import Corrupted, DataImpairment
from .link import Link, LossyLink
from .nic import DEFAULT_NIC_PPS, NIC
from .packet import FlowKey, Packet, format_ip, ip
from .retry import DEFAULT_RETRY_POLICY, CallResult, RetryPolicy, reliable_call
from .topology import (
    DEFAULT_CPU_HZ,
    DEFAULT_HOP_DELAY_S,
    ControlImpairment,
    Network,
    Server,
)

__all__ = [
    "CallResult",
    "ControlImpairment",
    "Corrupted",
    "DATA_RETRY_POLICY",
    "DEFAULT_CPU_HZ",
    "DEFAULT_HOP_DELAY_S",
    "DEFAULT_NIC_PPS",
    "DEFAULT_RETRY_POLICY",
    "DataImpairment",
    "FlashCrowd",
    "FlowChurnGenerator",
    "FlowKey",
    "FlowPool",
    "Frame",
    "Link",
    "LossyLink",
    "NIC",
    "Network",
    "Packet",
    "ReliableChannel",
    "RetryPolicy",
    "Server",
    "TrafficGenerator",
    "WorkloadGenerator",
    "WorkloadSpec",
    "balanced_flows",
    "format_ip",
    "ip",
    "reliable_call",
]
