"""Per-hop reliable delivery: sequencing, NACK/timeout retransmission.

FTC's inter-replica protocol (§4.1) assumes the wire between adjacent
chain positions delivers packets exactly once, in order.  Once links
can drop, duplicate, reorder, and corrupt (``repro.net.impairment``),
that assumption has to be *built*: a :class:`ReliableChannel` wraps one
chain hop with the classic machinery --

- every transmission is wrapped in a :class:`Frame` carrying a per-hop
  sequence number and a checksum (modelled: a corrupted frame arrives
  as ``Corrupted`` and is counted + discarded, like an FCS failure);
- the receiver delivers in sequence order, holds a bounded set of
  out-of-order frames, discards duplicates, and acknowledges
  cumulatively (plus the held set, SACK-style);
- a gap triggers a coalesced, rate-limited **NACK** listing the missing
  sequences, so a single loss is repaired in about one RTT;
- a timeout fallback retransmits anything unacknowledged past an RTO
  with capped exponential backoff (reusing
  :class:`repro.net.retry.RetryPolicy` for the schedule), covering
  lost NACKs/ACKs and trailing losses with no later frame to expose
  the gap;
- the sender's in-flight window is bounded: excess sends queue in
  FIFO order, so memory stays bounded under a lossy storm
  (backpressure rather than unbounded buffering).

Both endpoints of a hop live in one object (the simulator sees every
side), and ACK/NACK legs travel as modelled reverse-path callbacks that
share the wire's fate -- an installed impairment's drop rate applies to
them too.  A ``reset()`` (crash of either endpoint) bumps the channel
*epoch*; frames and acknowledgements from earlier epochs are discarded,
so a retransmission from before a failover can never corrupt the
replacement's sequence space.

Retransmission here is wire-level and complements (not replaces) the
FTC-layer retransmission of retained piggyback logs (§4.1): the channel
repairs the hop, the log protocol repairs across failovers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..sim import CancelledError, Interrupt, Simulator
from ..telemetry import NULL_PROFILER, NULL_TELEMETRY
from .retry import RetryPolicy

__all__ = ["Frame", "ReliableChannel", "DATA_RETRY_POLICY",
           "DEFAULT_WINDOW", "DEFAULT_REORDER_CAP"]

#: Data-plane retransmission schedule: much tighter than the control
#: plane's (the hop RTT is ~13 us, not milliseconds).  ``max_attempts``
#: is ignored -- the channel retries until acked or reset, because
#: giving up would convert impairment into loss.  No jitter: impaired
#: runs must be a pure function of the impairment stream.
DATA_RETRY_POLICY = RetryPolicy(timeout_s=150e-6, max_attempts=0,
                                backoff_base_s=50e-6, backoff_factor=2.0,
                                backoff_max_s=2e-3, jitter_frac=0.0)

#: Sender in-flight window (frames awaiting acknowledgement).
DEFAULT_WINDOW = 512

#: Receiver out-of-order hold capacity (frames parked awaiting a gap).
DEFAULT_REORDER_CAP = 256

#: Minimum spacing between gap-NACKs (coalesces a burst of gaps).
NACK_MIN_INTERVAL_S = 20e-6


class Frame:
    """One wire transmission: hop header (seq + checksum) + payload.

    A retransmission is a *new* frame with the same sequence number --
    the packet object itself is never re-sent after delivery, because a
    delivered packet keeps mutating as it travels on (its piggyback
    message is detached, logs stripped at tails).
    """

    __slots__ = ("seq", "epoch", "packet", "header_bytes")

    def __init__(self, seq: int, epoch: int, packet, header_bytes: int):
        self.seq = seq
        self.epoch = epoch
        self.packet = packet
        self.header_bytes = header_bytes

    @property
    def wire_size(self) -> int:
        return self.packet.wire_size + self.header_bytes

    def __repr__(self):
        return f"<Frame seq={self.seq} e{self.epoch} {self.packet!r}>"


class _Pending:
    """Sender-side bookkeeping for one unacknowledged sequence."""

    __slots__ = ("packet", "attempts", "deadline")

    def __init__(self, packet, attempts: int, deadline: float):
        self.packet = packet
        self.attempts = attempts
        self.deadline = deadline


class ReliableChannel:
    """Exactly-once, in-order delivery over one (impairable) hop."""

    def __init__(self, sim: Simulator, name: str = "channel",
                 policy: RetryPolicy = DATA_RETRY_POLICY,
                 hop_header_bytes: int = 8,
                 ack_delay_s: float = 6.5e-6,
                 window: int = DEFAULT_WINDOW,
                 reorder_cap: int = DEFAULT_REORDER_CAP,
                 loss_fn: Optional[Callable[[], bool]] = None,
                 telemetry=None):
        self.sim = sim
        self.name = name
        self.policy = policy
        self.hop_header_bytes = hop_header_bytes
        self.ack_delay_s = ack_delay_s
        self.window = window
        self.reorder_cap = reorder_cap
        #: Drawn per ACK/NACK leg; shares the data impairment's fate.
        self.loss_fn = loss_fn or (lambda: False)
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._prof = getattr(self.telemetry, "profiler", NULL_PROFILER)
        registry = self.telemetry.registry
        self._m_retx = registry.counter("channel/retransmissions")
        self._m_nacks = registry.counter("channel/nacks")
        self._m_dups = registry.counter("channel/dup_dropped")
        self._m_corrupt = registry.counter("channel/corrupt_dropped")
        self._m_stalls = registry.counter("channel/window_stalls")
        self._m_inflight = registry.histogram("channel/inflight")
        self._m_reorder_drop = registry.counter("drops/channel-reorder")
        self._flight = self.telemetry.flight

        self.epoch = 0
        self._link = None
        self._deliver: Callable[[Any], None] = lambda packet: None
        # -- sender state --
        self.next_seq = 0
        self.unacked: Dict[int, _Pending] = {}
        self.txq: List[Any] = []
        #: Send-queue pressure bound (PROTOCOL.md §12.2).  The queue is
        #: deliberately *not* hard-bounded -- dropping an in-chain
        #: packet here would desynchronize replicated state -- but past
        #: this depth the channel reports full backpressure, which the
        #: ingress gate turns into shedding where it is safe.
        self.txq_bound = 4 * window
        self.txq_peak = 0
        # -- receiver state --
        self.next_expected = 0
        self.ooo: Dict[int, Any] = {}
        self._last_nack_at = -1.0
        self._ack_inflight = False
        self._ack_again = False
        # -- counters --
        self.sent = 0
        self.delivered = 0
        self.retransmissions = 0
        self.nacks_sent = 0
        self.acks_sent = 0
        self.dup_dropped = 0
        self.corrupt_dropped = 0
        self.stale_dropped = 0
        self.reorder_dropped = 0
        self.window_stalls = 0
        self.ooo_held_peak = 0

        self._alive = True
        self._kick = sim.event()
        self._watchdog = sim.process(self._watchdog_loop(),
                                     name=f"{name}/watchdog")

    # -- wiring ---------------------------------------------------------------

    def bind(self, link) -> None:
        """Adopt a link: frames go out on it, its sink becomes ours.

        Idempotent and re-entrant: recovery replaces a failed position's
        links with fresh ones, so the chain re-binds lazily per send.
        """
        if link is self._link:
            return
        self._link = link
        if link.sink != self._on_wire:
            # Guard against re-adopting a link we already own (e.g.
            # after reset()): its sink is our receiver, and capturing
            # that as _deliver would loop delivery back into ourselves.
            self._deliver = link.sink
            link.sink = self._on_wire

    def stop(self) -> None:
        self._alive = False
        if self._watchdog is not None and self._watchdog.is_alive:
            self._watchdog.interrupt("channel stopped")
        self._watchdog = None

    def reset(self) -> None:
        """An endpoint failed: discard state, open a new epoch.

        Unacknowledged frames die with the sender (their recovery is
        the FTC layer's job); parked out-of-order frames die with the
        receiver.  Anything still in flight carries the old epoch and
        is discarded on arrival.
        """
        if self._flight.enabled:
            self._flight.record(
                "channel", "reset", t=self.sim.now,
                detail=f"{self.name} epoch {self.epoch} -> "
                       f"{self.epoch + 1}: {len(self.unacked)} unacked, "
                       f"{len(self.ooo)} parked discarded",
                chain="ctrl")
        self.epoch += 1
        self.next_seq = 0
        self.unacked.clear()
        self.txq.clear()
        self.next_expected = 0
        self.ooo.clear()
        self._ack_inflight = False
        self._ack_again = False
        self._last_nack_at = -1.0
        self._link = None

    # -- sender ----------------------------------------------------------------

    def send(self, packet) -> None:
        """Send a packet; it is delivered exactly once, in order."""
        prof = self._prof
        prof_t0 = prof.t0()
        if len(self.unacked) >= self.window:
            self.txq.append(packet)
            if len(self.txq) > self.txq_peak:
                self.txq_peak = len(self.txq)
            self.window_stalls += 1
            self._m_stalls.inc()
        else:
            self._transmit(packet)
        prof.add("channel/frame", prof_t0)

    def _transmit(self, packet) -> None:
        seq = self.next_seq
        self.next_seq += 1
        self.sent += 1
        self.unacked[seq] = _Pending(
            packet, attempts=1,
            deadline=self.sim.now + self.policy.timeout_s)
        if self.telemetry.enabled:
            self._m_inflight.observe(float(len(self.unacked)), t=self.sim.now)
        self._send_frame(seq, packet)
        if not self._kick.triggered:
            self._kick.succeed()

    def _send_frame(self, seq: int, packet) -> None:
        self._link.send(Frame(seq, self.epoch, packet,
                              self.hop_header_bytes))

    def _refill(self) -> None:
        while self.txq and len(self.unacked) < self.window:
            self._transmit(self.txq.pop(0))

    def _rto(self, attempts: int) -> float:
        """Deadline for retry ``attempts``: base timeout + capped backoff."""
        return self.policy.timeout_s + self.policy.backoff_s(max(1, attempts))

    def _retransmit(self, seq: int, pending: _Pending) -> None:
        pending.attempts += 1
        pending.deadline = self.sim.now + self._rto(pending.attempts)
        self.retransmissions += 1
        self._m_retx.inc()
        if self._flight.enabled:
            pid = getattr(pending.packet, "pid", None)
            self._flight.record(
                "channel", "retransmit", t=self.sim.now, pid=pid,
                detail=f"{self.name} seq {seq} attempt {pending.attempts}",
                chain=f"pid:{pid}" if pid is not None else None)
        self._send_frame(seq, pending.packet)

    def _watchdog_loop(self):
        """Timeout fallback: retransmit anything unacked past its RTO."""
        check_interval = self.policy.timeout_s / 2.0
        try:
            while self._alive:
                if not self.unacked:
                    self._kick = self.sim.event()
                    yield self._kick
                    continue
                yield self.sim.timeout(check_interval)
                now = self.sim.now
                for seq in sorted(self.unacked):
                    pending = self.unacked.get(seq)
                    if pending is not None and pending.deadline <= now:
                        self._retransmit(seq, pending)
        except (Interrupt, CancelledError):
            return

    # -- receiver ---------------------------------------------------------------

    def _on_wire(self, obj) -> None:
        prof = self._prof
        prof_t0 = prof.t0()
        self._receive(obj)
        prof.add("channel/frame", prof_t0)

    def _receive(self, obj) -> None:
        if getattr(obj, "corrupted_wire", False):
            obj = obj.inner
            if isinstance(obj, Frame) and obj.epoch == self.epoch:
                self.corrupt_dropped += 1
                self._m_corrupt.inc()
            return  # checksum failure: recovered like a loss
        if not isinstance(obj, Frame):
            self._deliver(obj)  # unframed traffic passes through
            return
        if obj.epoch != self.epoch:
            self.stale_dropped += 1
            return
        seq = obj.seq
        if seq < self.next_expected or seq in self.ooo:
            self.dup_dropped += 1
            self._m_dups.inc()
            self._schedule_ack()  # re-ACK: the original ACK may be lost
            return
        if seq == self.next_expected:
            self._deliver_up(obj.packet)
            while self.next_expected in self.ooo:
                self._deliver_up(self.ooo.pop(self.next_expected).packet)
        else:
            if len(self.ooo) >= self.reorder_cap:
                # Bounded memory beats holding everything: drop it;
                # the sender's RTO will offer it again once the gap
                # ahead of it has been repaired and space freed.
                self.reorder_dropped += 1
                self._m_reorder_drop.inc()
                if self._flight.enabled:
                    self._flight.record(
                        "channel", "reorder-drop", t=self.sim.now,
                        detail=f"{self.name} ooo hold full "
                               f"({self.reorder_cap}); seq {seq} "
                               f"re-offered by sender RTO")
                return
            self.ooo[seq] = obj
            self.ooo_held_peak = max(self.ooo_held_peak, len(self.ooo))
            self._schedule_nack(seq)
        self._schedule_ack()

    def _deliver_up(self, packet) -> None:
        self.delivered += 1
        self.next_expected += 1
        self._deliver(packet)

    # -- acknowledgement legs ------------------------------------------------------

    def _schedule_ack(self) -> None:
        """Coalesced cumulative ACK: at most one in flight at a time."""
        if self._ack_inflight:
            self._ack_again = True
            return
        self._ack_inflight = True
        lost = self.loss_fn()
        epoch = self.epoch

        def arrive():
            self._ack_inflight = False
            if self._ack_again:
                self._ack_again = False
                self._schedule_ack()
            if lost or epoch != self.epoch:
                return
            self._on_ack(epoch, self.next_expected - 1,
                         frozenset(self.ooo))

        self.acks_sent += 1
        self.sim.schedule_callback(self.ack_delay_s, arrive)

    def _on_ack(self, epoch: int, cumulative: int, sacked) -> None:
        if epoch != self.epoch:
            return
        prof = self._prof
        prof_t0 = prof.t0()
        acked = [seq for seq in self.unacked
                 if seq <= cumulative or seq in sacked]
        for seq in acked:
            del self.unacked[seq]
        if acked:
            self._refill()
        prof.add("channel/ack", prof_t0)

    def _schedule_nack(self, got_seq: int) -> None:
        """Gap-NACK: list the missing sequences below an arrival."""
        now = self.sim.now
        if now - self._last_nack_at < NACK_MIN_INTERVAL_S:
            return
        missing = tuple(seq for seq in range(self.next_expected, got_seq)
                        if seq not in self.ooo)
        if not missing:
            return
        self._last_nack_at = now
        self.nacks_sent += 1
        self._m_nacks.inc()
        if self._flight.enabled:
            self._flight.record(
                "channel", "nack", t=now,
                detail=f"{self.name} missing seqs "
                       f"{list(missing)}", chain=None)
        lost = self.loss_fn()
        epoch = self.epoch

        def arrive():
            if lost or epoch != self.epoch:
                return
            self._on_nack(epoch, missing)

        self.sim.schedule_callback(self.ack_delay_s, arrive)

    def _on_nack(self, epoch: int, missing) -> None:
        if epoch != self.epoch:
            return
        for seq in missing:
            pending = self.unacked.get(seq)
            if pending is not None:
                self._retransmit(seq, pending)

    # -- introspection -------------------------------------------------------------

    @property
    def inflight(self) -> int:
        return len(self.unacked)

    def stats(self) -> Dict[str, int]:
        return {
            "sent": self.sent, "delivered": self.delivered,
            "retransmissions": self.retransmissions,
            "nacks_sent": self.nacks_sent, "acks_sent": self.acks_sent,
            "dup_dropped": self.dup_dropped,
            "corrupt_dropped": self.corrupt_dropped,
            "stale_dropped": self.stale_dropped,
            "reorder_dropped": self.reorder_dropped,
            "window_stalls": self.window_stalls,
            "ooo_held_peak": self.ooo_held_peak,
            "txq_peak": self.txq_peak,
            "inflight": len(self.unacked), "queued": len(self.txq),
        }

    def __repr__(self):
        return (f"<ReliableChannel {self.name} e{self.epoch} "
                f"inflight={len(self.unacked)} next={self.next_seq}>")
