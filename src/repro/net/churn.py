"""Flow-churn traffic: connections arrive, live, and depart.

Constant flow pools exercise a NAT/firewall's steady state; churn
exercises allocation, eviction, and state-store growth -- the traffic
shape enterprise chains actually see.  Flows arrive as a Poisson
process, send packets at a per-flow rate for an exponentially
distributed lifetime, then stop.
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..sim import RandomStreams, Simulator
from .packet import FlowKey, Packet, ip

__all__ = ["FlowChurnGenerator"]


class FlowChurnGenerator:
    """Poisson flow arrivals; each flow is a finite packet train."""

    def __init__(self, sim: Simulator, sink: Callable[[Packet], None],
                 flow_arrival_rate: float = 1000.0,
                 flow_lifetime_s: float = 0.01,
                 per_flow_pps: float = 10_000.0,
                 packet_size: int = 256,
                 dst: str = "192.168.0.1",
                 streams: Optional[RandomStreams] = None,
                 name: str = "churn"):
        if min(flow_arrival_rate, flow_lifetime_s, per_flow_pps) <= 0:
            raise ValueError("rates and lifetime must be positive")
        self.sim = sim
        self.sink = sink
        self.flow_arrival_rate = flow_arrival_rate
        self.flow_lifetime_s = flow_lifetime_s
        self.per_flow_pps = per_flow_pps
        self.packet_size = packet_size
        self.dst_ip = ip(dst)
        self.streams = streams or RandomStreams(0)
        self.name = name
        self.flows_started = 0
        self.flows_finished = 0
        self.packets_sent = 0
        self.active_flows = 0
        self._flow_ids = itertools.count()
        self._stopped = False
        self._process = sim.process(self._arrivals(), name=name)

    def stop(self) -> None:
        self._stopped = True

    @property
    def offered_pps(self) -> float:
        """Long-run average offered load."""
        return (self.flow_arrival_rate * self.flow_lifetime_s *
                self.per_flow_pps)

    def _arrivals(self):
        while not self._stopped:
            yield self.sim.timeout(self.streams.exponential(
                f"{self.name}/arrivals", 1.0 / self.flow_arrival_rate))
            if self._stopped:
                return
            flow_id = next(self._flow_ids)
            self.sim.process(self._flow(flow_id),
                             name=f"{self.name}/flow{flow_id}")

    def _flow(self, flow_id: int):
        self.flows_started += 1
        self.active_flows += 1
        src_ip = ip("10.2.0.0") + 1 + (flow_id >> 14)
        flow = FlowKey(src_ip, self.dst_ip,
                       1024 + (flow_id & 0x3FFF), 80)
        lifetime = self.streams.exponential(
            f"{self.name}/lifetime", self.flow_lifetime_s)
        deadline = self.sim.now + lifetime
        while self.sim.now < deadline and not self._stopped:
            yield self.sim.timeout(self.streams.exponential(
                f"{self.name}/pkts", 1.0 / self.per_flow_pps))
            if self._stopped:
                break
            packet = Packet(flow=flow, size=self.packet_size,
                            created_at=self.sim.now)
            packet.meta["gen"] = self.name
            self.packets_sent += 1
            self.sink(packet)
        self.active_flows -= 1
        self.flows_finished += 1
