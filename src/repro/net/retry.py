"""Control-plane retry policy: timeouts + exponential backoff.

The paper assumes a reliable control plane (§6: the orchestrator and
control modules talk over TCP), but a lost or delayed control message
must never hang its caller -- recovery in particular (§5.2) has to make
progress under exactly the conditions that caused the failure it is
repairing.  :func:`reliable_call` wraps :meth:`Network.control_call`
with per-attempt deadlines and exponential backoff, and is used by the
orchestrator's heartbeats, the recovery state fetches, and the chaos
soak's impaired-control scenarios.

Deadlines are RTT-aware: a fixed timeout tuned for the LAN would fire
before a WAN response (Fig 13's inter-region fetches take 50--100 ms)
could possibly arrive, so each attempt waits at least
``rtt_multiplier * (sampled RTT + transfer time)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..sim import AnyOf
from ..telemetry import NULL_TELEMETRY

__all__ = ["RetryPolicy", "CallResult", "reliable_call", "DEFAULT_RETRY_POLICY"]


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout/retry semantics for one class of control-plane calls."""

    #: Per-attempt deadline floor (the RTT-aware deadline may exceed it).
    timeout_s: float = 2e-3
    max_attempts: int = 5
    #: Sleep after the first timed-out attempt; doubles (by
    #: ``backoff_factor``) on each further timeout, capped at
    #: ``backoff_max_s``.
    backoff_base_s: float = 0.5e-3
    backoff_factor: float = 2.0
    backoff_max_s: float = 20e-3
    #: Uniform +/- fraction applied to each backoff when an RNG stream
    #: is supplied (decorrelates retry storms after a correlated fault).
    jitter_frac: float = 0.1
    #: Deadline = max(timeout_s, rtt_multiplier * (RTT + transfer)).
    rtt_multiplier: float = 3.0

    def backoff_s(self, attempt: int, rng=None) -> float:
        """Backoff before retry ``attempt`` (1-based count of timeouts)."""
        raw = min(self.backoff_base_s * self.backoff_factor ** (attempt - 1),
                  self.backoff_max_s)
        if rng is not None and self.jitter_frac > 0:
            raw *= 1.0 + rng.uniform(-self.jitter_frac, self.jitter_frac)
        return raw

    def deadline_s(self, rtt_s: float, transfer_s: float) -> float:
        return max(self.timeout_s, self.rtt_multiplier * (rtt_s + transfer_s))


DEFAULT_RETRY_POLICY = RetryPolicy()


@dataclass
class CallResult:
    """Outcome of a :func:`reliable_call`."""

    ok: bool
    value: Any = None
    attempts: int = 1

    @property
    def retries(self) -> int:
        return max(0, self.attempts - 1)


def reliable_call(net, src: str, dst: str, handler: Callable[[], object],
                  policy: RetryPolicy = DEFAULT_RETRY_POLICY,
                  payload_bytes: int = 256, response_bytes: int = 256,
                  rng=None):
    """Generator (use with ``yield from``): a control call that retries.

    Each attempt races the RPC against an RTT-aware deadline; the
    losing event is cancelled so neither a stale deadline nor a late
    response fires into the void.  Returns a :class:`CallResult` --
    ``ok=False`` after ``max_attempts`` timeouts, so a dead peer or a
    fully partitioned control plane costs bounded time, never a hang.
    """
    sim = net.sim
    registry = getattr(net, "telemetry", NULL_TELEMETRY).registry
    transfer = (payload_bytes + response_bytes) * 8.0 / net.control_bandwidth_bps
    for attempt in range(1, policy.max_attempts + 1):
        rtt = net.control_rtt(src, dst)
        call = net.control_call(src, dst, handler,
                                payload_bytes=payload_bytes,
                                response_bytes=response_bytes)
        deadline = sim.timeout(policy.deadline_s(rtt, transfer))
        yield AnyOf(sim, [call, deadline])
        if call.processed and call.ok:
            deadline.cancel()
            if attempt > 1:
                registry.counter("net/control_retries").inc(attempt - 1)
            return CallResult(ok=True, value=call.value, attempts=attempt)
        call.cancel()
        if attempt < policy.max_attempts:
            yield sim.timeout(policy.backoff_s(attempt, rng))
    registry.counter("net/control_retries").inc(policy.max_attempts - 1)
    registry.counter("net/control_timeouts").inc()
    return CallResult(ok=False, attempts=policy.max_attempts)
