"""Traffic generation (the MoonGen / pktgen role).

Generators emit :class:`~repro.net.packet.Packet` objects into a sink
callable at a configured offered load, with deterministic (constant
bit rate) or Poisson interarrivals, over a pool of flows balanced
across NIC receive queues so multi-threaded middleboxes actually see
parallel work.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional, Sequence

from ..sim import RandomStreams, Simulator
from .packet import FlowKey, Packet, ip

__all__ = ["balanced_flows", "TrafficGenerator", "FlowPool"]


def balanced_flows(n_flows: int, n_queues: int,
                   base_src: str = "10.1.0.0",
                   dst: str = "192.168.0.1") -> List[FlowKey]:
    """Build ``n_flows`` flows spread evenly over ``n_queues`` RSS queues.

    Flow ``i`` hashes to queue ``i % n_queues``, so round-robin emission
    keeps every worker thread busy -- mirroring the uniform traffic the
    paper's generators produce.
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    flows: List[FlowKey] = []
    next_queue = 0
    src_base = ip(base_src)
    dst_ip = ip(dst)
    candidate = 0
    while len(flows) < n_flows:
        src_ip = src_base + 1 + (candidate >> 14)
        src_port = 1024 + (candidate & 0x3FFF)
        candidate += 1
        flow = FlowKey(src_ip, dst_ip, src_port, 80)
        if flow.rss_hash() % n_queues == next_queue:
            flows.append(flow)
            next_queue = (next_queue + 1) % n_queues
    return flows


class FlowPool:
    """A pool of flows with a selection policy."""

    def __init__(self, flows: Sequence[FlowKey], policy: str = "round-robin",
                 streams: Optional[RandomStreams] = None):
        if not flows:
            raise ValueError("flow pool cannot be empty")
        if policy not in ("round-robin", "uniform"):
            raise ValueError(f"unknown flow selection policy {policy!r}")
        self.flows = list(flows)
        self.policy = policy
        self._cycle = itertools.cycle(self.flows)
        self._streams = streams or RandomStreams(0)

    def next_flow(self) -> FlowKey:
        if self.policy == "round-robin":
            return next(self._cycle)
        return self._streams.choice("flowpool", self.flows)


class TrafficGenerator:
    """Feeds packets into a sink at a target rate.

    Args:
        sim: the simulator.
        sink: callable receiving each packet (e.g. chain ingress).
        rate_pps: offered load in packets per second.
        flows: the flow pool to draw from.
        packet_size: bytes per packet (paper default 256 B).
        arrivals: ``"deterministic"`` for throughput tests or
            ``"poisson"`` for latency-vs-load curves.
        count: stop after this many packets (None = until stopped).
    """

    def __init__(self, sim: Simulator, sink: Callable[[Packet], None],
                 rate_pps: float, flows: Sequence[FlowKey],
                 packet_size: int = 256, arrivals: str = "deterministic",
                 count: Optional[int] = None,
                 streams: Optional[RandomStreams] = None,
                 name: str = "trafficgen"):
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if arrivals not in ("deterministic", "poisson"):
            raise ValueError(f"unknown arrival process {arrivals!r}")
        self.sim = sim
        self.sink = sink
        self.rate_pps = rate_pps
        self.pool = FlowPool(flows, streams=streams)
        self.packet_size = packet_size
        self.arrivals = arrivals
        self.count = count
        self.name = name
        self._streams = streams or RandomStreams(0)
        self.sent = 0
        self._stopped = False
        self._process = sim.process(self._run(), name=name)

    @property
    def done(self):
        """Event fired when the generator finishes (count exhausted/stop)."""
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def _interarrival(self) -> float:
        mean = 1.0 / self.rate_pps
        if self.arrivals == "poisson":
            return self._streams.exponential(f"{self.name}/arrivals", mean)
        return mean

    def _run(self):
        while not self._stopped:
            if self.count is not None and self.sent >= self.count:
                break
            yield self.sim.timeout(self._interarrival())
            if self._stopped:
                break
            packet = Packet(flow=self.pool.next_flow(),
                            size=self.packet_size,
                            created_at=self.sim.now)
            packet.meta["gen"] = self.name
            self.sent += 1
            self.sink(packet)
        return self.sent
