"""Traffic generation (the MoonGen / pktgen role).

Generators emit :class:`~repro.net.packet.Packet` objects into a sink
callable at a configured offered load, with deterministic (constant
bit rate) or Poisson interarrivals, over a pool of flows balanced
across NIC receive queues so multi-threaded middleboxes actually see
parallel work.

Beyond the constant-rate :class:`TrafficGenerator`, the workload layer
(PROTOCOL.md §12.1) models what "millions of users" actually send:
:class:`WorkloadSpec` describes heavy-tailed per-flow weights
(Zipf/Pareto elephants and mice), a diurnal load cycle, and scripted
:class:`FlashCrowd` windows; :class:`WorkloadGenerator` turns the spec
into a seeded-deterministic packet stream with per-flow priority
classes stamped into ``packet.meta["prio"]``.
"""

from __future__ import annotations

import bisect
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..sim import RandomStreams, Simulator
from .packet import FlowKey, Packet, ip

__all__ = ["balanced_flows", "TrafficGenerator", "FlowPool",
           "FlashCrowd", "WorkloadSpec", "WorkloadGenerator"]


def balanced_flows(n_flows: int, n_queues: int,
                   base_src: str = "10.1.0.0",
                   dst: str = "192.168.0.1") -> List[FlowKey]:
    """Build ``n_flows`` flows spread evenly over ``n_queues`` RSS queues.

    Flow ``i`` hashes to queue ``i % n_queues``, so round-robin emission
    keeps every worker thread busy -- mirroring the uniform traffic the
    paper's generators produce.
    """
    if n_flows < 1:
        raise ValueError("need at least one flow")
    flows: List[FlowKey] = []
    next_queue = 0
    src_base = ip(base_src)
    dst_ip = ip(dst)
    candidate = 0
    while len(flows) < n_flows:
        src_ip = src_base + 1 + (candidate >> 14)
        src_port = 1024 + (candidate & 0x3FFF)
        candidate += 1
        flow = FlowKey(src_ip, dst_ip, src_port, 80)
        if flow.rss_hash() % n_queues == next_queue:
            flows.append(flow)
            next_queue = (next_queue + 1) % n_queues
    return flows


class FlowPool:
    """A pool of flows with a selection policy."""

    def __init__(self, flows: Sequence[FlowKey], policy: str = "round-robin",
                 streams: Optional[RandomStreams] = None):
        if not flows:
            raise ValueError("flow pool cannot be empty")
        if policy not in ("round-robin", "uniform"):
            raise ValueError(f"unknown flow selection policy {policy!r}")
        self.flows = list(flows)
        self.policy = policy
        self._cycle = itertools.cycle(self.flows)
        self._streams = streams or RandomStreams(0)

    def next_flow(self) -> FlowKey:
        if self.policy == "round-robin":
            return next(self._cycle)
        return self._streams.choice("flowpool", self.flows)


class TrafficGenerator:
    """Feeds packets into a sink at a target rate.

    Args:
        sim: the simulator.
        sink: callable receiving each packet (e.g. chain ingress).
        rate_pps: offered load in packets per second.
        flows: the flow pool to draw from.
        packet_size: bytes per packet (paper default 256 B).
        arrivals: ``"deterministic"`` for throughput tests or
            ``"poisson"`` for latency-vs-load curves.
        count: stop after this many packets (None = until stopped).
    """

    def __init__(self, sim: Simulator, sink: Callable[[Packet], None],
                 rate_pps: float, flows: Sequence[FlowKey],
                 packet_size: int = 256, arrivals: str = "deterministic",
                 count: Optional[int] = None,
                 streams: Optional[RandomStreams] = None,
                 name: str = "trafficgen"):
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        if arrivals not in ("deterministic", "poisson"):
            raise ValueError(f"unknown arrival process {arrivals!r}")
        self.sim = sim
        self.sink = sink
        self.rate_pps = rate_pps
        self.pool = FlowPool(flows, streams=streams)
        self.packet_size = packet_size
        self.arrivals = arrivals
        self.count = count
        self.name = name
        self._streams = streams or RandomStreams(0)
        self.sent = 0
        self._stopped = False
        self._process = sim.process(self._run(), name=name)

    @property
    def done(self):
        """Event fired when the generator finishes (count exhausted/stop)."""
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def _interarrival(self) -> float:
        mean = 1.0 / self.rate_pps
        if self.arrivals == "poisson":
            return self._streams.exponential(f"{self.name}/arrivals", mean)
        return mean

    def _run(self):
        while not self._stopped:
            if self.count is not None and self.sent >= self.count:
                break
            yield self.sim.timeout(self._interarrival())
            if self._stopped:
                break
            packet = Packet(flow=self.pool.next_flow(),
                            size=self.packet_size,
                            created_at=self.sim.now)
            packet.meta["gen"] = self.name
            self.sent += 1
            self.sink(packet)
        return self.sent


# -- workload layer (PROTOCOL.md §12.1) -----------------------------------


@dataclass(frozen=True)
class FlashCrowd:
    """One scripted flash-crowd window: the offered load is multiplied
    by ``multiplier`` for ``duration_s`` starting at ``at_s``."""

    at_s: float
    duration_s: float
    multiplier: float

    def __post_init__(self):
        if self.at_s < 0:
            raise ValueError("flash at_s must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("flash duration_s must be positive")
        if self.multiplier <= 0:
            raise ValueError("flash multiplier must be positive")

    def active(self, t: float) -> bool:
        return self.at_s <= t < self.at_s + self.duration_s


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of an offered-load process.

    ``rate_at(t)`` composes three deterministic factors::

        base_pps  *  (1 + diurnal_amplitude * sin(2*pi*t / diurnal_period_s))
                  *  product(flash.multiplier for active flashes)

    Per-flow weights follow a Zipf/Pareto tail with exponent
    ``pareto_alpha`` (flow ``i`` carries weight ``(i+1)**-alpha``), so a
    few elephant flows dominate while a long tail of mice trickles --
    the shape real SFC traffic has.  Each flow belongs to one of
    ``n_classes`` priority classes (flow index mod ``n_classes``;
    higher class = more important), which admission control uses for
    shed ordering.
    """

    base_pps: float = 2e4
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 1.0
    flashes: Tuple[FlashCrowd, ...] = field(default_factory=tuple)
    pareto_alpha: float = 1.3
    n_flows: int = 64
    n_classes: int = 3
    packet_size: int = 256
    arrivals: str = "poisson"

    def __post_init__(self):
        if self.base_pps <= 0:
            raise ValueError("base_pps must be positive")
        if not 0.0 <= self.diurnal_amplitude <= 0.95:
            raise ValueError("diurnal_amplitude must be in [0, 0.95]")
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")
        if self.pareto_alpha <= 0:
            raise ValueError("pareto_alpha must be positive")
        if self.n_flows < 1:
            raise ValueError("n_flows must be >= 1")
        if self.n_classes < 1:
            raise ValueError("n_classes must be >= 1")
        if self.packet_size < 64:
            raise ValueError("packet_size must be >= 64")
        if self.arrivals not in ("deterministic", "poisson"):
            raise ValueError(f"unknown arrival process {self.arrivals!r}")

    def rate_at(self, t: float) -> float:
        """Offered load (pps) at virtual time ``t``."""
        rate = self.base_pps
        if self.diurnal_amplitude:
            rate *= 1.0 + self.diurnal_amplitude * math.sin(
                2.0 * math.pi * t / self.diurnal_period_s)
        for flash in self.flashes:
            if flash.active(t):
                rate *= flash.multiplier
        return rate

    def peak_rate(self) -> float:
        """Upper bound on :meth:`rate_at` over all time."""
        rate = self.base_pps * (1.0 + self.diurnal_amplitude)
        for flash in self.flashes:
            rate *= flash.multiplier
        return rate

    @classmethod
    def parse(cls, text: str) -> "WorkloadSpec":
        """Parse ``key=value`` pairs, e.g.
        ``base=2e4,flash=0.01:0.02:4,diurnal=0.3:0.05,alpha=1.3,flows=64,classes=3``.

        Keys: ``base`` (pps), ``flash`` (``at:dur:mult``, ``+``-separated
        for several windows), ``diurnal`` (``amplitude:period``),
        ``alpha``, ``flows``, ``classes``, ``size``, ``arrivals``.
        """
        def num(value: str, key: str, cast=float):
            try:
                return cast(value)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"bad value for {key!r}: {value!r}") from exc

        kwargs: dict = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"expected key=value, got {part!r}")
            key, _, value = part.partition("=")
            key = key.strip().lower()
            if key == "base":
                kwargs["base_pps"] = num(value, key)
            elif key == "flash":
                flashes = list(kwargs.get("flashes", ()))
                for window in value.split("+"):
                    fields = window.split(":")
                    if len(fields) != 3:
                        raise ValueError(
                            f"flash window must be at:dur:mult, "
                            f"got {window!r}")
                    flashes.append(FlashCrowd(*(num(f, key)
                                                for f in fields)))
                kwargs["flashes"] = tuple(flashes)
            elif key == "diurnal":
                fields = value.split(":")
                if len(fields) != 2:
                    raise ValueError(
                        f"diurnal must be amplitude:period, got {value!r}")
                kwargs["diurnal_amplitude"] = num(fields[0], key)
                kwargs["diurnal_period_s"] = num(fields[1], key)
            elif key == "alpha":
                kwargs["pareto_alpha"] = num(value, key)
            elif key == "flows":
                kwargs["n_flows"] = num(value, key, int)
            elif key == "classes":
                kwargs["n_classes"] = num(value, key, int)
            elif key == "size":
                kwargs["packet_size"] = num(value, key, int)
            elif key == "arrivals":
                kwargs["arrivals"] = value.strip()
            else:
                raise ValueError(f"unknown workload key {key!r}")
        return cls(**kwargs)

    def describe(self) -> str:
        parts = [f"base={self.base_pps:g}pps",
                 f"alpha={self.pareto_alpha:g}",
                 f"flows={self.n_flows}", f"classes={self.n_classes}",
                 f"arrivals={self.arrivals}"]
        if self.diurnal_amplitude:
            parts.append(f"diurnal={self.diurnal_amplitude:g}"
                         f"@{self.diurnal_period_s:g}s")
        for flash in self.flashes:
            parts.append(f"flash={flash.multiplier:g}x"
                         f"@[{flash.at_s:g},"
                         f"{flash.at_s + flash.duration_s:g})s")
        return " ".join(parts)


class WorkloadGenerator:
    """Drives a sink from a :class:`WorkloadSpec`.

    Deterministic for a given (spec, seed): flow weights, class
    assignment, interarrivals, and flow selection are all pure
    functions of the named random streams.  The instantaneous rate is
    re-read from ``spec.rate_at(now)`` before every interarrival draw,
    so diurnal drift and flash windows take effect mid-run without any
    rescheduling machinery.
    """

    def __init__(self, sim: Simulator, sink: Callable[[Packet], None],
                 spec: WorkloadSpec, n_queues: int = 1,
                 streams: Optional[RandomStreams] = None,
                 name: str = "workload"):
        self.sim = sim
        self.sink = sink
        self.spec = spec
        self.name = name
        self._streams = streams or RandomStreams(0)
        self.flows = balanced_flows(spec.n_flows, n_queues)
        #: Zipf/Pareto weights: flow i carries (i+1)**-alpha of the load.
        weights = [(i + 1) ** -spec.pareto_alpha
                   for i in range(spec.n_flows)]
        total = sum(weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0
        #: Flash-crowd multiplier applied on top of the spec (chaos
        #: faults dial this up and back down; 1.0 = inert).
        self.boost = 1.0
        self.sent = 0
        self.sent_by_class = [0] * spec.n_classes
        self._stopped = False
        self._process = sim.process(self._run(), name=name)

    @property
    def done(self):
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def class_of(self, flow_index: int) -> int:
        """Priority class of flow ``i`` (higher = more important)."""
        return flow_index % self.spec.n_classes

    def _pick_flow(self) -> int:
        draw = self._streams.uniform(f"{self.name}/flows", 0.0, 1.0)
        return min(bisect.bisect_left(self._cumulative, draw),
                   self.spec.n_flows - 1)

    def _interarrival(self) -> float:
        rate = self.spec.rate_at(self.sim.now) * self.boost
        mean = 1.0 / rate
        if self.spec.arrivals == "poisson":
            return self._streams.exponential(f"{self.name}/arrivals", mean)
        return mean

    def _run(self):
        while not self._stopped:
            yield self.sim.timeout(self._interarrival())
            if self._stopped:
                break
            index = self._pick_flow()
            packet = Packet(flow=self.flows[index],
                            size=self.spec.packet_size,
                            created_at=self.sim.now)
            prio = self.class_of(index)
            packet.meta["gen"] = self.name
            packet.meta["prio"] = prio
            self.sent += 1
            self.sent_by_class[prio] += 1
            self.sink(packet)
        return self.sent
