"""Point-to-point links.

A link models propagation delay plus serialization at a byte rate.
Delivery is FIFO: a packet never overtakes an earlier one on the same
link, which the FTC protocol relies on between adjacent replicas
(sequence numbers still guard against drops, which the link can also
inject for fault testing).

Under a :class:`repro.net.impairment.DataImpairment` (installed via
:meth:`Network.impair_data`) a link additionally drops, duplicates,
reorders, and corrupts packets from a dedicated seeded stream -- the
data-plane adversity the reliability layer (``repro.net.channel``)
exists to survive.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim import RateLimiter, Simulator
from ..telemetry import NULL_TELEMETRY
from .impairment import Corrupted, DataImpairment

__all__ = ["Link", "LossyLink"]


class Link:
    """A unidirectional link with delay and bandwidth.

    ``sink`` is a callable invoked with each delivered packet (usually
    a NIC's ``receive``).
    """

    def __init__(self, sim: Simulator, sink: Callable[[Any], None],
                 delay_s: float = 5e-6, bandwidth_bps: float = 40e9,
                 name: str = "link", telemetry=None):
        self.sim = sim
        self.sink = sink
        self.delay_s = delay_s
        self.bandwidth_bps = bandwidth_bps
        self.name = name
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_impair_drop = self.telemetry.registry.counter(
            "drops/link-impair")
        self._flight = self.telemetry.flight
        self.tx_packets = 0
        self.tx_bytes = 0
        self._impairment: Optional[DataImpairment] = None
        self._impair_rng = None
        self.impair_dropped = 0
        self.impair_duplicated = 0
        self.impair_reordered = 0
        self.impair_corrupted = 0
        self._serializer = RateLimiter(
            sim, rate=1e12,  # negligible base slot; cost_fn dominates
            cost_fn=self._serialization_time, name=f"{name}/serializer")

    def _serialization_time(self, packet) -> float:
        return packet.wire_size * 8.0 / self.bandwidth_bps

    def send(self, packet) -> None:
        """Enqueue a packet; it arrives after serialization + delay."""
        spec = self._impairment
        if spec is not None and spec.active(self.sim.now):
            self._send_impaired(packet, spec)
            return
        self.tx_packets += 1
        self.tx_bytes += packet.wire_size
        serialization = self._serializer.admission_delay(packet)
        self.sim.schedule_callback(serialization + self.delay_s,
                                   lambda: self.sink(packet))

    # -- impairment ----------------------------------------------------------

    def set_impairment(self, spec: Optional[DataImpairment], rng) -> None:
        """Install (or clear, with ``None``) data-plane impairment."""
        self._impairment = spec
        self._impair_rng = rng

    def clear_impairment(self) -> None:
        self._impairment = None

    def _send_impaired(self, packet, spec: DataImpairment) -> None:
        """One impaired transmission: drop / dup / corrupt / reorder.

        Draw order is fixed (drop, dup, then per-copy corrupt and
        reorder) so a run is a pure function of the impairment stream.
        Duplicates burn wire time for each copy; dropped packets still
        count as offered (``tx_packets``/``tx_bytes`` measure what the
        sender pushed into the link, as on the unimpaired path).
        """
        rng = self._impair_rng
        self.tx_packets += 1
        self.tx_bytes += packet.wire_size
        if spec.drop_rate and rng.random() < spec.drop_rate:
            self.impair_dropped += 1
            self._m_impair_drop.inc()
            if self._flight.enabled:
                self._flight.record(
                    "link", "impair-drop", t=self.sim.now,
                    pid=getattr(packet, "pid", None),
                    detail=f"{self.name} seeded loss")
            return
        copies = 1
        if spec.dup_rate and rng.random() < spec.dup_rate:
            copies = 2
            self.impair_duplicated += 1
            self.tx_packets += 1
            self.tx_bytes += packet.wire_size
        for _ in range(copies):
            deliver = packet
            if spec.corrupt_rate and rng.random() < spec.corrupt_rate:
                self.impair_corrupted += 1
                deliver = Corrupted(packet)
            extra = 0.0
            if spec.reorder_rate and rng.random() < spec.reorder_rate:
                self.impair_reordered += 1
                extra = spec.reorder_delay_s * (1.0 + rng.random())
            serialization = self._serializer.admission_delay(deliver)
            self.sim.schedule_callback(
                serialization + self.delay_s + extra,
                lambda p=deliver: self.sink(p))


class LossyLink(Link):
    """A link that deterministically drops packets (legacy test stub).

    ``drop_fn`` decides per packet; by default a deterministic
    every-Nth-packet drop so tests are reproducible.  Superseded by
    :class:`repro.net.impairment.DataImpairment` (seeded probabilistic
    drop/dup/reorder/corrupt on any :class:`Link`); kept for tests that
    want an exact, countable drop pattern.
    """

    def __init__(self, sim: Simulator, sink: Callable[[Any], None],
                 drop_every: int = 0,
                 drop_fn: Optional[Callable[[Any], bool]] = None,
                 **kwargs):
        super().__init__(sim, sink, **kwargs)
        self.drop_every = drop_every
        self.drop_fn = drop_fn
        self.dropped = 0

    def send(self, packet) -> None:
        # Dropped packets still count as offered: the sender serialized
        # them into the wire; they just never reach the sink.
        if self.drop_fn is not None and self.drop_fn(packet):
            self.tx_packets += 1
            self.tx_bytes += packet.wire_size
            self.dropped += 1
            return
        if self.drop_every and (self.tx_packets + 1) % self.drop_every == 0:
            self.tx_packets += 1
            self.tx_bytes += packet.wire_size
            self.dropped += 1
            return
        super().send(packet)
