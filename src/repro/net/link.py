"""Point-to-point links.

A link models propagation delay plus serialization at a byte rate.
Delivery is FIFO: a packet never overtakes an earlier one on the same
link, which the FTC protocol relies on between adjacent replicas
(sequence numbers still guard against drops, which the link can also
inject for fault testing).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim import RateLimiter, Simulator

__all__ = ["Link", "LossyLink"]


class Link:
    """A unidirectional link with delay and bandwidth.

    ``sink`` is a callable invoked with each delivered packet (usually
    a NIC's ``receive``).
    """

    def __init__(self, sim: Simulator, sink: Callable[[Any], None],
                 delay_s: float = 5e-6, bandwidth_bps: float = 40e9,
                 name: str = "link"):
        self.sim = sim
        self.sink = sink
        self.delay_s = delay_s
        self.bandwidth_bps = bandwidth_bps
        self.name = name
        self.tx_packets = 0
        self.tx_bytes = 0
        self._serializer = RateLimiter(
            sim, rate=1e12,  # negligible base slot; cost_fn dominates
            cost_fn=self._serialization_time, name=f"{name}/serializer")

    def _serialization_time(self, packet) -> float:
        return packet.wire_size * 8.0 / self.bandwidth_bps

    def send(self, packet) -> None:
        """Enqueue a packet; it arrives after serialization + delay."""
        self.tx_packets += 1
        self.tx_bytes += packet.wire_size
        serialization = self._serializer.admission_delay(packet)
        self.sim.schedule_callback(serialization + self.delay_s,
                                   lambda: self.sink(packet))

    @property
    def utilization_window(self) -> float:
        """Seconds of serialization backlog currently queued."""
        return self._serializer.backlog


class LossyLink(Link):
    """A link that drops packets, for retransmission/fault tests.

    ``drop_fn`` decides per packet; by default a deterministic
    every-Nth-packet drop so tests are reproducible.
    """

    def __init__(self, sim: Simulator, sink: Callable[[Any], None],
                 drop_every: int = 0,
                 drop_fn: Optional[Callable[[Any], bool]] = None,
                 **kwargs):
        super().__init__(sim, sink, **kwargs)
        self.drop_every = drop_every
        self.drop_fn = drop_fn
        self.dropped = 0

    def send(self, packet) -> None:
        if self.drop_fn is not None and self.drop_fn(packet):
            self.dropped += 1
            return
        if self.drop_every and (self.tx_packets + 1) % self.drop_every == 0:
            self.tx_packets += 1
            self.dropped += 1
            return
        super().send(packet)
