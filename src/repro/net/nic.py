"""Multi-queue NIC model.

The paper's evaluation is repeatedly NIC-bound: footnote 1 measures the
Mellanox ConnectX-3's packet engine at 9.6--10.6 Mpps regardless of
link rate, and NF/FTC saturate it at 8 threads (Fig 6, Fig 7) while
FTMB halves it by sending one PAL message per data packet (§7.3).

We model the packet engine as a single pps rate limiter shared by all
queues, followed by receive-side scaling (RSS) into per-queue FIFO
buffers with finite capacity.  Everything that arrives -- data packets
and protocol messages alike -- consumes engine slots, which is exactly
the mechanism behind FTMB's 5.26 Mpps ceiling.

Tail drops are never silent (PROTOCOL.md §12.2): each one increments
``rx_dropped``, the ``drops/nic`` metric, and emits a flight event
when telemetry is wired.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import RateLimiter, Simulator, Store
from ..telemetry import NULL_TELEMETRY
from .packet import Packet

__all__ = ["NIC", "DEFAULT_NIC_PPS"]

#: Packets/second the NIC packet engine can process (paper footnote 1:
#: 9.6--10.6 Mpps measured; we take the midpoint of their range).
DEFAULT_NIC_PPS = 10.5e6

#: Descriptors per receive queue (typical DPDK ring size).
DEFAULT_QUEUE_DEPTH = 4096


class NIC:
    """A multi-queue NIC attached to a server.

    Packets delivered by a link enter through :meth:`receive`; worker
    threads consume from :attr:`queues`.  Transmit goes straight to a
    link (the engine limit is modelled once, on the receive path, as in
    the paper's measurement).
    """

    def __init__(self, sim: Simulator, n_queues: int = 1,
                 pps_capacity: float = DEFAULT_NIC_PPS,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 name: str = "nic", telemetry=None):
        if n_queues < 1:
            raise ValueError("a NIC needs at least one queue")
        self.sim = sim
        self.name = name
        self.n_queues = n_queues
        self.queue_depth = queue_depth
        self.queues: List[Store] = [
            Store(sim, capacity=queue_depth, name=f"{name}/q{i}")
            for i in range(n_queues)
        ]
        self._engine = RateLimiter(sim, rate=pps_capacity,
                                   name=f"{name}/engine")
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._m_drops = self.telemetry.registry.counter("drops/nic")
        self._flight = self.telemetry.flight
        self.rx_packets = 0
        self.rx_dropped = 0

    def queue_for(self, packet: Packet) -> int:
        """RSS: map a packet's flow to a receive queue."""
        return packet.flow.rss_hash() % self.n_queues

    def receive(self, packet: Packet) -> None:
        """Entry point for links: engine admission, then RSS enqueue."""
        delay = self._engine.admission_delay(packet)
        self.sim.schedule_callback(delay, lambda: self._enqueue(packet))

    def _drop(self, packet: Packet) -> None:
        self.rx_dropped += 1
        self._m_drops.inc()
        if self._flight.enabled:
            self._flight.record(
                "nic", "tail-drop", t=self.sim.now, pid=packet.pid,
                detail=f"{self.name} queue full ({self.queue_depth})",
                chain=f"pid:{packet.pid}")

    def _enqueue(self, packet: Packet) -> None:
        queue = self.queues[self.queue_for(packet)]
        if queue.try_put(packet):
            self.rx_packets += 1
        else:
            self._drop(packet)

    def deliver_direct(self, packet: Packet, queue_index: int) -> None:
        """Bypass RSS (used by steering elements that pick a queue)."""
        delay = self._engine.admission_delay(packet)

        def enqueue():
            if self.queues[queue_index].try_put(packet):
                self.rx_packets += 1
            else:
                self._drop(packet)

        self.sim.schedule_callback(delay, enqueue)

    @property
    def engine_backlog(self) -> float:
        """Seconds of packets queued at the packet engine."""
        return self._engine.backlog

    def depth(self, queue_index: Optional[int] = None) -> int:
        """Occupancy of one queue, or the total across queues."""
        if queue_index is not None:
            return len(self.queues[queue_index])
        return sum(len(queue) for queue in self.queues)
