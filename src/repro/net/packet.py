"""Packets and flows.

Packets in this reproduction are lightweight records rather than byte
buffers: protocol layers attach structured objects (e.g. the FTC
piggyback message) instead of serialized headers, but every attachment
reports a byte size so wire-level costs (link serialization, NIC and
copy overheads, Fig 5's state-size sweep) stay faithful.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["FlowKey", "Packet", "ip", "format_ip"]

#: Protocol numbers (the usual IANA values, for realism in flow keys).
PROTO_TCP = 6
PROTO_UDP = 17


def ip(dotted: str) -> int:
    """Parse dotted-quad notation into a 32-bit integer address."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address {dotted!r}")
        value = (value << 8) | octet
    return value


def format_ip(value: int) -> str:
    """Render a 32-bit integer address as dotted-quad."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"address {value!r} out of range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, slots=True)
class FlowKey:
    """The classic 5-tuple identifying a traffic flow."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int = PROTO_TCP

    def reversed(self) -> "FlowKey":
        """The reverse direction of this flow (for NAT return traffic)."""
        return FlowKey(self.dst_ip, self.src_ip, self.dst_port,
                       self.src_port, self.proto)

    def rss_hash(self) -> int:
        """A stable hash used by NIC receive-side scaling.

        Symmetric in src/dst so both directions of a connection land on
        the same queue, as Toeplitz-based symmetric RSS does.
        """
        forward = (self.src_ip, self.src_port)
        backward = (self.dst_ip, self.dst_port)
        lo, hi = sorted([forward, backward])
        return hash((lo, hi, self.proto)) & 0x7FFFFFFF

    def __str__(self):
        return (f"{format_ip(self.src_ip)}:{self.src_port}->"
                f"{format_ip(self.dst_ip)}:{self.dst_port}/{self.proto}")


_packet_ids = itertools.count(1)


@dataclass(slots=True)
class Packet:
    """A unit of traffic traversing the simulated network.

    Attributes:
        flow: the packet's 5-tuple.
        size: payload + header bytes on the wire, *excluding* any
            protocol attachments.
        kind: ``"data"`` for normal traffic or ``"propagating"`` for
            FTC's state-propagation packets (§5.1), which replicas do
            not hand to middleboxes.
        attachments: structured protocol metadata (piggyback messages,
            PALs, ...) keyed by protocol name; each value must expose a
            ``byte_size()`` method.
        created_at: virtual time the generator emitted the packet.
        meta: free-form annotations (latency timestamps, experiment tags).
    """

    flow: FlowKey
    size: int = 256
    kind: str = "data"
    pid: int = field(default_factory=lambda: next(_packet_ids))
    attachments: Dict[str, Any] = field(default_factory=dict)
    created_at: float = 0.0
    meta: Dict[str, Any] = field(default_factory=dict)

    def attach(self, key: str, value: Any) -> None:
        self.attachments[key] = value

    def detach(self, key: str) -> Any:
        return self.attachments.pop(key, None)

    def attachment(self, key: str) -> Optional[Any]:
        return self.attachments.get(key)

    @property
    def wire_size(self) -> int:
        """Total bytes on the wire, including attachments."""
        extra = sum(value.byte_size() for value in self.attachments.values())
        return self.size + extra

    @property
    def is_data(self) -> bool:
        return self.kind == "data"

    def clone_headers(self) -> "Packet":
        """A fresh packet with the same flow/size (used by NAT rewrites)."""
        return Packet(flow=self.flow, size=self.size, kind=self.kind,
                      created_at=self.created_at)

    def __repr__(self):
        return f"<Packet #{self.pid} {self.kind} {self.flow} {self.size}B>"
