"""Data-plane adversity: per-link drop/dup/reorder/corrupt impairment.

PR 1 gave the *control* plane a chaos knob (:class:`ControlImpairment`
applied inside :meth:`Network.control_call`); this module is the data
plane's counterpart.  A :class:`DataImpairment` installed through
:meth:`Network.impair_data` makes every chain link misbehave the way a
congested or flaky wire does:

- **drop**: the packet silently disappears;
- **dup**: the packet is delivered twice (switch retransmit storms,
  LAG rebalance);
- **reorder**: one copy is held back a little, so later packets on the
  FIFO link overtake it;
- **corrupt**: the payload is damaged in flight -- modelled as a
  :class:`Corrupted` wrapper the receiver discards on its FCS check
  (delivering garbage upward would be a different failure model).

All draws come from one dedicated seeded stream, so an impaired run is
a pure function of ``(seed, spec)`` and any red soak schedule replays
bit-for-bit.  Surviving loss/reorder end-to-end is the job of
``repro.net.channel`` (per-hop sequencing + retransmission) and the
FTC layers above it (PROTOCOL.md §8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["DataImpairment", "Corrupted", "DEFAULT_REORDER_DELAY_S"]

#: Extra hold-back applied to a reordered copy: a couple of hop delays,
#: enough for 1-2 later packets to overtake on a busy link.
DEFAULT_REORDER_DELAY_S = 25e-6

_RATE_FIELDS = ("drop_rate", "dup_rate", "reorder_rate", "corrupt_rate")

#: ``parse`` spelling of each rate field (the CLI's drop=P,dup=P,... keys).
_SPEC_KEYS = {"drop": "drop_rate", "dup": "dup_rate",
              "reorder": "reorder_rate", "corrupt": "corrupt_rate"}


@dataclass(frozen=True)
class DataImpairment:
    """Seeded chaos applied to packets on data-plane links.

    Mirrors :class:`repro.net.topology.ControlImpairment`: rates are
    independent per-packet probabilities, ``expires_at`` bounds the
    window so the chaos monkey can install transient storms.
    """

    drop_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    corrupt_rate: float = 0.0
    #: How long a reordered copy is held back before delivery.
    reorder_delay_s: float = DEFAULT_REORDER_DELAY_S
    expires_at: Optional[float] = None

    def __post_init__(self):
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value!r}")
        if self.reorder_delay_s < 0:
            raise ValueError("reorder_delay_s must be non-negative")

    def active(self, now: float) -> bool:
        return self.expires_at is None or now < self.expires_at

    @property
    def any_rate(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def parse(cls, text: str, **kwargs) -> "DataImpairment":
        """Parse the CLI spec ``drop=P,dup=P,reorder=P,corrupt=P``.

        Keys are optional and may appear in any order; unknown keys and
        rates outside [0, 1] raise :class:`ValueError` with a message
        fit for direct display.
        """
        rates = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            if key not in _SPEC_KEYS:
                raise ValueError(
                    f"unknown impairment key {key!r} "
                    f"(expected {'/'.join(_SPEC_KEYS)})")
            if not sep:
                raise ValueError(f"impairment key {key!r} needs =RATE")
            try:
                rate = float(value)
            except ValueError:
                raise ValueError(
                    f"impairment rate for {key!r} must be a number, "
                    f"got {value.strip()!r}") from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"impairment rate for {key!r} must be in [0, 1], "
                    f"got {rate!r}")
            rates[_SPEC_KEYS[key]] = rate
        if not rates:
            raise ValueError(
                "empty impairment spec (expected drop=P,dup=P,reorder=P,"
                "corrupt=P)")
        return cls(**rates, **kwargs)

    def describe(self) -> str:
        parts = [f"{key}={getattr(self, field):g}"
                 for key, field in _SPEC_KEYS.items()
                 if getattr(self, field) > 0.0]
        return "drop=0" if not parts else " ".join(parts)


class Corrupted:
    """A packet damaged in flight.

    The link delivers this wrapper instead of mutating the packet
    (mutation would also damage the sender's retained copy and any
    duplicate in flight).  Receivers treat it exactly like modern NICs
    treat an FCS failure: count it and drop it -- the reliability layer
    then recovers it like a loss.
    """

    __slots__ = ("inner",)

    #: Marker receivers check (cheaper than isinstance on the hot path).
    corrupted_wire = True

    def __init__(self, inner):
        self.inner = inner

    @property
    def wire_size(self) -> int:
        return self.inner.wire_size

    def __repr__(self):
        return f"<Corrupted {self.inner!r}>"
